(* Benchmark harness entry point.

   One subcommand per table/figure of the paper's evaluation (plus the
   in-text studies), each printing paper-style rows computed from the
   simulation's virtual time. `all` runs everything — the output compared
   against the paper lives in EXPERIMENTS.md.

   `--json FILE` additionally serializes every cell produced, plus
   EXPERIMENTS.md's shape expectations as pass/fail verdicts, into one
   asymnvm-bench/1 document (see DESIGN.md §6) — the input format of
   `asymnvm bench-diff`, gated in CI against bench/baseline.json. *)

open Cmdliner
open Asym_harness

let scale_of full = if full then Experiments.full else Experiments.quick
let scale_name full = if full then "full" else "quick"
let duration_of full = Asym_sim.Simtime.ms (if full then 80 else 25)

let full_flag =
  let doc = "Run at full scale (paper-sized preloads and op counts); slower." in
  Arg.(value & flag & info [ "full" ] ~doc)

let json_arg =
  let doc =
    "Also write every produced cell and shape-check verdict to $(docv) as an \
     asymnvm-bench/1 JSON document (for `asymnvm bench-diff`)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

(* One experiment -> its printable reports plus machine verdicts. *)
let run_exp name full : (string * Report.t) list * Bench_json.check list =
  let sc = scale_of full in
  let dur = duration_of full in
  let simple r = ([ (name, r) ], Bench_json.checks_for name r) in
  match name with
  | "table1" -> simple (Experiments.table1 sc)
  | "table2" -> simple (Experiments.table2 sc)
  | "table3" -> simple (Experiments.table3 sc)
  | "fig6" -> simple (Experiments.fig6 sc)
  | "fig7" -> simple (Experiments.fig7 sc)
  | "fig8" -> simple (Multiclient.fig8 ~preload:sc.Experiments.preload ~duration:dur)
  | "fig9" -> simple (Multiclient.fig9 ~preload:(sc.Experiments.preload / 2) ~duration:dur)
  | "fig10" ->
      simple
        (Multiclient.fig10 ~preload:(sc.Experiments.preload / 2) ~ops:(sc.Experiments.ops / 2))
  | "fig11" ->
      simple (Multiclient.fig11 ~preload:sc.Experiments.preload ~ops:(sc.Experiments.ops * 2))
  | "fig12" -> simple (Experiments.fig12 sc)
  | "fig13" -> simple (Experiments.fig13 sc)
  | "cache_policy" -> simple (Experiments.cache_policy sc)
  | "sensitivity" -> simple (Experiments.sensitivity sc)
  | "latency" -> simple (Experiments.latency sc)
  | "ycsb" -> simple (Experiments.ycsb sc)
  | "lock_bench" -> simple (Multiclient.lock_bench ~duration:dur)
  | "contention" ->
      simple (Multiclient.contention ~preload:(sc.Experiments.preload / 2) ~duration:dur)
  | "ablation" -> simple (Experiments.ablation sc)
  | "breakdown" ->
      let cells =
        Breakdown.default_cells ~preload:sc.Experiments.preload ~ops:sc.Experiments.ops ()
      in
      ( [
          ("breakdown", Breakdown.table cells);
          ("breakdown_resources", Breakdown.resource_table cells);
        ],
        Breakdown.checks cells )
  | "faultsweep" ->
      let cells =
        Faultsweep.default_cells ~preload:(sc.Experiments.preload / 2)
          ~ops:(sc.Experiments.ops / 2) ()
      in
      ([ ("faultsweep", Faultsweep.table cells) ], Faultsweep.checks cells)
  | "bechamel" ->
      Bechamel_micro.run ();
      ([], [])
  | other ->
      Fmt.epr "unknown experiment: %s@." other;
      ([], [])

let print_check (c : Bench_json.check) =
  Fmt.pr "  check %s/%s: %s — %s@." c.Bench_json.experiment c.Bench_json.cname
    (if c.Bench_json.pass then "PASS" else "FAIL")
    c.Bench_json.detail

let execute names full json =
  let experiments, checks =
    List.fold_left
      (fun (racc, cacc) name ->
        let reports, checks = run_exp name full in
        List.iter (fun (_, r) -> Report.print r) reports;
        List.iter print_check checks;
        (racc @ reports, cacc @ checks))
      ([], []) names
  in
  match json with
  | None -> ()
  | Some path ->
      Bench_json.write ~path
        (Bench_json.doc ~scale:(scale_name full) ~experiments ~checks);
      Fmt.pr "wrote %s (%d experiments, %d checks)@." path (List.length experiments)
        (List.length checks)

let experiments =
  [
    "table1"; "table2"; "table3"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
    "cache_policy"; "lock_bench"; "contention"; "ablation"; "sensitivity"; "latency"; "ycsb";
    "breakdown"; "faultsweep";
  ]

(* The CI bench gate: the cheap experiments whose cells and shape
   verdicts are committed as bench/baseline.json. *)
let smoke_experiments = [ "table3"; "contention" ]

let all_cmd =
  let run full json =
    execute experiments full json;
    Bechamel_micro.run ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (and the Bechamel micro-benchmarks)")
    Term.(const run $ full_flag $ json_arg)

let sub cmd_name doc =
  let runner full json = execute [ cmd_name ] full json in
  Cmd.v (Cmd.info cmd_name ~doc) Term.(const runner $ full_flag $ json_arg)

let cmds =
  [
    sub "table1" "Table 1: RDMA verbs and wire bytes per operation";
    sub "table2" "Table 2: allocator comparison";
    sub "table3" "Table 3: overall performance, all configurations";
    sub "fig6" "Figure 6: throughput vs batch size";
    sub "fig7" "Figure 7: throughput vs cache size";
    sub "fig8" "Figure 8: reader scalability (SWMR)";
    sub "fig9" "Figure 9: multiple structures per back-end";
    sub "fig10" "Figure 10: partitioning across back-ends";
    sub "fig11" "Figure 11: CPU utilization";
    sub "fig12" "Figure 12: skewed (Zipf) workloads";
    sub "fig13" "Figure 13: industry-trace workload mixes";
    sub "cache_policy" "In-text §4.4: LRU vs RR vs hybrid replacement";
    sub "sensitivity" "Extension: latency sensitivity of the optimization stack";
    sub "latency" "Extension: per-operation latency percentiles";
    sub "ycsb" "Extension: YCSB core workloads A/B/C/D/F";
    sub "lock_bench" "In-text §6.3: lock ping-point test";
    sub "contention" "Lock-contention scaling: N writers racing for one shared structure";
    (let runner full json = execute smoke_experiments full json in
     Cmd.v
       (Cmd.info "smoke"
          ~doc:"CI bench gate: table3 + contention (the bench/baseline.json set)")
       Term.(const runner $ full_flag $ json_arg));
    sub "ablation" "Ablations of DESIGN.md design choices";
    sub "breakdown" "Latency attribution: where each configuration's virtual time goes";
    sub "faultsweep" "Transient faults: throughput, retries and read-back integrity vs drop rate";
    sub "bechamel" "Bechamel wall-clock micro-benchmarks";
    all_cmd;
  ]

let () =
  let default =
    Term.(
      const (fun full json ->
          execute experiments full json;
          Bechamel_micro.run ())
      $ full_flag $ json_arg)
  in
  let info = Cmd.info "asymnvm-bench" ~doc:"Regenerate the paper's tables and figures" in
  exit (Cmd.eval (Cmd.group ~default info cmds))
