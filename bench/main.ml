(* Benchmark harness entry point.

   One subcommand per table/figure of the paper's evaluation (plus the
   in-text studies), each printing paper-style rows computed from the
   simulation's virtual time. `all` runs everything — the output compared
   against the paper lives in EXPERIMENTS.md. *)

open Cmdliner
open Asym_harness

let scale_of full = if full then Experiments.full else Experiments.quick

let duration_of full = Asym_sim.Simtime.ms (if full then 80 else 25)

let full_flag =
  let doc = "Run at full scale (paper-sized preloads and op counts); slower." in
  Arg.(value & flag & info [ "full" ] ~doc)

let print_report r = Report.print r

let run_one name full =
  let sc = scale_of full in
  let dur = duration_of full in
  match name with
  | "table1" -> print_report (Experiments.table1 sc)
  | "table2" -> print_report (Experiments.table2 sc)
  | "table3" -> print_report (Experiments.table3 sc)
  | "fig6" -> print_report (Experiments.fig6 sc)
  | "fig7" -> print_report (Experiments.fig7 sc)
  | "fig8" -> print_report (Multiclient.fig8 ~preload:sc.Experiments.preload ~duration:dur)
  | "fig9" -> print_report (Multiclient.fig9 ~preload:(sc.Experiments.preload / 2) ~duration:dur)
  | "fig10" ->
      print_report
        (Multiclient.fig10 ~preload:(sc.Experiments.preload / 2) ~ops:(sc.Experiments.ops / 2))
  | "fig11" ->
      print_report (Multiclient.fig11 ~preload:sc.Experiments.preload ~ops:(sc.Experiments.ops * 2))
  | "fig12" -> print_report (Experiments.fig12 sc)
  | "fig13" -> print_report (Experiments.fig13 sc)
  | "cache_policy" -> print_report (Experiments.cache_policy sc)
  | "sensitivity" -> print_report (Experiments.sensitivity sc)
  | "latency" -> print_report (Experiments.latency sc)
  | "ycsb" -> print_report (Experiments.ycsb sc)
  | "lock_bench" -> print_report (Multiclient.lock_bench ~duration:dur)
  | "ablation" -> print_report (Experiments.ablation sc)
  | "bechamel" -> Bechamel_micro.run ()
  | other -> Fmt.epr "unknown experiment: %s@." other

let experiments =
  [
    "table1"; "table2"; "table3"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
    "cache_policy"; "lock_bench"; "ablation"; "sensitivity"; "latency"; "ycsb";
  ]

let all_cmd =
  let run full =
    List.iter (fun e -> run_one e full) experiments;
    Bechamel_micro.run ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (and the Bechamel micro-benchmarks)")
    Term.(const run $ full_flag)

let sub cmd_name doc =
  let runner = run_one cmd_name in
  Cmd.v (Cmd.info cmd_name ~doc) Term.(const runner $ full_flag)

let cmds =
  [
    sub "table1" "Table 1: RDMA verbs and wire bytes per operation";
    sub "table2" "Table 2: allocator comparison";
    sub "table3" "Table 3: overall performance, all configurations";
    sub "fig6" "Figure 6: throughput vs batch size";
    sub "fig7" "Figure 7: throughput vs cache size";
    sub "fig8" "Figure 8: reader scalability (SWMR)";
    sub "fig9" "Figure 9: multiple structures per back-end";
    sub "fig10" "Figure 10: partitioning across back-ends";
    sub "fig11" "Figure 11: CPU utilization";
    sub "fig12" "Figure 12: skewed (Zipf) workloads";
    sub "fig13" "Figure 13: industry-trace workload mixes";
    sub "cache_policy" "In-text §4.4: LRU vs RR vs hybrid replacement";
    sub "sensitivity" "Extension: latency sensitivity of the optimization stack";
    sub "latency" "Extension: per-operation latency percentiles";
    sub "ycsb" "Extension: YCSB core workloads A/B/C/D/F";
    sub "lock_bench" "In-text §6.3: lock ping-point test";
    sub "ablation" "Ablations of DESIGN.md design choices";
    sub "bechamel" "Bechamel wall-clock micro-benchmarks";
    all_cmd;
  ]

let () =
  let default =
    Term.(
      const (fun full ->
          List.iter (fun e -> run_one e full) experiments;
          Bechamel_micro.run ())
      $ full_flag)
  in
  let info = Cmd.info "asymnvm-bench" ~doc:"Regenerate the paper's tables and figures" in
  exit (Cmd.eval (Cmd.group ~default info cmds))
