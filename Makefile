# Convenience wrappers around dune. `make check` is the tier-1 gate:
# everything must build and every test suite must pass. Formatting is
# checked only when ocamlformat is installed (the CI container does not
# ship it; .ocamlformat pins the version for environments that do).

.PHONY: all build test fmt fmt-check check bench demo clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; \
	then dune build @fmt --auto-promote; \
	else echo "ocamlformat not installed; skipping fmt"; fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; \
	then dune build @fmt; \
	else echo "ocamlformat not installed; skipping fmt-check"; fi

check: build test fmt-check

bench:
	dune exec bench/main.exe -- all

demo:
	dune exec bin/asymnvm.exe -- demo

clean:
	dune clean
