# Convenience wrappers around dune. `make check` is the tier-1 gate:
# everything must build and every test suite must pass. Formatting is
# checked only when ocamlformat is installed (the CI container does not
# ship it; .ocamlformat pins the version for environments that do).

.PHONY: all build test fmt fmt-check check crashsweep faultsweep bench demo clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; \
	then dune build @fmt --auto-promote; \
	else echo "ocamlformat not installed; skipping fmt"; fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; \
	then dune build @fmt; \
	else echo "ocamlformat not installed; skipping fmt-check"; fi

check: build test fmt-check

# Exhaustive crash-point sweep over every structure (every boundary,
# clean + torn variants) plus a multi-client fault-fuzzer pass. The
# bounded version of the same sweep runs inside `make test`.
crashsweep:
	dune exec bin/asymnvm.exe -- check --structure all --ops 50
	dune exec bin/asymnvm.exe -- check --structure all --ops 5 --stride 1000 --fuzz 300

# Transient-fault sweep: throughput, retry counts and read-back
# integrity versus verb drop rate (Naive and RCB B+Trees).
faultsweep:
	dune exec bench/main.exe -- faultsweep

bench:
	dune exec bench/main.exe -- all

demo:
	dune exec bin/asymnvm.exe -- demo

clean:
	dune clean
