examples/kv_store.ml: Array Asym_core Asym_sim Asym_structs Asym_util Asym_workload Backend Bytes Client Clock Fmt Int64 Latency List Printf Simtime
