examples/bank.ml: Asym_apps Asym_cluster Asym_core Asym_sim Asym_util Backend Client Clock Fmt Int64 Latency Mirror Simtime
