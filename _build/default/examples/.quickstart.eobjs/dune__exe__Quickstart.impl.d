examples/quickstart.ml: Asym_core Asym_sim Asym_structs Backend Bytes Client Clock Fmt Int64 Latency Layout List Printf Simtime String Types
