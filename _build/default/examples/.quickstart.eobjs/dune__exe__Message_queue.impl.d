examples/message_queue.ml: Asym_core Asym_sim Asym_structs Backend Bytes Client Clock Fmt Latency List Printf Sched Simtime Types
