examples/quickstart.mli:
