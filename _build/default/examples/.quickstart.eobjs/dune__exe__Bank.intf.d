examples/bank.mli:
