(* Quickstart: a persistent B+Tree on the AsymNVM architecture.

   Sets up one back-end NVM node and one front-end, stores a few keys,
   crashes the front-end mid-batch, recovers, and shows that every
   acknowledged operation survived.

   Run with: dune exec examples/quickstart.exe *)

open Asym_core
open Asym_sim
module Bpt = Asym_structs.Pbptree.Make (Client)

let () =
  Fmt.pr "== AsymNVM quickstart ==@.@.";

  (* 1. A back-end node: 64 MB of (simulated) NVM behind an RDMA NIC. *)
  let backend =
    Backend.create ~name:"backend" ~capacity:(64 * 1024 * 1024) Latency.default
  in
  let layout = Backend.layout backend in
  Fmt.pr "back-end up: %d slabs of %d bytes@." layout.Layout.n_slabs layout.Layout.slab_size;

  (* 2. A front-end with the full optimization stack: operation log,
        cache, batching (AsymNVM-RCB). *)
  let clock = Clock.create ~name:"frontend" () in
  let fe = Client.connect ~name:"frontend" (Client.rcb ~batch_size:32 ()) backend ~clock in
  Fmt.pr "front-end connected (session %d, config %s)@.@." (Client.session fe)
    (Client.config_name (Client.config fe));

  (* 3. Create a named persistent B+Tree and fill it. *)
  let tree = Bpt.attach fe ~name:"demo-tree" in
  for i = 1 to 100 do
    Bpt.put tree ~key:(Int64.of_int i) ~value:(Bytes.of_string (Printf.sprintf "value-%03d" i))
  done;
  Client.flush fe;
  Fmt.pr "inserted 100 keys; find 42 -> %s@."
    (match Bpt.find tree ~key:42L with Some v -> Bytes.to_string v | None -> "MISSING");
  Fmt.pr "range [10, 15] -> %s@."
    (String.concat ", "
       (List.map (fun (k, _) -> Int64.to_string k) (Bpt.range tree ~lo:10L ~hi:15L)));

  (* 4. Write a batch and crash before it is flushed. *)
  for i = 101 to 120 do
    Bpt.put tree ~key:(Int64.of_int i) ~value:(Bytes.of_string (Printf.sprintf "value-%03d" i))
  done;
  Fmt.pr "@.crash! front-end dies with 20 operations only covered by the op log...@.";
  Client.crash fe;

  (* 5. Recover: the back-end hands back the operations whose memory logs
        never became durable; we re-execute them. *)
  let ops = Client.recover fe in
  let tree = Bpt.attach fe ~name:"demo-tree" in
  Fmt.pr "recovery: %d operations to replay@." (List.length ops);
  let reg = Asym_structs.Registry.create () in
  Asym_structs.Registry.register reg ~ds:(Bpt.handle tree).Types.id (Bpt.replay tree);
  Asym_structs.Registry.replay_all reg ops;
  Client.flush fe;

  (* 6. Everything acknowledged before the crash is there. *)
  let missing = ref 0 in
  for i = 1 to 120 do
    if Bpt.find tree ~key:(Int64.of_int i) = None then incr missing
  done;
  Fmt.pr "after recovery: 120 keys checked, %d missing@." !missing;
  Fmt.pr "@.virtual time elapsed: %a; RDMA verbs posted: %d@." Simtime.pp (Clock.now clock)
    (Client.rdma_ops fe);
  if !missing = 0 then Fmt.pr "quickstart OK@."
  else begin
    Fmt.pr "quickstart FAILED@.";
    exit 1
  end
