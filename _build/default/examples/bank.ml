(* SmallBank with high availability: the back-end NVM blade dies
   permanently mid-workload and the NVM mirror is voted in as the new
   back-end (paper §7, Case 4). Money must never be created or destroyed
   by the fail-over.

   Run with: dune exec examples/bank.exe *)

open Asym_core
open Asym_sim
module Bank = Asym_apps.Smallbank.Make (Client)

let accounts = 2_000
let initial = 1_000L

let () =
  Fmt.pr "== SmallBank with mirror fail-over ==@.@.";
  let backend = Backend.create ~name:"primary" ~capacity:(64 * 1024 * 1024) Latency.default in
  let mirror =
    Mirror.create ~name:"mirror" ~kind:Mirror.Nvm_backed ~capacity:(64 * 1024 * 1024)
      Latency.default
  in
  Backend.attach_mirror backend mirror;
  let clock = Clock.create ~name:"teller" () in
  let fe = Client.connect ~name:"teller" (Client.rc ()) backend ~clock in
  let bank = Bank.create fe ~name:"bank" ~accounts ~initial_balance:initial in
  Client.flush fe;
  Fmt.pr "opened %d accounts with %Ld cents in checking and savings each@." accounts initial;

  (* Only money-conserving transactions, so the total is an invariant. *)
  let conserving = Asym_apps.Smallbank.[ (Amalgamate, 30); (Balance, 30); (Send_payment, 40) ] in
  let rng = Asym_util.Rng.create ~seed:7L in
  for _ = 1 to 5_000 do
    Bank.run_random bank rng ~accounts ~mix:conserving
  done;
  Client.flush fe;
  let expected = Int64.mul (Int64.of_int (2 * accounts)) initial in
  Fmt.pr "5000 transactions done (%d committed, %d aborted)@." (Bank.commits bank)
    (Bank.aborts bank);

  (* Disaster: the primary blade burns down. The keepAlive service expires
     its lease; the mirrors vote; the NVM mirror is promoted. *)
  Fmt.pr "@.primary back-end fails permanently...@.";
  Backend.crash backend;
  let keepalive = Asym_cluster.Keepalive.create (Asym_util.Rng.create ~seed:1L) in
  Asym_cluster.Keepalive.register keepalive "primary" ~now:(Clock.now clock);
  let later = Clock.now clock + Simtime.ms 50 in
  assert (not (Asym_cluster.Keepalive.alive keepalive "primary" ~now:later));
  Fmt.pr "keepAlive: primary's lease expired; electing a successor@.";
  (match Asym_cluster.Failover.failover ~dead:backend Latency.default with
  | None -> failwith "no live mirror"
  | Some backend' ->
      Fmt.pr "mirror promoted: %s@." (Backend.name backend');
      Client.switch_backend fe backend');

  let bank = Bank.attach fe ~name:"bank" in
  let total = Bank.total_assets bank ~accounts in
  Fmt.pr "@.total assets after fail-over: %Ld (expected %Ld) -> %s@." total expected
    (if total = expected then "conserved" else "LOST MONEY");

  (* Business continues on the promoted blade. *)
  for _ = 1 to 1_000 do
    Bank.run_random bank rng ~accounts ~mix:conserving
  done;
  Client.flush fe;
  let total' = Bank.total_assets bank ~accounts in
  Fmt.pr "1000 more transactions on the new primary; total: %Ld@." total';
  if total = expected && total' = expected then Fmt.pr "@.bank OK@."
  else begin
    Fmt.pr "@.bank FAILED@.";
    exit 1
  end
