(* A partitioned key/value store over disaggregated NVM.

   The scenario the paper's introduction motivates: several application
   servers (front-ends) share a pool of NVM blades (back-ends) much larger
   than any one server's DRAM. Here a hash-table KV store is partitioned
   over two back-end blades, driven by a Zipfian YCSB workload from two
   front-ends, and reports throughput/cache statistics per front-end.

   Run with: dune exec examples/kv_store.exe *)

open Asym_core
open Asym_sim
module H = Asym_structs.Phash.Make (Client)
module Part = Asym_structs.Partition.Make (Client)

let blades = 2
let frontends = 2
let keys = 20_000
let ops_per_frontend = 30_000

let () =
  Fmt.pr "== Disaggregated KV store: %d front-ends over %d NVM blades ==@.@." frontends blades;
  let backends =
    List.init blades (fun i ->
        Backend.create
          ~name:(Printf.sprintf "blade%d" i)
          ~capacity:(96 * 1024 * 1024) Latency.default)
  in
  (* Each front-end node connects to every blade and routes by key hash. *)
  let make_frontend fi =
    let clock = Clock.create ~name:(Printf.sprintf "fe%d" fi) () in
    let parts =
      List.map
        (fun bk ->
          let c =
            Client.connect
              ~name:(Printf.sprintf "fe%d->%s" fi (Backend.name bk))
              (Client.rc ~cache_bytes:(2 * 1024 * 1024) ()) bk ~clock
          in
          (c, H.attach ~nbuckets:16384 c ~name:"kv"))
        backends
    in
    (clock, Array.of_list parts)
  in
  let fes = List.init frontends make_frontend in
  let route parts key = parts.(Part.hash key blades) in

  (* Front-end 0 loads the data set. *)
  let _, parts0 = List.hd fes in
  for i = 0 to keys - 1 do
    let key = Int64.of_int i in
    H.put (snd (route parts0 key)) ~key ~value:(Bytes.make 64 'v')
  done;
  Fmt.pr "loaded %d keys across the blades@." keys;
  List.iteri
    (fun i bk -> Fmt.pr "  blade%d: %d slabs in use@." i (Backend.used_slabs bk))
    backends;

  (* All front-ends run a 95%% read / 5%% update Zipfian workload. *)
  let run fi (clock, parts) =
    let rng = Asym_util.Rng.create ~seed:(Int64.of_int (42 + fi)) in
    let gen =
      Asym_workload.Ycsb.create ~distribution:(Asym_workload.Ycsb.Zipfian 0.99) ~keyspace:keys
        ~put_ratio:0.05 rng
    in
    let t0 = Clock.now clock in
    for _ = 1 to ops_per_frontend do
      match Asym_workload.Ycsb.next gen with
      | Asym_workload.Ycsb.Put (key, value) -> H.put (snd (route parts key)) ~key ~value
      | Asym_workload.Ycsb.Get key -> ignore (H.get (snd (route parts key)) ~key)
    done;
    let elapsed = Clock.now clock - t0 in
    let hits, misses =
      Array.fold_left
        (fun (h, m) (c, _) ->
          let h', m' = Client.cache_stats c in
          (h + h', m + m'))
        (0, 0) parts
    in
    Fmt.pr "fe%d: %d ops in %a -> %.1f KOPS; cache hit ratio %.1f%%@." fi ops_per_frontend
      Simtime.pp elapsed
      (float_of_int ops_per_frontend /. Simtime.to_sec elapsed /. 1000.0)
      (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses)))
  in
  List.iteri run fes;
  Fmt.pr "(fe0 is warm — it loaded the data; fe1 starts with a cold cache)@.";
  Fmt.pr "@.kv_store OK@."
