open Asym_sim
open Asym_core

let check = Alcotest.check
let lat = Latency.default
let cap = 8 * 1024 * 1024

let mk_backend ?(memlog_cap = 256 * 1024) ?(oplog_cap = 128 * 1024) ?(slab_size = 1024) () =
  Backend.create ~name:"bk" ~max_sessions:4 ~memlog_cap ~oplog_cap ~slab_size ~capacity:cap lat

let mk_client ?(cfg = Client.r ()) ?(name = "fe") bk =
  let clk = Clock.create ~name () in
  (Client.connect ~name cfg bk ~clock:clk, clk)

(* -- layout -------------------------------------------------------------- *)

let test_layout_roundtrip () =
  let bk = mk_backend () in
  let l = Backend.layout bk in
  let l' = Layout.load (Backend.device bk) in
  check Alcotest.bool "layout survives store/load" true (l = l')

let test_layout_too_small () =
  Alcotest.check_raises "tiny capacity rejected"
    (Invalid_argument "Layout.compute: capacity too small for fixed areas") (fun () ->
      ignore (Layout.compute ~capacity:4096 ~max_sessions:2 ()))

let test_layout_areas_disjoint () =
  let l = Backend.layout (mk_backend ()) in
  let open Layout in
  check Alcotest.bool "ordering" true
    (l.naming_base < l.sessions_base
    && l.sessions_base < l.meta_base
    && l.meta_base < l.bitmap_base
    && l.bitmap_base < l.memlog_base
    && l.memlog_base < l.oplog_base
    && l.oplog_base < l.data_base
    && l.data_base + (l.n_slabs * l.slab_size) <= l.capacity)

(* -- naming --------------------------------------------------------------- *)

let test_naming_persistence () =
  let bk = mk_backend () in
  let dev = Backend.device bk in
  let l = Backend.layout bk in
  let n = Naming.load dev ~base:l.Layout.naming_base ~len:l.Layout.naming_len in
  Naming.set n "tree-a" Types.Root 4242;
  Naming.set n "tree-a.lock" Types.Lock 4250;
  let n' = Naming.load dev ~base:l.Layout.naming_base ~len:l.Layout.naming_len in
  check Alcotest.bool "found root" true (Naming.find n' "tree-a" = Some (Types.Root, 4242));
  check Alcotest.bool "found lock" true (Naming.find n' "tree-a.lock" = Some (Types.Lock, 4250));
  check Alcotest.bool "missing is none" true (Naming.find n' "nope" = None)

let test_naming_remove () =
  let bk = mk_backend () in
  let dev = Backend.device bk in
  let l = Backend.layout bk in
  let n = Naming.load dev ~base:l.Layout.naming_base ~len:l.Layout.naming_len in
  Naming.set n "x" Types.Meta 1;
  Naming.remove n "x";
  let n' = Naming.load dev ~base:l.Layout.naming_base ~len:l.Layout.naming_len in
  check Alcotest.bool "removed" true (Naming.find n' "x" = None)

(* -- slab allocator --------------------------------------------------------- *)

let test_backend_alloc_basic () =
  let bk = mk_backend () in
  let dev = Backend.device bk in
  let l = Backend.layout bk in
  let a = Backend_alloc.load dev l in
  let x = Backend_alloc.alloc a ~slabs:1 in
  let y = Backend_alloc.alloc a ~slabs:1 in
  check Alcotest.bool "distinct" true (x <> y && x <> None && y <> None);
  (match x with
  | Some addr ->
      Backend_alloc.free a ~addr ~slabs:1;
      Alcotest.check_raises "double free"
        (Invalid_argument "Backend_alloc.free: double free") (fun () ->
          Backend_alloc.free a ~addr ~slabs:1)
  | None -> Alcotest.fail "alloc failed")

let test_backend_alloc_contiguous () =
  let bk = mk_backend () in
  let a = Backend_alloc.load (Backend.device bk) (Backend.layout bk) in
  match Backend_alloc.alloc a ~slabs:8 with
  | None -> Alcotest.fail "run alloc failed"
  | Some addr ->
      let l = Backend.layout bk in
      check Alcotest.int "aligned" 0 ((addr - l.Layout.data_base) mod l.Layout.slab_size);
      Backend_alloc.free a ~addr ~slabs:8;
      check Alcotest.int "all back" 0 (Backend_alloc.used_slabs a)

let test_backend_alloc_exhaustion_and_recovery_from_bitmap () =
  let bk = mk_backend () in
  let dev = Backend.device bk in
  let l = Backend.layout bk in
  let a = Backend_alloc.load dev l in
  let n = Backend_alloc.total_slabs a in
  for _ = 1 to n do
    match Backend_alloc.alloc a ~slabs:1 with
    | Some _ -> ()
    | None -> Alcotest.fail "premature exhaustion"
  done;
  check Alcotest.bool "now exhausted" true (Backend_alloc.alloc a ~slabs:1 = None);
  (* A reloaded allocator must agree: the bitmap is the durable truth. *)
  let a' = Backend_alloc.load dev l in
  check Alcotest.int "used persisted" n (Backend_alloc.used_slabs a');
  check Alcotest.bool "still exhausted after reload" true (Backend_alloc.alloc a' ~slabs:1 = None)

(* -- RPC / sessions ----------------------------------------------------------- *)

let test_rpc_register_ds_idempotent () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let h1 = Client.register_ds fe "stack:s1" in
  let h2 = Client.register_ds fe "stack:s1" in
  check Alcotest.bool "same handle" true (h1 = h2);
  let fe2, _ = mk_client ~name:"fe2" bk in
  let h3 = Client.register_ds fe2 "stack:s1" in
  check Alcotest.int "shared ds id" h1.Types.id h3.Types.id;
  check Alcotest.int "shared root" h1.Types.root h3.Types.root

let test_rpc_lookup_missing () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  check Alcotest.bool "missing" true (Client.lookup_ds fe "ghost" = None);
  ignore (Client.register_ds fe "real");
  check Alcotest.bool "present" true (Client.lookup_ds fe "real" <> None)

let test_rpc_costs_time () =
  let bk = mk_backend () in
  let fe, clk = mk_client bk in
  let before = Clock.now clk in
  ignore (Client.register_ds fe "x");
  check Alcotest.bool "rpc costs >= 2 rtt" true
    (Clock.now clk - before >= 2 * lat.Latency.rdma_rtt_ns)

let test_session_limit () =
  let bk = mk_backend () in
  let mk_ok () = try Some (fst (mk_client bk)) with Failure _ -> None in
  (* max_sessions = 4 *)
  let opened = List.filter_map (fun _ -> mk_ok ()) [ 1; 2; 3; 4; 5 ] in
  check Alcotest.int "only 4 sessions" 4 (List.length opened);
  (* Closing a session frees its slot for a new front-end. *)
  (match opened with c :: _ -> Client.close c | [] -> ());
  check Alcotest.bool "slot reusable after close" true (mk_ok () <> None)

let test_close_guards_use_after () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let addr = Client.malloc fe 64 in
  Client.close fe;
  Alcotest.check_raises "use after close" (Failure "fe: client is crashed") (fun () ->
      ignore (Client.read fe ~addr ~len:8))

(* -- write path / drain --------------------------------------------------------- *)

let test_logged_write_lands_in_data_area () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let h = Client.register_ds fe "kv" in
  let addr = Client.malloc fe 64 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write fe ~ds:h.Types.id ~addr (Bytes.of_string "hello-world");
  (* Before flush: remote data area still empty, but our own read sees it. *)
  check Alcotest.string "read own write" "hello-world"
    (Bytes.to_string (Client.read fe ~addr ~len:11));
  Client.op_end fe ~ds:h.Types.id;
  (* batch_size = 1 -> op_end flushed and the backend replayed. *)
  let dev = Backend.device bk in
  check Alcotest.string "replayed into data area" "hello-world"
    (Bytes.to_string (Asym_nvm.Device.read dev ~addr ~len:11));
  check Alcotest.int "one tx replayed" 1 (Backend.replayed_txs bk)

let test_batching_defers_replay () =
  let bk = mk_backend () in
  let fe, _ = mk_client ~cfg:(Client.rcb ~batch_size:8 ()) bk in
  let h = Client.register_ds fe "kv" in
  let addr = Client.malloc fe 64 in
  for i = 1 to 7 do
    ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
    Client.write_u64 fe ~ds:h.Types.id (addr + (8 * (i mod 4))) (Int64.of_int i);
    Client.op_end fe ~ds:h.Types.id
  done;
  check Alcotest.int "no tx yet" 0 (Backend.replayed_txs bk);
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write_u64 fe ~ds:h.Types.id addr 99L;
  Client.op_end fe ~ds:h.Types.id;
  check Alcotest.int "flushed at batch boundary" 1 (Backend.replayed_txs bk);
  check Alcotest.int64 "value landed" 99L
    (Asym_nvm.Device.read_u64 (Backend.device bk) ~addr)

let test_seqno_bumped_twice_per_tx () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let h = Client.register_ds fe "kv" in
  let addr = Client.malloc fe 8 in
  check Alcotest.int64 "sn starts 0" 0L (Backend.seqno bk ~ds:h.Types.id);
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write_u64 fe ~ds:h.Types.id addr 1L;
  Client.op_end fe ~ds:h.Types.id;
  check Alcotest.int64 "sn even after tx" 2L (Backend.seqno bk ~ds:h.Types.id)

let test_memlog_ring_wraps () =
  let bk = mk_backend ~memlog_cap:4096 () in
  let fe, _ = mk_client bk in
  let h = Client.register_ds fe "kv" in
  let addr = Client.malloc fe 256 in
  (* Each op writes ~128 B of log; push enough to wrap the 4 KB ring. *)
  for i = 1 to 200 do
    ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
    Client.write fe ~ds:h.Types.id ~addr (Bytes.make 100 (Char.chr (i mod 256)));
    Client.op_end fe ~ds:h.Types.id
  done;
  check Alcotest.int "all txs replayed" 200 (Backend.replayed_txs bk);
  check Alcotest.string "last value wins"
    (String.make 100 (Char.chr 200))
    (Bytes.to_string (Asym_nvm.Device.read (Backend.device bk) ~addr ~len:100))

let test_drain_busies_backend_cpu () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let h = Client.register_ds fe "kv" in
  let addr = Client.malloc fe 64 in
  let busy0 = Timeline.busy_total (Backend.cpu bk) in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write_u64 fe ~ds:h.Types.id addr 5L;
  Client.op_end fe ~ds:h.Types.id;
  check Alcotest.bool "cpu worked" true (Timeline.busy_total (Backend.cpu bk) > busy0)

(* -- locks ------------------------------------------------------------------------ *)

let test_writer_lock_serializes () =
  let bk = mk_backend () in
  let fe1, c1 = mk_client ~name:"w1" bk in
  let fe2, c2 = mk_client ~name:"w2" bk in
  let h = Client.register_ds fe1 "t" in
  let h2 = Client.register_ds fe2 "t" in
  Client.writer_lock fe1 h;
  let t1 = Clock.now c1 in
  (* Simulate fe1 holding the lock for 50 us of work. *)
  Clock.advance c1 (Simtime.us 50);
  Client.writer_unlock fe1 h;
  ignore t1;
  Client.writer_lock fe2 h2;
  check Alcotest.bool "second writer waited" true (Clock.now c2 >= Clock.now c1 - Simtime.us 5);
  Client.writer_unlock fe2 h2

let test_conflict_window_recorded () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let h = Client.register_ds fe "t" in
  let addr = Client.malloc fe 8 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write_u64 fe ~ds:h.Types.id addr 1L;
  Client.op_end fe ~ds:h.Types.id;
  check Alcotest.bool "window exists" true
    (Backend.conflict_overlaps bk ~ds:h.Types.id ~start_:0 ~stop:max_int)

let () =
  Alcotest.run "backend"
    [
      ( "layout",
        [
          Alcotest.test_case "store/load roundtrip" `Quick test_layout_roundtrip;
          Alcotest.test_case "too small rejected" `Quick test_layout_too_small;
          Alcotest.test_case "areas disjoint" `Quick test_layout_areas_disjoint;
        ] );
      ( "naming",
        [
          Alcotest.test_case "persistence" `Quick test_naming_persistence;
          Alcotest.test_case "remove" `Quick test_naming_remove;
        ] );
      ( "slab-alloc",
        [
          Alcotest.test_case "basic" `Quick test_backend_alloc_basic;
          Alcotest.test_case "contiguous runs" `Quick test_backend_alloc_contiguous;
          Alcotest.test_case "exhaustion + bitmap recovery" `Quick
            test_backend_alloc_exhaustion_and_recovery_from_bitmap;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "register_ds idempotent" `Quick test_rpc_register_ds_idempotent;
          Alcotest.test_case "lookup missing" `Quick test_rpc_lookup_missing;
          Alcotest.test_case "rpc costs time" `Quick test_rpc_costs_time;
          Alcotest.test_case "session limit" `Quick test_session_limit;
          Alcotest.test_case "use after close guarded" `Quick test_close_guards_use_after;
        ] );
      ( "write-path",
        [
          Alcotest.test_case "logged write lands" `Quick test_logged_write_lands_in_data_area;
          Alcotest.test_case "batching defers replay" `Quick test_batching_defers_replay;
          Alcotest.test_case "seqno bumped" `Quick test_seqno_bumped_twice_per_tx;
          Alcotest.test_case "memlog ring wraps" `Quick test_memlog_ring_wraps;
          Alcotest.test_case "drain busies cpu" `Quick test_drain_busies_backend_cpu;
        ] );
      ( "locks",
        [
          Alcotest.test_case "writer lock serializes" `Quick test_writer_lock_serializes;
          Alcotest.test_case "conflict window recorded" `Quick test_conflict_window_recorded;
        ] );
    ]
