open Asym_workload

let check = Alcotest.check
let rng seed = Asym_util.Rng.create ~seed

(* ---------------- YCSB ---------------- *)

let test_ycsb_put_ratio () =
  let g = Ycsb.create ~distribution:Ycsb.Uniform ~keyspace:1000 ~put_ratio:0.3 (rng 1L) in
  let puts = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Ycsb.next g with Ycsb.Put _ -> incr puts | Ycsb.Get _ -> ()
  done;
  let ratio = float_of_int !puts /. float_of_int n in
  check Alcotest.bool "put ratio close to 0.3" true (abs_float (ratio -. 0.3) < 0.02)

let test_ycsb_pure_read_and_write () =
  let reads = Ycsb.create ~distribution:Ycsb.Uniform ~keyspace:10 ~put_ratio:0.0 (rng 2L) in
  let writes = Ycsb.create ~distribution:Ycsb.Uniform ~keyspace:10 ~put_ratio:1.0 (rng 3L) in
  for _ = 1 to 100 do
    (match Ycsb.next reads with Ycsb.Get _ -> () | Ycsb.Put _ -> Alcotest.fail "unexpected put");
    match Ycsb.next writes with Ycsb.Put _ -> () | Ycsb.Get _ -> Alcotest.fail "unexpected get"
  done

let test_ycsb_keys_in_range () =
  let g = Ycsb.create ~distribution:(Ycsb.Zipfian 0.99) ~keyspace:500 ~put_ratio:0.5 (rng 4L) in
  for _ = 1 to 10_000 do
    let k = Int64.to_int (Ycsb.key g) in
    if k < 0 || k >= 500 then Alcotest.failf "key out of range: %d" k
  done

let test_ycsb_value_size () =
  let g = Ycsb.create ~value_size:128 ~distribution:Ycsb.Uniform ~keyspace:10 ~put_ratio:1.0 (rng 5L) in
  match Ycsb.next g with
  | Ycsb.Put (_, v) -> check Alcotest.int "value size" 128 (Bytes.length v)
  | Ycsb.Get _ -> Alcotest.fail "expected put"

let test_ycsb_zipf_skewed_vs_uniform () =
  let count_hot dist =
    let g = Ycsb.create ~distribution:dist ~keyspace:1000 ~put_ratio:0.0 (rng 6L) in
    let freq = Hashtbl.create 64 in
    for _ = 1 to 20_000 do
      let k = Ycsb.key g in
      Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k))
    done;
    Hashtbl.fold (fun _ c m -> max c m) freq 0
  in
  check Alcotest.bool "zipf has a much hotter key" true
    (count_hot (Ycsb.Zipfian 0.99) > 3 * count_hot Ycsb.Uniform)

let test_distribution_names () =
  check Alcotest.string "uniform" "uniform" (Ycsb.distribution_name Ycsb.Uniform);
  check Alcotest.string "zipf" "zipf(0.90)" (Ycsb.distribution_name (Ycsb.Zipfian 0.9))

let test_ycsb_presets () =
  let count_puts preset =
    let g = Ycsb.of_preset preset ~keyspace:100 (rng 20L) in
    let puts = ref 0 in
    for _ = 1 to 2_000 do
      match Ycsb.next g with Ycsb.Put _ -> incr puts | Ycsb.Get _ -> ()
    done;
    !puts
  in
  let a = count_puts Ycsb.A and b = count_puts Ycsb.B and c = count_puts Ycsb.C in
  check Alcotest.bool "A is update-heavy" true (a > 900 && a < 1100);
  check Alcotest.bool "B is read-mostly" true (b > 50 && b < 160);
  check Alcotest.int "C is read-only" 0 c;
  check Alcotest.string "names" "A" (Ycsb.preset_name Ycsb.A)

(* ---------------- industry trace ---------------- *)

let test_trace_value_sizes_power_law () =
  let t = Trace.create ~kind:(`Kv 1.0) (rng 7L) in
  let sizes = Array.init 20_000 (fun _ -> Trace.value_size t) in
  Array.iter
    (fun s -> if s < 64 || s > 8192 then Alcotest.failf "value size out of range: %d" s)
    sizes;
  (* Power law: the median must be far below the maximum. *)
  let sorted = Array.copy sizes in
  Array.sort compare sorted;
  let median = sorted.(Array.length sorted / 2) in
  let mx = sorted.(Array.length sorted - 1) in
  check Alcotest.bool "heavy tail" true (median * 8 < mx);
  check Alcotest.bool "mostly small" true (median < 512)

let test_trace_fifo_mix () =
  let t = Trace.create ~kind:(`Fifo 0.7) (rng 8L) in
  let pushes = ref 0 and pops = ref 0 in
  for _ = 1 to 10_000 do
    match Trace.next t with
    | Trace.Push _ -> incr pushes
    | Trace.Pop -> incr pops
    | Trace.Put _ | Trace.Get _ -> Alcotest.fail "kv op from fifo trace"
  done;
  let ratio = float_of_int !pushes /. 10_000.0 in
  check Alcotest.bool "push ratio" true (abs_float (ratio -. 0.7) < 0.02)

let test_trace_kv_mix () =
  let t = Trace.create ~kind:(`Kv 0.25) (rng 9L) in
  let puts = ref 0 and gets = ref 0 in
  for _ = 1 to 10_000 do
    match Trace.next t with
    | Trace.Put _ -> incr puts
    | Trace.Get _ -> incr gets
    | Trace.Push _ | Trace.Pop -> Alcotest.fail "fifo op from kv trace"
  done;
  check Alcotest.bool "put ratio" true
    (abs_float ((float_of_int !puts /. 10_000.0) -. 0.25) < 0.02)

let test_trace_keys_power_law () =
  let t = Trace.create ~keyspace:10_000 ~kind:(`Kv 0.0) (rng 10L) in
  let freq = Hashtbl.create 64 in
  for _ = 1 to 30_000 do
    match Trace.next t with
    | Trace.Get k ->
        Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k))
    | _ -> ()
  done;
  let hottest = Hashtbl.fold (fun _ c m -> max c m) freq 0 in
  check Alcotest.bool "popular key dominates" true (hottest > 300)

let () =
  Alcotest.run "workload"
    [
      ( "ycsb",
        [
          Alcotest.test_case "put ratio" `Quick test_ycsb_put_ratio;
          Alcotest.test_case "pure read/write" `Quick test_ycsb_pure_read_and_write;
          Alcotest.test_case "keys in range" `Quick test_ycsb_keys_in_range;
          Alcotest.test_case "value size" `Quick test_ycsb_value_size;
          Alcotest.test_case "zipf skew" `Quick test_ycsb_zipf_skewed_vs_uniform;
          Alcotest.test_case "names" `Quick test_distribution_names;
          Alcotest.test_case "core presets" `Quick test_ycsb_presets;
        ] );
      ( "trace",
        [
          Alcotest.test_case "value sizes power law" `Quick test_trace_value_sizes_power_law;
          Alcotest.test_case "fifo mix" `Quick test_trace_fifo_mix;
          Alcotest.test_case "kv mix" `Quick test_trace_kv_mix;
          Alcotest.test_case "key popularity power law" `Quick test_trace_keys_power_law;
        ] );
    ]
