(* Conformance tests for the Table 1 API surface and the §4 persistency
   semantics, stated as directly as the paper states them:

   - rnvm_read: "A read can return data that is not yet persisted, but if
     there is a persistent fence before the read, it should return the
     persisted data produced before the fence."
   - rnvm_write (op-logged): "When a write (update) returns, the data
     should always be persisted in the back-end NVM."
   - rnvm_tx_write: all-or-nothing batches of memory logs.
   - rnvm_malloc / rnvm_free: remote allocation through the two-tier path.
   - writer_(un)lock / reader_(un)lock: SWMR synchronization. *)

open Asym_sim
open Asym_core

let check = Alcotest.check
let lat = Latency.default

let mk () =
  let bk =
    Backend.create ~name:"bk" ~max_sessions:4 ~memlog_cap:(512 * 1024) ~oplog_cap:(256 * 1024)
      ~slab_size:4096 ~capacity:(24 * 1024 * 1024) lat
  in
  (bk, Client.connect ~name:"fe" (Client.rcb ~batch_size:64 ()) bk ~clock:(Clock.create ()))

(* -- rnvm_read / rnvm_write ------------------------------------------------ *)

let test_read_returns_unpersisted_own_writes () =
  let _, fe = mk () in
  let h = Client.register_ds fe "d" in
  let addr = Client.malloc fe 64 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write fe ~ds:h.Types.id ~addr (Bytes.of_string "not-yet-durable");
  (* No flush yet: the read still returns the new data (paper §4.1). *)
  check Alcotest.string "read own unpersisted write" "not-yet-durable"
    (Bytes.to_string (Client.read fe ~addr ~len:15))

let test_fence_makes_writes_globally_visible () =
  let bk, fe = mk () in
  let h = Client.register_ds fe "d" in
  let addr = Client.malloc fe 64 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write fe ~ds:h.Types.id ~addr (Bytes.of_string "fenced");
  Client.op_end fe ~ds:h.Types.id;
  Client.persist_fence fe;
  (* After the fence the data area itself holds the bytes: any other
     front-end (or a restarted back-end) observes them. *)
  check Alcotest.string "visible in the data area" "fenced"
    (Bytes.to_string (Asym_nvm.Device.read (Backend.device bk) ~addr ~len:6));
  let fe2 = Client.connect ~name:"fe2" (Client.r ()) bk ~clock:(Clock.create ()) in
  check Alcotest.string "visible to another front-end" "fenced"
    (Bytes.to_string (Client.read fe2 ~addr ~len:6))

let test_oplogged_write_survives_crash_when_op_returns () =
  (* With the operation log, a write "returns" once its op record is
     durable — even though its memory logs are still buffered. *)
  let _, fe = mk () in
  let module St = Asym_structs.Pstack.Make (Client) in
  let st = St.attach fe ~name:"s" in
  St.push st (Bytes.of_string "acked");
  (* Returned; now crash with the memory logs unflushed. *)
  Client.crash fe;
  let ops = Client.recover fe in
  check Alcotest.int "the acked push is recoverable" 1 (List.length ops)

(* -- rnvm_tx_write: all-or-nothing ------------------------------------------ *)

let test_tx_write_atomicity_under_torn_write () =
  let bk, fe = mk () in
  let h = Client.register_ds fe "d" in
  let a1 = Client.malloc fe 64 and a2 = Client.malloc fe 64 in
  (* Build a two-entry transaction by hand, write it torn, and restart:
     neither entry may be applied. *)
  let tx =
    Log.Tx.encode
      {
        Log.Tx.ds = h.Types.id;
        op_hi = 50L;
        entries =
          [
            Log.Mem_entry.make ~addr:a1 (Bytes.of_string "AAAA");
            Log.Mem_entry.make ~addr:a2 (Bytes.of_string "BBBB");
          ];
      }
  in
  let ring_base, _ = Backend.memlog_ring bk ~session:(Client.session fe) in
  let cursors = Backend.session_cursors bk ~session:(Client.session fe) in
  Asym_nvm.Device.write (Backend.device bk) ~addr:(ring_base + cursors.Rpc_msg.memlog_head) tx;
  Backend.crash ~torn_keep:(Bytes.length tx - 2) bk;
  ignore (Backend.restart bk);
  let dev = Backend.device bk in
  check Alcotest.bool "first entry not applied" true
    (Bytes.to_string (Asym_nvm.Device.read dev ~addr:a1 ~len:4) <> "AAAA");
  check Alcotest.bool "second entry not applied" true
    (Bytes.to_string (Asym_nvm.Device.read dev ~addr:a2 ~len:4) <> "BBBB")

let test_tx_write_applies_all_when_intact () =
  let bk, fe = mk () in
  let h = Client.register_ds fe "d" in
  let a1 = Client.malloc fe 64 and a2 = Client.malloc fe 64 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write fe ~ds:h.Types.id ~addr:a1 (Bytes.of_string "AAAA");
  Client.write fe ~ds:h.Types.id ~addr:a2 (Bytes.of_string "BBBB");
  Client.op_end fe ~ds:h.Types.id;
  Client.flush fe;
  let dev = Backend.device bk in
  check Alcotest.string "first applied" "AAAA" (Bytes.to_string (Asym_nvm.Device.read dev ~addr:a1 ~len:4));
  check Alcotest.string "second applied" "BBBB" (Bytes.to_string (Asym_nvm.Device.read dev ~addr:a2 ~len:4))

(* -- rnvm_malloc / rnvm_free -------------------------------------------------- *)

let test_malloc_returns_data_area_addresses () =
  let bk, fe = mk () in
  let l = Backend.layout bk in
  for _ = 1 to 200 do
    let a = Client.malloc fe 48 in
    if a < l.Layout.data_base || a >= l.Layout.capacity then
      Alcotest.failf "allocation outside the data area: %#x" a
  done

let test_free_enables_reuse () =
  let bk, fe = mk () in
  let before = Backend.used_slabs bk in
  let addrs = List.init 64 (fun _ -> Client.malloc fe 4096) in
  check Alcotest.bool "slabs consumed" true (Backend.used_slabs bk > before);
  List.iter (fun a -> Client.free fe a ~len:4096) addrs;
  Client.flush fe;
  (* Allocate again: the pool must not grow monotonically. *)
  let mid = Backend.used_slabs bk in
  let _ = List.init 64 (fun _ -> Client.malloc fe 4096) in
  check Alcotest.bool "freed space reused" true
    (Backend.used_slabs bk <= mid + 64)

(* -- locks ---------------------------------------------------------------------- *)

let test_writer_lock_mutual_exclusion_cost () =
  let bk, fe1 = mk () in
  let fe2 = Client.connect ~name:"fe2" (Client.r ()) bk ~clock:(Clock.create ~name:"fe2" ()) in
  let h1 = Client.register_ds fe1 "d" in
  let h2 = Client.register_ds fe2 "d" in
  Client.writer_lock fe1 h1;
  Clock.advance (Client.clock fe1) (Simtime.us 100);
  Client.writer_unlock fe1 h1;
  (* fe2 contends: its acquisition cannot complete before fe1's release. *)
  Client.writer_lock fe2 h2;
  check Alcotest.bool "waited for the holder" true
    (Clock.now (Client.clock fe2) >= Clock.now (Client.clock fe1) - Simtime.us 10);
  Client.writer_unlock fe2 h2

let test_reader_lock_retries_are_bounded () =
  let _, fe = mk () in
  let h = Client.register_ds fe "d" in
  let addr = Client.malloc fe 8 in
  (* With no writer at all, a read section validates on the first try. *)
  let before = Client.read_retries fe in
  let v = Client.read_section fe h (fun () -> Client.read_u64 fe addr) in
  check Alcotest.int64 "value" 0L v;
  check Alcotest.int "no retries" before (Client.read_retries fe)

(* -- fuzz: log scanning never misbehaves on arbitrary bytes --------------------- *)

let prop_tx_scan_total =
  QCheck.Test.make ~count:500 ~name:"Tx.scan is total on arbitrary buffers"
    QCheck.(pair (string_of_size Gen.(0 -- 256)) small_nat)
    (fun (junk, pos) ->
      let buf = Bytes.of_string junk in
      let pos = if Bytes.length buf = 0 then 0 else pos mod (Bytes.length buf + 1) in
      match Log.Tx.scan buf ~pos with
      | Log.Tx.Record (_, consumed) -> consumed > 0 && pos + consumed <= Bytes.length buf
      | Log.Tx.Torn | Log.Tx.Wrap | Log.Tx.Empty -> true)

let prop_op_scan_total =
  QCheck.Test.make ~count:500 ~name:"Op_entry.scan is total on arbitrary buffers"
    QCheck.(string_of_size Gen.(0 -- 256))
    (fun junk ->
      let buf = Bytes.of_string junk in
      match Log.Op_entry.scan buf ~pos:0 with
      | Log.Op_entry.Record (_, consumed) -> consumed > 0 && consumed <= Bytes.length buf
      | Log.Op_entry.Torn | Log.Op_entry.Wrap | Log.Op_entry.Empty -> true)

let () =
  Alcotest.run "table1"
    [
      ( "rnvm_read/write",
        [
          Alcotest.test_case "read sees unpersisted own writes" `Quick
            test_read_returns_unpersisted_own_writes;
          Alcotest.test_case "fence publishes writes" `Quick
            test_fence_makes_writes_globally_visible;
          Alcotest.test_case "op-logged write recoverable on return" `Quick
            test_oplogged_write_survives_crash_when_op_returns;
        ] );
      ( "rnvm_tx_write",
        [
          Alcotest.test_case "torn tx applies nothing" `Quick
            test_tx_write_atomicity_under_torn_write;
          Alcotest.test_case "intact tx applies everything" `Quick
            test_tx_write_applies_all_when_intact;
        ] );
      ( "rnvm_malloc/free",
        [
          Alcotest.test_case "addresses in data area" `Quick test_malloc_returns_data_area_addresses;
          Alcotest.test_case "free enables reuse" `Quick test_free_enables_reuse;
        ] );
      ( "locks",
        [
          Alcotest.test_case "writer mutual exclusion" `Quick test_writer_lock_mutual_exclusion_cost;
          Alcotest.test_case "reader validation, no writer" `Quick
            test_reader_lock_retries_are_bounded;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_tx_scan_total;
          QCheck_alcotest.to_alcotest prop_op_scan_total;
        ] );
    ]
