open Asym_sim
open Asym_nvm
open Asym_rdma

let check = Alcotest.check
let lat = Latency.default

let mk () =
  let dev = Device.create ~name:"backend" ~capacity:65536 lat in
  let nic = Timeline.create ~name:"nic" () in
  let clk = Clock.create ~name:"client" () in
  let conn = Verbs.connect ~client:clk ~remote_nic:nic ~remote_mem:dev lat in
  (dev, nic, clk, conn)

let test_write_then_read () =
  let _, _, _, conn = mk () in
  Verbs.write conn ~addr:128 (Bytes.of_string "payload");
  check Alcotest.string "roundtrip" "payload"
    (Bytes.to_string (Verbs.read conn ~addr:128 ~len:7))

let test_read_charges_rtt () =
  let _, _, clk, conn = mk () in
  ignore (Verbs.read conn ~addr:0 ~len:8);
  check Alcotest.bool "client paid at least one RTT" true
    (Clock.now clk >= lat.Latency.rdma_rtt_ns)

let test_write_durable_on_return () =
  let dev, _, _, conn = mk () in
  Verbs.write conn ~addr:0 (Bytes.of_string "D");
  (* A crash-restart of the device must preserve the acked write. *)
  Device.crash_restart dev;
  check Alcotest.string "durable" "D" (Bytes.to_string (Device.read dev ~addr:0 ~len:1))

let test_unsignaled_cheaper () =
  let _, _, clk1, conn1 = mk () in
  let _, _, clk2, conn2 = mk () in
  Verbs.write conn1 ~addr:0 (Bytes.create 64);
  Verbs.write_unsignaled conn2 ~addr:0 (Bytes.create 64);
  check Alcotest.bool "unsignaled much cheaper" true (Clock.now clk2 * 2 < Clock.now clk1)

let test_nic_queueing () =
  (* Two clients hammering one NIC must see queueing delays. *)
  let dev = Device.create ~name:"b" ~capacity:4096 lat in
  let nic = Timeline.create () in
  let c1 = Clock.create () and c2 = Clock.create () in
  let conn1 = Verbs.connect ~client:c1 ~remote_nic:nic ~remote_mem:dev lat in
  let conn2 = Verbs.connect ~client:c2 ~remote_nic:nic ~remote_mem:dev lat in
  Verbs.write conn1 ~addr:0 (Bytes.create 4096);
  Verbs.write conn2 ~addr:0 (Bytes.create 4096);
  (* conn2 posted at t=0 too, but the NIC was busy with conn1's 4 KB. *)
  check Alcotest.bool "second client queued" true (Clock.now c2 > Clock.now c1 / 2)

let test_cas_applies () =
  let dev, _, _, conn = mk () in
  Device.write_u64 dev ~addr:64 7L;
  let old = Verbs.compare_and_swap conn ~addr:64 ~expected:7L ~desired:8L in
  check Alcotest.int64 "old" 7L old;
  check Alcotest.int64 "new" 8L (Device.read_u64 dev ~addr:64)

let test_fetch_add_applies () =
  let dev, _, _, conn = mk () in
  let old = Verbs.fetch_add conn ~addr:64 3L in
  check Alcotest.int64 "old" 0L old;
  check Alcotest.int64 "new" 3L (Device.read_u64 dev ~addr:64)

let test_failure_detection () =
  let _, _, _, conn = mk () in
  Verbs.set_failed conn true;
  Alcotest.check_raises "read fails" (Verbs.Failure_detected "backend") (fun () ->
      ignore (Verbs.read conn ~addr:0 ~len:8));
  Alcotest.check_raises "write fails" (Verbs.Failure_detected "backend") (fun () ->
      Verbs.write conn ~addr:0 (Bytes.create 1));
  Verbs.set_failed conn false;
  ignore (Verbs.read conn ~addr:0 ~len:8)

let test_counters () =
  let _, _, _, conn = mk () in
  Verbs.write conn ~addr:0 (Bytes.create 10);
  ignore (Verbs.read conn ~addr:0 ~len:6);
  check Alcotest.int "ops" 2 (Verbs.ops_posted conn);
  check Alcotest.int "wire bytes" 16 (Verbs.bytes_on_wire conn)

let test_wire_len_override () =
  let _, _, clk1, conn1 = mk () in
  let _, _, clk2, conn2 = mk () in
  let big = Bytes.create 8192 in
  Verbs.write conn1 ~addr:0 big;
  Verbs.write ~wire_len:64 conn2 ~addr:0 big;
  check Alcotest.bool "optimized wire is cheaper" true (Clock.now clk2 < Clock.now clk1);
  (* Content still lands in full. *)
  check Alcotest.int "content intact" 8192
    (Bytes.length (Verbs.read conn2 ~addr:0 ~len:8192))

let test_larger_payload_costs_more () =
  let _, _, clk1, conn1 = mk () in
  let _, _, clk2, conn2 = mk () in
  ignore (Verbs.read conn1 ~addr:0 ~len:64);
  ignore (Verbs.read conn2 ~addr:0 ~len:16384);
  check Alcotest.bool "16K read slower than 64B" true (Clock.now clk2 > Clock.now clk1)

let () =
  Alcotest.run "rdma"
    [
      ( "verbs",
        [
          Alcotest.test_case "write then read" `Quick test_write_then_read;
          Alcotest.test_case "read charges rtt" `Quick test_read_charges_rtt;
          Alcotest.test_case "write durable on return" `Quick test_write_durable_on_return;
          Alcotest.test_case "unsignaled cheaper" `Quick test_unsignaled_cheaper;
          Alcotest.test_case "nic queueing" `Quick test_nic_queueing;
          Alcotest.test_case "cas" `Quick test_cas_applies;
          Alcotest.test_case "fetch_add" `Quick test_fetch_add_applies;
          Alcotest.test_case "failure detection" `Quick test_failure_detection;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "wire_len override" `Quick test_wire_len_override;
          Alcotest.test_case "payload scaling" `Quick test_larger_payload_costs_more;
        ] );
    ]
