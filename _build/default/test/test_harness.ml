(* Smoke tests of the experiment harness: tiny versions of each runner
   must produce positive, sane throughput and respect the expected
   orderings (the full-size runs live in bench/main.exe). *)

open Asym_harness

let check = Alcotest.check
let lat = Asym_sim.Latency.default
let tiny = { Experiments.preload = 400; ops = 400; subscribers = 50; accounts = 100 }

let run_cell ?put_ratio cfg kind =
  (Runner.run_asym ?put_ratio ~rig:(Runner.make_rig lat) ~cfg ~kind ~preload:tiny.Experiments.preload
     ~ops:tiny.Experiments.ops ())
    .Runner.kops

let test_all_ds_all_configs_positive () =
  List.iter
    (fun kind ->
      List.iter
        (fun cfg ->
          let kops = run_cell cfg kind in
          if kops <= 0.0 then
            Alcotest.failf "%s/%s: non-positive throughput" (Runner.ds_name kind)
              (Asym_core.Client.config_name cfg))
        [ Asym_core.Client.naive (); Asym_core.Client.r (); Asym_core.Client.rcb () ])
    Runner.all_ds

let test_sym_all_ds_positive () =
  List.iter
    (fun kind ->
      let r =
        Runner.run_sym ~lat ~cfg:Asym_baseline.Local_store.symmetric ~kind
          ~preload:tiny.Experiments.preload ~ops:tiny.Experiments.ops ()
      in
      if r.Runner.kops <= 0.0 then Alcotest.failf "%s: non-positive" (Runner.ds_name kind))
    Runner.all_ds

let test_rcb_beats_naive () =
  List.iter
    (fun kind ->
      let naive = run_cell (Asym_core.Client.naive ()) kind in
      let rcb = run_cell (Asym_core.Client.rcb ()) kind in
      if rcb <= naive then
        Alcotest.failf "%s: RCB (%.1f) not faster than naive (%.1f)" (Runner.ds_name kind) rcb
          naive)
    [ Runner.Queue; Runner.Hash_table; Runner.Bpt; Runner.Mv_bpt ]

let test_read_heavy_faster_than_write_heavy () =
  let w = run_cell ~put_ratio:1.0 (Asym_core.Client.rc ()) Runner.Hash_table in
  let r = run_cell ~put_ratio:0.0 (Asym_core.Client.rc ()) Runner.Hash_table in
  check Alcotest.bool "reads cheaper" true (r > w)

let test_trace_runner () =
  let r =
    Runner.run_asym_trace ~rig:(Runner.make_rig lat) ~cfg:(Asym_core.Client.rc ())
      ~kind:Runner.Hash_table ~preload:200 ~ops:200 ~put_ratio:0.5 ()
  in
  check Alcotest.bool "positive" true (r.Runner.kops > 0.0)

let test_fig8_point () =
  let p = Multiclient.fig8_point ~kind:Runner.Bst ~readers:2 ~preload:300 ~duration:(Asym_sim.Simtime.ms 3) in
  check Alcotest.bool "reader tput positive" true (p.Multiclient.reader_avg_kops > 0.0);
  check Alcotest.bool "writer tput positive" true (p.Multiclient.writer_kops > 0.0)

let test_fig9_scales () =
  let one = Multiclient.fig9_point ~kind:Runner.Bpt ~n:1 ~preload:300 ~duration:(Asym_sim.Simtime.ms 3) in
  let three = Multiclient.fig9_point ~kind:Runner.Bpt ~n:3 ~preload:300 ~duration:(Asym_sim.Simtime.ms 3) in
  check Alcotest.bool "3 clients beat 1" true (three > 1.5 *. one)

let test_fig10_point () =
  let k = Multiclient.fig10_point ~kind:Runner.Bpt ~backends:2 ~preload:300 ~ops:300 in
  check Alcotest.bool "partitioned positive" true (k > 0.0)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_rendering () =
  let t = Report.create ~title:"t" ~header:[ "a"; "bb" ] ~notes:[ "n" ] () in
  Report.add_row t [ "1"; "2" ];
  Report.add_row t [ "333" ];
  let s = Format.asprintf "%a" Report.render t in
  check Alcotest.bool "title" true (contains s "== t ==");
  check Alcotest.bool "note" true (contains s "note: n");
  check Alcotest.bool "short row padded" true (contains s "333")

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "all ds x configs" `Slow test_all_ds_all_configs_positive;
          Alcotest.test_case "symmetric all ds" `Quick test_sym_all_ds_positive;
          Alcotest.test_case "rcb beats naive" `Slow test_rcb_beats_naive;
          Alcotest.test_case "read vs write" `Quick test_read_heavy_faster_than_write_heavy;
          Alcotest.test_case "trace runner" `Quick test_trace_runner;
        ] );
      ( "multiclient",
        [
          Alcotest.test_case "fig8 point" `Quick test_fig8_point;
          Alcotest.test_case "fig9 scaling" `Quick test_fig9_scales;
          Alcotest.test_case "fig10 point" `Quick test_fig10_point;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
    ]
