test/test_nvm.ml: Alcotest Asym_nvm Asym_sim Bytes Device Gen QCheck QCheck_alcotest String
