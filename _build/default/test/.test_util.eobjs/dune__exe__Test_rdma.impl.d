test/test_rdma.ml: Alcotest Asym_nvm Asym_rdma Asym_sim Bytes Clock Device Latency Timeline Verbs
