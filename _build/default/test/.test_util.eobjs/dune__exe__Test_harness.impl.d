test/test_harness.ml: Alcotest Asym_baseline Asym_core Asym_harness Asym_sim Experiments Format List Multiclient Report Runner String
