test/test_backend.ml: Alcotest Asym_core Asym_nvm Asym_sim Backend Backend_alloc Bytes Char Client Clock Int64 Latency Layout List Naming Simtime String Timeline Types
