test/test_table1.ml: Alcotest Asym_core Asym_nvm Asym_sim Asym_structs Backend Bytes Client Clock Gen Latency Layout List Log QCheck QCheck_alcotest Rpc_msg Simtime Types
