test/test_sim.ml: Alcotest Asym_sim Clock Conflict Format Latency List QCheck QCheck_alcotest Sched Simtime Timeline
