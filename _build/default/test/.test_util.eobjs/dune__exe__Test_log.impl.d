test/test_log.ml: Alcotest Asym_core Bytes Int64 List Log QCheck QCheck_alcotest String
