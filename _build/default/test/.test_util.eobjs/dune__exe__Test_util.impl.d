test/test_util.ml: Alcotest Array Asym_util Bytes Codec Crc32 Int64 List QCheck QCheck_alcotest Rng Stats Zipf
