test/test_apps.ml: Alcotest Asym_apps Asym_baseline Asym_core Asym_sim Asym_structs Asym_util Backend Bytes Client Clock Int64 Latency Printf Types
