test/test_workload.ml: Alcotest Array Asym_util Asym_workload Bytes Hashtbl Int64 Option Trace Ycsb
