test/test_table1.mli:
