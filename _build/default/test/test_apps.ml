open Asym_sim
open Asym_core

let check = Alcotest.check
let lat = Latency.default

let mk_backend () =
  Backend.create ~name:"bk" ~max_sessions:4 ~memlog_cap:(1024 * 1024) ~oplog_cap:(512 * 1024)
    ~slab_size:4096 ~capacity:(48 * 1024 * 1024) lat

let mk_client ?(cfg = Client.rc ()) bk =
  Client.connect ~name:"app" cfg bk ~clock:(Clock.create ~name:"app" ())

module Bank = Asym_apps.Smallbank.Make (Client)
module Bank_l = Asym_apps.Smallbank.Make (Asym_baseline.Local_store)
module Tatp = Asym_apps.Tatp.Make (Client)

(* ---------------- SmallBank ---------------- *)

let mk_bank ?(accounts = 50) () =
  let fe = mk_client (mk_backend ()) in
  (fe, Bank.create fe ~name:"bank" ~accounts ~initial_balance:100L)

let test_bank_balance () =
  let _, b = mk_bank () in
  check (Alcotest.option Alcotest.int64) "initial total" (Some 200L) (Bank.balance b ~cust:3L);
  check (Alcotest.option Alcotest.int64) "missing account" None (Bank.balance b ~cust:999L)

let test_bank_deposit () =
  let _, b = mk_bank () in
  check Alcotest.bool "deposit ok" true (Bank.deposit_checking b ~cust:1L ~amount:50L);
  check (Alcotest.option Alcotest.int64) "new total" (Some 250L) (Bank.balance b ~cust:1L);
  check Alcotest.bool "negative rejected" false (Bank.deposit_checking b ~cust:1L ~amount:(-5L));
  check Alcotest.bool "missing rejected" false (Bank.deposit_checking b ~cust:999L ~amount:5L)

let test_bank_transact_savings () =
  let _, b = mk_bank () in
  check Alcotest.bool "withdraw ok" true (Bank.transact_savings b ~cust:2L ~amount:(-40L));
  check (Alcotest.option Alcotest.int64) "total reduced" (Some 160L) (Bank.balance b ~cust:2L);
  check Alcotest.bool "overdraft rejected" false (Bank.transact_savings b ~cust:2L ~amount:(-100L));
  check (Alcotest.option Alcotest.int64) "unchanged" (Some 160L) (Bank.balance b ~cust:2L)

let test_bank_send_payment () =
  let _, b = mk_bank () in
  check Alcotest.bool "payment ok" true (Bank.send_payment b ~from_cust:1L ~to_cust:2L ~amount:30L);
  check (Alcotest.option Alcotest.int64) "sender" (Some 170L) (Bank.balance b ~cust:1L);
  check (Alcotest.option Alcotest.int64) "receiver" (Some 230L) (Bank.balance b ~cust:2L);
  check Alcotest.bool "insufficient funds" false
    (Bank.send_payment b ~from_cust:1L ~to_cust:2L ~amount:1000L);
  check Alcotest.bool "self payment rejected" false
    (Bank.send_payment b ~from_cust:1L ~to_cust:1L ~amount:10L)

let test_bank_amalgamate () =
  let _, b = mk_bank () in
  check Alcotest.bool "amalgamate ok" true (Bank.amalgamate b ~from_cust:1L ~to_cust:2L);
  check (Alcotest.option Alcotest.int64) "source emptied" (Some 0L) (Bank.balance b ~cust:1L);
  check (Alcotest.option Alcotest.int64) "target doubled+" (Some 400L) (Bank.balance b ~cust:2L);
  check Alcotest.bool "self amalgamate rejected" false (Bank.amalgamate b ~from_cust:3L ~to_cust:3L)

let test_bank_write_check_penalty () =
  let _, b = mk_bank () in
  (* Check below assets: no penalty. *)
  check Alcotest.bool "ok" true (Bank.write_check b ~cust:1L ~amount:50L);
  check (Alcotest.option Alcotest.int64) "reduced" (Some 150L) (Bank.balance b ~cust:1L);
  (* Check above assets: 1 cent penalty. *)
  check Alcotest.bool "overdraft ok" true (Bank.write_check b ~cust:1L ~amount:200L);
  check (Alcotest.option Alcotest.int64) "penalized" (Some (Int64.of_int (150 - 200 - 1)))
    (Bank.balance b ~cust:1L)

let test_bank_conservation_under_random_mix () =
  let accounts = 30 in
  let fe, b = mk_bank ~accounts () in
  let conserving =
    Asym_apps.Smallbank.[ (Amalgamate, 30); (Balance, 20); (Send_payment, 50) ]
  in
  let rng = Asym_util.Rng.create ~seed:11L in
  for _ = 1 to 2_000 do
    Bank.run_random b rng ~accounts ~mix:conserving
  done;
  Client.flush fe;
  check Alcotest.int64 "money conserved"
    (Int64.of_int (accounts * 200))
    (Bank.total_assets b ~accounts)

let test_bank_recovery_mid_run () =
  let accounts = 20 in
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:16 ()) bk in
  let b = Bank.create fe ~name:"bank" ~accounts ~initial_balance:100L in
  Client.flush fe;
  let conserving = Asym_apps.Smallbank.[ (Amalgamate, 40); (Send_payment, 60) ] in
  let rng = Asym_util.Rng.create ~seed:13L in
  for _ = 1 to 333 do
    Bank.run_random b rng ~accounts ~mix:conserving
  done;
  (* Crash with a partial batch; replay; money must be conserved. *)
  Client.crash fe;
  let ops = Client.recover fe in
  let b = Bank.attach fe ~name:"bank" in
  (* Replay through the two hash tables' own replay functions. *)
  let module H = Asym_structs.Phash.Make (Client) in
  let reg = Asym_structs.Registry.create () in
  Asym_structs.Registry.register reg ~ds:(H.handle (Bank.checking b)).Types.id
    (H.replay (Bank.checking b));
  Asym_structs.Registry.register reg ~ds:(H.handle (Bank.savings b)).Types.id
    (H.replay (Bank.savings b));
  Asym_structs.Registry.replay_all reg ops;
  Client.flush fe;
  check Alcotest.int64 "money conserved across crash"
    (Int64.of_int (accounts * 200))
    (Bank.total_assets b ~accounts)

let test_bank_on_symmetric_baseline () =
  let s = Asym_baseline.Local_store.create lat ~clock:(Clock.create ~name:"sym" ()) in
  let b = Bank_l.create s ~name:"bank" ~accounts:10 ~initial_balance:100L in
  check Alcotest.bool "works" true (Bank_l.send_payment b ~from_cust:0L ~to_cust:1L ~amount:5L);
  check Alcotest.int64 "conserved" 2000L (Bank_l.total_assets b ~accounts:10)

(* ---------------- TATP ---------------- *)

let mk_tatp ?(subscribers = 40) () =
  let fe = mk_client (mk_backend ()) in
  let t = Tatp.attach fe ~name:"tatp" in
  Tatp.populate t (Asym_util.Rng.create ~seed:5L) ~subscribers;
  (fe, t)

let test_tatp_get_subscriber () =
  let _, t = mk_tatp () in
  (match Tatp.get_subscriber_data t ~s_id:7 with
  | Some r ->
      check Alcotest.int64 "s_id field" 7L (Bytes.get_int64_le r 0);
      check Alcotest.string "sub_nbr" (Printf.sprintf "%015d" 7) (Bytes.sub_string r 24 15)
  | None -> Alcotest.fail "subscriber 7 missing");
  check Alcotest.bool "missing subscriber" true (Tatp.get_subscriber_data t ~s_id:9999 = None)

let test_tatp_access_data () =
  let _, t = mk_tatp () in
  (* ai_type 1 always exists (populate creates 1..n with n >= 1). *)
  match Tatp.get_access_data t ~s_id:3 ~ai_type:1 with
  | Some r -> check Alcotest.string "record shape" "ai01" (Bytes.sub_string r 0 4)
  | None -> Alcotest.fail "access info missing"

let test_tatp_update_location () =
  let _, t = mk_tatp () in
  check Alcotest.bool "update ok" true (Tatp.update_location t ~s_id:5 ~vlr:424242);
  match Tatp.get_subscriber_data t ~s_id:5 with
  | Some r -> check Alcotest.int64 "vlr updated" 424242L (Bytes.get_int64_le r 16)
  | None -> Alcotest.fail "subscriber missing"

let test_tatp_update_subscriber_data () =
  let _, t = mk_tatp () in
  (* sf_type 1 always exists. *)
  check Alcotest.bool "update ok" true (Tatp.update_subscriber_data t ~s_id:2 ~sf_type:1 ~bits:99);
  match Tatp.get_subscriber_data t ~s_id:2 with
  | Some r -> check Alcotest.int64 "bits updated" 99L (Bytes.get_int64_le r 8)
  | None -> Alcotest.fail "subscriber missing"

let test_tatp_call_forwarding_lifecycle () =
  let _, t = mk_tatp () in
  (* Find a subscriber/sf with no call forwarding at slot 0, insert, get,
     duplicate-insert must abort, delete, delete again must abort. *)
  let s_id = 1 and sf_type = 1 and start_time = 0 in
  ignore (Tatp.delete_call_forwarding t ~s_id ~sf_type ~start_time);
  check Alcotest.bool "insert ok" true
    (Tatp.insert_call_forwarding t ~s_id ~sf_type ~start_time ~numberx:5551234);
  (match Tatp.get_new_destination t ~s_id ~sf_type ~start_time with
  | Some r -> check Alcotest.string "destination" "cf->000000005551234" (Bytes.to_string r)
  | None -> Alcotest.fail "destination missing");
  check Alcotest.bool "duplicate insert aborts" false
    (Tatp.insert_call_forwarding t ~s_id ~sf_type ~start_time ~numberx:1);
  check Alcotest.bool "delete ok" true (Tatp.delete_call_forwarding t ~s_id ~sf_type ~start_time);
  check Alcotest.bool "delete again aborts" false
    (Tatp.delete_call_forwarding t ~s_id ~sf_type ~start_time)

let test_tatp_random_mix_runs () =
  let fe, t = mk_tatp ~subscribers:30 () in
  let rng = Asym_util.Rng.create ~seed:17L in
  for _ = 1 to 2_000 do
    Tatp.run_random t rng ~subscribers:30 ~mix:Asym_apps.Tatp.default_mix
  done;
  Client.flush fe;
  check Alcotest.int "all transactions accounted" 2000 (Tatp.commits t + Tatp.aborts t);
  (* The mix is read-heavy; lookups of rows the spec populates sparsely
     (access-info types, call-forwarding slots) abort, so the commit rate
     sits well above half but below the read fraction. *)
  check Alcotest.bool "mostly commits" true (Tatp.commits t > 1100)

let () =
  Alcotest.run "apps"
    [
      ( "smallbank",
        [
          Alcotest.test_case "balance" `Quick test_bank_balance;
          Alcotest.test_case "deposit" `Quick test_bank_deposit;
          Alcotest.test_case "transact savings" `Quick test_bank_transact_savings;
          Alcotest.test_case "send payment" `Quick test_bank_send_payment;
          Alcotest.test_case "amalgamate" `Quick test_bank_amalgamate;
          Alcotest.test_case "write check penalty" `Quick test_bank_write_check_penalty;
          Alcotest.test_case "conservation" `Quick test_bank_conservation_under_random_mix;
          Alcotest.test_case "recovery mid-run" `Quick test_bank_recovery_mid_run;
          Alcotest.test_case "symmetric baseline" `Quick test_bank_on_symmetric_baseline;
        ] );
      ( "tatp",
        [
          Alcotest.test_case "get subscriber" `Quick test_tatp_get_subscriber;
          Alcotest.test_case "get access data" `Quick test_tatp_access_data;
          Alcotest.test_case "update location" `Quick test_tatp_update_location;
          Alcotest.test_case "update subscriber" `Quick test_tatp_update_subscriber_data;
          Alcotest.test_case "call forwarding lifecycle" `Quick
            test_tatp_call_forwarding_lifecycle;
          Alcotest.test_case "random mix" `Quick test_tatp_random_mix_runs;
        ] );
    ]
