open Asym_sim
open Asym_core
open Asym_structs

let check = Alcotest.check
let lat = Latency.default

let mk_backend ?(capacity = 32 * 1024 * 1024) () =
  Backend.create ~name:"bk" ~max_sessions:8 ~memlog_cap:(1024 * 1024) ~oplog_cap:(512 * 1024)
    ~slab_size:4096 ~capacity lat

let mk_client ?(cfg = Client.rcb ()) ?(name = "fe") bk =
  Client.connect ~name cfg bk ~clock:(Clock.create ~name ())

let mk_local () = Asym_baseline.Local_store.create lat ~clock:(Clock.create ~name:"sym" ())

let bytes_eq = Alcotest.testable (fun fmt b -> Fmt.string fmt (Bytes.to_string b)) Bytes.equal
let v s = Bytes.of_string s

(* Instantiate every structure over both stores. *)
module Stack_c = Pstack.Make (Client)
module Stack_l = Pstack.Make (Asym_baseline.Local_store)
module Queue_c = Pqueue.Make (Client)
module Queue_l = Pqueue.Make (Asym_baseline.Local_store)
module Hash_c = Phash.Make (Client)
module Hash_l = Phash.Make (Asym_baseline.Local_store)
module Skip_c = Pskiplist.Make (Client)
module Skip_l = Pskiplist.Make (Asym_baseline.Local_store)
module Bst_c = Pbst.Make (Client)
module Bst_l = Pbst.Make (Asym_baseline.Local_store)
module Bpt_c = Pbptree.Make (Client)
module Bpt_l = Pbptree.Make (Asym_baseline.Local_store)
module Mvbst_c = Pmvbst.Make (Client)
module Mvbpt_c = Pmvbptree.Make (Client)
module Part_c = Partition.Make (Client)

(* ---------------- stack ---------------- *)

let test_stack_lifo () =
  let fe = mk_client (mk_backend ()) in
  let s = Stack_c.attach fe ~name:"s" in
  Stack_c.push s (v "a");
  Stack_c.push s (v "b");
  Stack_c.push s (v "c");
  check Alcotest.int "size" 3 (Stack_c.size s);
  check (Alcotest.option bytes_eq) "peek" (Some (v "c")) (Stack_c.peek s);
  check (Alcotest.option bytes_eq) "pop c" (Some (v "c")) (Stack_c.pop s);
  check (Alcotest.option bytes_eq) "pop b" (Some (v "b")) (Stack_c.pop s);
  check (Alcotest.option bytes_eq) "pop a" (Some (v "a")) (Stack_c.pop s);
  check (Alcotest.option bytes_eq) "empty" None (Stack_c.pop s);
  check Alcotest.int "size 0" 0 (Stack_c.size s)

let test_stack_persists_across_clients () =
  let bk = mk_backend () in
  let fe1 = mk_client ~name:"fe1" bk in
  let s1 = Stack_c.attach fe1 ~name:"shared" in
  Stack_c.push s1 (v "deep");
  Stack_c.push s1 (v "top");
  Client.flush fe1;
  let fe2 = mk_client ~name:"fe2" bk in
  let s2 = Stack_c.attach fe2 ~name:"shared" in
  check Alcotest.int "size visible" 2 (Stack_c.size s2);
  check (Alcotest.option bytes_eq) "top visible" (Some (v "top")) (Stack_c.peek s2)

let test_stack_pop_after_push_no_rdma_reads () =
  (* §8.1: a pop right after an unflushed push is served from the overlay. *)
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:64 ()) ~name:"fe" bk in
  let s = Stack_c.attach fe ~name:"s" in
  Stack_c.push s (v "x");
  let before = Client.rdma_ops fe in
  ignore (Stack_c.pop s);
  let extra = Client.rdma_ops fe - before in
  (* Only the pop's operation-log write should hit the wire. *)
  check Alcotest.bool "pop mostly local" true (extra <= 1)

let prop_stack_model =
  QCheck.Test.make ~count:60 ~name:"stack vs list model"
    QCheck.(small_list (option (string_of_size Gen.(0 -- 20))))
    (fun ops ->
      let fe = mk_client (mk_backend ()) in
      let s = Stack_c.attach fe ~name:"s" in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some str ->
              Stack_c.push s (v str);
              model := v str :: !model;
              true
          | None -> (
              let got = Stack_c.pop s in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some x))
        ops
      && Stack_c.to_list s = !model)

(* ---------------- queue ---------------- *)

let test_queue_fifo () =
  let fe = mk_client (mk_backend ()) in
  let q = Queue_c.attach fe ~name:"q" in
  Queue_c.enqueue q (v "1");
  Queue_c.enqueue q (v "2");
  Queue_c.enqueue q (v "3");
  check Alcotest.int "size" 3 (Queue_c.size q);
  check (Alcotest.option bytes_eq) "deq 1" (Some (v "1")) (Queue_c.dequeue q);
  check (Alcotest.option bytes_eq) "deq 2" (Some (v "2")) (Queue_c.dequeue q);
  Queue_c.enqueue q (v "4");
  check (Alcotest.option bytes_eq) "deq 3" (Some (v "3")) (Queue_c.dequeue q);
  check (Alcotest.option bytes_eq) "deq 4" (Some (v "4")) (Queue_c.dequeue q);
  check (Alcotest.option bytes_eq) "empty" None (Queue_c.dequeue q)

let test_queue_drain_refill () =
  let fe = mk_client (mk_backend ()) in
  let q = Queue_c.attach fe ~name:"q" in
  Queue_c.enqueue q (v "a");
  check (Alcotest.option bytes_eq) "a" (Some (v "a")) (Queue_c.dequeue q);
  check (Alcotest.option bytes_eq) "empty" None (Queue_c.dequeue q);
  (* head=tail=0 again: refill must relink both ends. *)
  Queue_c.enqueue q (v "b");
  check (Alcotest.option bytes_eq) "peek b" (Some (v "b")) (Queue_c.peek q);
  check (Alcotest.option bytes_eq) "b" (Some (v "b")) (Queue_c.dequeue q)

let prop_queue_model =
  QCheck.Test.make ~count:60 ~name:"queue vs model"
    QCheck.(small_list (option (string_of_size Gen.(0 -- 20))))
    (fun ops ->
      let fe = mk_client (mk_backend ()) in
      let q = Queue_c.attach fe ~name:"q" in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some str ->
              Queue_c.enqueue q (v str);
              Queue.push (v str) model;
              true
          | None -> (
              let got = Queue_c.dequeue q in
              match Queue.take_opt model with
              | None -> got = None
              | some -> got = some))
        ops)

(* ---------------- hash table ---------------- *)

let test_hash_put_get_delete () =
  let fe = mk_client ~cfg:(Client.rc ()) (mk_backend ()) in
  let h = Hash_c.attach ~nbuckets:64 fe ~name:"h" in
  Hash_c.put h ~key:1L ~value:(v "one");
  Hash_c.put h ~key:2L ~value:(v "two");
  check (Alcotest.option bytes_eq) "get 1" (Some (v "one")) (Hash_c.get h ~key:1L);
  check (Alcotest.option bytes_eq) "get 2" (Some (v "two")) (Hash_c.get h ~key:2L);
  check (Alcotest.option bytes_eq) "get missing" None (Hash_c.get h ~key:3L);
  Hash_c.put h ~key:1L ~value:(v "uno");
  check (Alcotest.option bytes_eq) "updated" (Some (v "uno")) (Hash_c.get h ~key:1L);
  check Alcotest.int "size 2" 2 (Hash_c.size h);
  check Alcotest.bool "delete" true (Hash_c.delete h ~key:1L);
  check Alcotest.bool "delete again" false (Hash_c.delete h ~key:1L);
  check (Alcotest.option bytes_eq) "gone" None (Hash_c.get h ~key:1L);
  check Alcotest.int "size 1" 1 (Hash_c.size h)

let test_hash_collisions () =
  (* One bucket forces every key onto a single chain. *)
  let fe = mk_client (mk_backend ()) in
  let h = Hash_c.attach ~nbuckets:1 fe ~name:"h" in
  for i = 0 to 40 do
    Hash_c.put h ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  check Alcotest.int "size" 41 (Hash_c.size h);
  for i = 0 to 40 do
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "get %d" i)
      (Some (v (string_of_int i)))
      (Hash_c.get h ~key:(Int64.of_int i))
  done;
  (* Delete from the middle of the chain. *)
  check Alcotest.bool "del 20" true (Hash_c.delete h ~key:20L);
  check (Alcotest.option bytes_eq) "20 gone" None (Hash_c.get h ~key:20L);
  check (Alcotest.option bytes_eq) "19 intact" (Some (v "19")) (Hash_c.get h ~key:19L);
  check (Alcotest.option bytes_eq) "21 intact" (Some (v "21")) (Hash_c.get h ~key:21L)

let prop_hash_model =
  QCheck.Test.make ~count:40 ~name:"hash vs Hashtbl model"
    QCheck.(small_list (pair (int_bound 50) (option (string_of_size Gen.(0 -- 16)))))
    (fun ops ->
      let fe = mk_client (mk_backend ()) in
      let h = Hash_c.attach ~nbuckets:16 fe ~name:"h" in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, op) ->
          let key = Int64.of_int k in
          match op with
          | Some str ->
              Hash_c.put h ~key ~value:(v str);
              Hashtbl.replace model key (v str);
              Hash_c.get h ~key = Some (v str)
          | None ->
              let expected = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Hash_c.delete h ~key = expected)
        ops
      && Hashtbl.fold (fun k value acc -> acc && Hash_c.get h ~key:k = Some value) model true)

(* ---------------- ordered maps: skiplist / bst / bptree ---------------- *)

module type ORDERED = sig
  type t

  val put : t -> key:int64 -> value:bytes -> unit
  val find : t -> key:int64 -> bytes option
  val delete : t -> key:int64 -> bool
  val to_list : t -> (int64 * bytes) list
end

let ordered_semantics (type a) (module M : ORDERED with type t = a) (t : a) =
  M.put t ~key:5L ~value:(v "five");
  M.put t ~key:1L ~value:(v "one");
  M.put t ~key:9L ~value:(v "nine");
  M.put t ~key:3L ~value:(v "three");
  check (Alcotest.option bytes_eq) "find 3" (Some (v "three")) (M.find t ~key:3L);
  check (Alcotest.option bytes_eq) "find missing" None (M.find t ~key:4L);
  M.put t ~key:3L ~value:(v "THREE");
  check (Alcotest.option bytes_eq) "update" (Some (v "THREE")) (M.find t ~key:3L);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int64 bytes_eq))
    "sorted"
    [ (1L, v "one"); (3L, v "THREE"); (5L, v "five"); (9L, v "nine") ]
    (M.to_list t);
  check Alcotest.bool "delete 5" true (M.delete t ~key:5L);
  check Alcotest.bool "delete 5 again" false (M.delete t ~key:5L);
  check (Alcotest.option bytes_eq) "5 gone" None (M.find t ~key:5L);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int64 bytes_eq))
    "sorted after delete"
    [ (1L, v "one"); (3L, v "THREE"); (9L, v "nine") ]
    (M.to_list t)

let ordered_model (type a) ?(keys = 60) (module M : ORDERED with type t = a) (t : a) ops =
  let module Im = Map.Make (Int64) in
  let model = ref Im.empty in
  List.for_all
    (fun (k, op) ->
      let key = Int64.of_int (k mod keys) in
      match op with
      | Some str ->
          M.put t ~key ~value:(v str);
          model := Im.add key (v str) !model;
          true
      | None ->
          let expected = Im.mem key !model in
          model := Im.remove key !model;
          M.delete t ~key = expected)
    ops
  && M.to_list t = Im.bindings !model

let ops_gen = QCheck.(small_list (pair (int_bound 1000) (option (string_of_size Gen.(0 -- 16)))))

let mk_ordered_prop name make =
  QCheck.Test.make ~count:40 ~name ops_gen (fun ops ->
      let m, t = make () in
      ordered_model m t ops)

let test_skiplist_semantics () =
  let fe = mk_client (mk_backend ()) in
  ordered_semantics (module Skip_c) (Skip_c.attach fe ~name:"sl")

let prop_skiplist =
  mk_ordered_prop "skiplist vs Map model" (fun () ->
      let fe = mk_client (mk_backend ()) in
      ((module Skip_c : ORDERED with type t = Skip_c.t), Skip_c.attach fe ~name:"sl"))

let test_bst_semantics () =
  let fe = mk_client (mk_backend ()) in
  ordered_semantics (module Bst_c) (Bst_c.attach fe ~name:"bst")

let prop_bst =
  mk_ordered_prop "bst vs Map model" (fun () ->
      let fe = mk_client (mk_backend ()) in
      ((module Bst_c : ORDERED with type t = Bst_c.t), Bst_c.attach fe ~name:"bst"))

let test_bst_delete_two_children_cases () =
  let fe = mk_client (mk_backend ()) in
  let t = Bst_c.attach fe ~name:"bst" in
  (* Build:        50
                 /    \
               30      70
              /  \    /  \
            20   40  60   80   *)
  List.iter
    (fun k -> Bst_c.put t ~key:(Int64.of_int k) ~value:(v (string_of_int k)))
    [ 50; 30; 70; 20; 40; 60; 80 ];
  (* Delete the root (two children, successor is a grandchild). *)
  check Alcotest.bool "del 50" true (Bst_c.delete t ~key:50L);
  check
    (Alcotest.list Alcotest.int64)
    "inorder" [ 20L; 30L; 40L; 60L; 70L; 80L ]
    (List.map fst (Bst_c.to_list t));
  (* Delete a node whose successor is its immediate right child. *)
  check Alcotest.bool "del 70" true (Bst_c.delete t ~key:70L);
  check
    (Alcotest.list Alcotest.int64)
    "inorder2" [ 20L; 30L; 40L; 60L; 80L ]
    (List.map fst (Bst_c.to_list t))

let test_bptree_semantics () =
  let fe = mk_client (mk_backend ()) in
  ordered_semantics (module Bpt_c) (Bpt_c.attach fe ~name:"bpt")

let prop_bptree =
  mk_ordered_prop "bptree vs Map model" (fun () ->
      let fe = mk_client (mk_backend ()) in
      ((module Bpt_c : ORDERED with type t = Bpt_c.t), Bpt_c.attach fe ~name:"bpt"))

let test_bptree_splits () =
  let fe = mk_client (mk_backend ()) in
  let t = Bpt_c.attach fe ~name:"bpt" in
  let n = 2000 in
  for i = 0 to n - 1 do
    (* Shuffle-ish order via multiplication mod prime. *)
    let k = i * 7919 mod n in
    Bpt_c.put t ~key:(Int64.of_int k) ~value:(v (string_of_int k))
  done;
  let l = Bpt_c.to_list t in
  check Alcotest.int "all present" n (List.length l);
  check (Alcotest.list Alcotest.int64) "sorted"
    (List.init n (fun i -> Int64.of_int i))
    (List.map fst l);
  for i = 0 to 99 do
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "find %d" i)
      (Some (v (string_of_int i)))
      (Bpt_c.find t ~key:(Int64.of_int i))
  done

let test_bptree_range () =
  let fe = mk_client (mk_backend ()) in
  let t = Bpt_c.attach fe ~name:"bpt" in
  for i = 0 to 199 do
    Bpt_c.put t ~key:(Int64.of_int (2 * i)) ~value:(v (string_of_int (2 * i)))
  done;
  let r = Bpt_c.range t ~lo:100L ~hi:120L in
  check (Alcotest.list Alcotest.int64) "range keys"
    [ 100L; 102L; 104L; 106L; 108L; 110L; 112L; 114L; 116L; 118L; 120L ]
    (List.map fst r)

let test_skiplist_range () =
  let fe = mk_client (mk_backend ()) in
  let t = Skip_c.attach fe ~name:"sl" in
  for i = 0 to 99 do
    Skip_c.put t ~key:(Int64.of_int (3 * i)) ~value:(v (string_of_int (3 * i)))
  done;
  check (Alcotest.list Alcotest.int64) "inclusive bounds" [ 30L; 33L; 36L; 39L ]
    (List.map fst (Skip_c.range t ~lo:30L ~hi:39L));
  check (Alcotest.list Alcotest.int64) "bounds between keys" [ 33L; 36L ]
    (List.map fst (Skip_c.range t ~lo:31L ~hi:38L));
  check Alcotest.int "empty range" 0 (List.length (Skip_c.range t ~lo:1000L ~hi:2000L))

let test_bst_range () =
  let fe = mk_client (mk_backend ()) in
  let t = Bst_c.attach fe ~name:"bst" in
  List.iter
    (fun k -> Bst_c.put t ~key:(Int64.of_int k) ~value:(v (string_of_int k)))
    [ 50; 30; 70; 20; 40; 60; 80; 35; 45 ];
  check (Alcotest.list Alcotest.int64) "mid range" [ 35L; 40L; 45L; 50L; 60L ]
    (List.map fst (Bst_c.range t ~lo:35L ~hi:60L));
  check (Alcotest.list Alcotest.int64) "whole tree" [ 20L; 30L; 35L; 40L; 45L; 50L; 60L; 70L; 80L ]
    (List.map fst (Bst_c.range t ~lo:Int64.min_int ~hi:Int64.max_int));
  check Alcotest.int "empty" 0 (List.length (Bst_c.range t ~lo:81L ~hi:100L))

(* Range scans against the Map model: every structure with [range] must
   agree with filtering the reference bindings. *)
let range_prop name make_range =
  QCheck.Test.make ~count:30 ~name
    QCheck.(triple (small_list (int_bound 200)) (int_bound 200) (int_bound 200))
    (fun (keys, a, b) ->
      let lo = Int64.of_int (min a b) and hi = Int64.of_int (max a b) in
      let fe = mk_client (mk_backend ()) in
      let put, range = make_range fe in
      let module Im = Map.Make (Int64) in
      let model =
        List.fold_left
          (fun m k ->
            let key = Int64.of_int k in
            put key (v (string_of_int k));
            Im.add key (v (string_of_int k)) m)
          Im.empty keys
      in
      let expected =
        Im.bindings (Im.filter (fun k _ -> k >= lo && k <= hi) model)
      in
      range ~lo ~hi = expected)

let prop_bst_range =
  range_prop "bst range vs model" (fun fe ->
      let t = Bst_c.attach fe ~name:"bst" in
      ((fun key value -> Bst_c.put t ~key ~value), fun ~lo ~hi -> Bst_c.range t ~lo ~hi))

let prop_bpt_range =
  range_prop "bptree range vs model" (fun fe ->
      let t = Bpt_c.attach fe ~name:"bpt" in
      ((fun key value -> Bpt_c.put t ~key ~value), fun ~lo ~hi -> Bpt_c.range t ~lo ~hi))

let prop_skiplist_range =
  range_prop "skiplist range vs model" (fun fe ->
      let t = Skip_c.attach fe ~name:"sl" in
      ((fun key value -> Skip_c.put t ~key ~value), fun ~lo ~hi -> Skip_c.range t ~lo ~hi))

(* ---------------- multi-version ---------------- *)

let test_mvbst_semantics () =
  let fe = mk_client (mk_backend ()) in
  ordered_semantics (module Mvbst_c) (Mvbst_c.attach fe ~name:"mv")

let prop_mvbst =
  mk_ordered_prop "mv-bst vs Map model" (fun () ->
      let fe = mk_client (mk_backend ()) in
      ((module Mvbst_c : ORDERED with type t = Mvbst_c.t), Mvbst_c.attach fe ~name:"mv"))

let test_mvbst_gc_defers_then_frees () =
  let fe = mk_client (mk_backend ()) in
  let t = Mvbst_c.attach fe ~name:"mv" in
  for i = 0 to 9 do
    Mvbst_c.put t ~key:(Int64.of_int i) ~value:(v "x")
  done;
  check Alcotest.bool "garbage deferred" true (Mvbst_c.gc_pending t > 0);
  (* After the grace period, pumping (via another op) reclaims. *)
  Clock.advance (Client.clock fe) (Simtime.us 6000);
  Mvbst_c.put t ~key:100L ~value:(v "y");
  check Alcotest.bool "most garbage reclaimed" true (Mvbst_c.gc_pending t < 12);
  Mvbst_c.gc_drain t;
  check Alcotest.int "drained" 0 (Mvbst_c.gc_pending t)

let test_mvbpt_semantics () =
  let fe = mk_client (mk_backend ()) in
  ordered_semantics (module Mvbpt_c) (Mvbpt_c.attach fe ~name:"mvb")

let prop_mvbpt =
  mk_ordered_prop "mv-bptree vs Map model" (fun () ->
      let fe = mk_client (mk_backend ()) in
      ((module Mvbpt_c : ORDERED with type t = Mvbpt_c.t), Mvbpt_c.attach fe ~name:"mvb"))

let test_mvbpt_many_inserts () =
  let fe = mk_client (mk_backend ()) in
  let t = Mvbpt_c.attach fe ~name:"mvb" in
  let n = 800 in
  for i = 0 to n - 1 do
    let k = i * 6113 mod n in
    Mvbpt_c.put t ~key:(Int64.of_int k) ~value:(v (string_of_int k))
  done;
  check (Alcotest.list Alcotest.int64) "sorted complete"
    (List.init n (fun i -> Int64.of_int i))
    (List.map fst (Mvbpt_c.to_list t))

(* ---------------- symmetric baseline runs the same functors ------------- *)

let test_structures_on_local_store () =
  let s = mk_local () in
  ordered_semantics (module Bst_l) (Bst_l.attach s ~name:"bst");
  ordered_semantics (module Bpt_l) (Bpt_l.attach s ~name:"bpt");
  ordered_semantics (module Skip_l) (Skip_l.attach s ~name:"sl");
  let st = Stack_l.attach s ~name:"st" in
  Stack_l.push st (v "x");
  check (Alcotest.option bytes_eq) "stack" (Some (v "x")) (Stack_l.pop st);
  let q = Queue_l.attach s ~name:"q" in
  Queue_l.enqueue q (v "y");
  check (Alcotest.option bytes_eq) "queue" (Some (v "y")) (Queue_l.dequeue q);
  let h = Hash_l.attach ~nbuckets:32 s ~name:"h" in
  Hash_l.put h ~key:7L ~value:(v "z");
  check (Alcotest.option bytes_eq) "hash" (Some (v "z")) (Hash_l.get h ~key:7L)

(* ---------------- vector operations ---------------- *)

let test_vector_insert_bst () =
  let fe = mk_client (mk_backend ()) in
  let t = Bst_c.attach fe ~name:"bst" in
  Bst_c.insert_vector t
    [ (5L, v "5"); (1L, v "1"); (9L, v "9"); (5L, v "5b") ];
  (* Duplicate keys in the vector: last write wins after sorting keeps
     both applications; the final value for 5 is one of the two. *)
  check Alcotest.bool "5 present" true (Bst_c.mem t ~key:5L);
  check Alcotest.bool "1 present" true (Bst_c.mem t ~key:1L);
  check Alcotest.bool "9 present" true (Bst_c.mem t ~key:9L)

let test_vector_insert_bptree_cheaper_than_loop () =
  let run ~vector =
    let fe = mk_client ~cfg:(Client.rcb ~batch_size:64 ()) (mk_backend ()) in
    let t = Bpt_c.attach fe ~name:"bpt" in
    let pairs = List.init 256 (fun i -> (Int64.of_int i, v "payload-64-bytes")) in
    let t0 = Clock.now (Client.clock fe) in
    if vector then
      List.iter (fun chunk -> Bpt_c.insert_vector t chunk)
        (let rec chunks l = match l with [] -> [] | _ ->
           let take = List.filteri (fun i _ -> i < 32) l in
           let rest = List.filteri (fun i _ -> i >= 32) l in
           take :: chunks rest
         in
         chunks pairs)
    else List.iter (fun (key, value) -> Bpt_c.put t ~key ~value) pairs;
    Client.flush fe;
    Clock.now (Client.clock fe) - t0
  in
  check Alcotest.bool "vector api at least as fast" true (run ~vector:true <= run ~vector:false)

(* ---------------- partitioning ---------------- *)

let test_partition_routing_stable () =
  let bk = mk_backend () in
  let fe = mk_client bk in
  let p =
    Part_c.create fe ~name:"ph" ~n:4 ~attach:(fun i ->
        Hash_c.attach ~nbuckets:64 fe ~name:(Printf.sprintf "ph.%d" i))
  in
  check Alcotest.int "npartitions" 4 (Part_c.npartitions p);
  for k = 0 to 99 do
    let key = Int64.of_int k in
    Hash_c.put (Part_c.route p key) ~key ~value:(v (string_of_int k))
  done;
  for k = 0 to 99 do
    let key = Int64.of_int k in
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "route %d" k)
      (Some (v (string_of_int k)))
      (Hash_c.get (Part_c.route p key) ~key)
  done;
  (* Keys must spread across partitions. *)
  let counts = Array.make 4 0 in
  for i = 0 to 3 do
    counts.(i) <- Hash_c.size (Part_c.part p i)
  done;
  Array.iter (fun c -> check Alcotest.bool "no empty partition" true (c > 5)) counts

let test_partition_count_persisted () =
  let bk = mk_backend () in
  let fe = mk_client bk in
  let _ =
    Part_c.create fe ~name:"pp" ~n:3 ~attach:(fun i ->
        Hash_c.attach ~nbuckets:16 fe ~name:(Printf.sprintf "pp.%d" i))
  in
  (* Re-open with a different requested n: the persisted map wins. *)
  let fe2 = mk_client ~name:"fe2" bk in
  let p2 =
    Part_c.create fe2 ~name:"pp" ~n:7 ~attach:(fun i ->
        Hash_c.attach ~nbuckets:16 fe2 ~name:(Printf.sprintf "pp.%d" i))
  in
  check Alcotest.int "persisted count wins" 3 (Part_c.npartitions p2)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "structures"
    [
      ( "stack",
        [
          Alcotest.test_case "lifo" `Quick test_stack_lifo;
          Alcotest.test_case "persists across clients" `Quick test_stack_persists_across_clients;
          Alcotest.test_case "pop after push is local" `Quick
            test_stack_pop_after_push_no_rdma_reads;
          qt prop_stack_model;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "drain/refill" `Quick test_queue_drain_refill;
          qt prop_queue_model;
        ] );
      ( "hash",
        [
          Alcotest.test_case "put/get/delete" `Quick test_hash_put_get_delete;
          Alcotest.test_case "collisions" `Quick test_hash_collisions;
          qt prop_hash_model;
        ] );
      ( "skiplist",
        [
          Alcotest.test_case "semantics" `Quick test_skiplist_semantics;
          Alcotest.test_case "range scan" `Quick test_skiplist_range;
          qt prop_skiplist;
          qt prop_skiplist_range;
        ] );
      ( "bst",
        [
          Alcotest.test_case "semantics" `Quick test_bst_semantics;
          Alcotest.test_case "delete two-children" `Quick test_bst_delete_two_children_cases;
          Alcotest.test_case "range scan" `Quick test_bst_range;
          qt prop_bst;
          qt prop_bst_range;
        ] );
      ( "bptree",
        [
          Alcotest.test_case "semantics" `Quick test_bptree_semantics;
          Alcotest.test_case "splits (2000 keys)" `Quick test_bptree_splits;
          Alcotest.test_case "range scan" `Quick test_bptree_range;
          qt prop_bptree;
          qt prop_bpt_range;
        ] );
      ( "multi-version",
        [
          Alcotest.test_case "mv-bst semantics" `Quick test_mvbst_semantics;
          Alcotest.test_case "mv-bst gc" `Quick test_mvbst_gc_defers_then_frees;
          Alcotest.test_case "mv-bptree semantics" `Quick test_mvbpt_semantics;
          Alcotest.test_case "mv-bptree bulk" `Quick test_mvbpt_many_inserts;
          qt prop_mvbst;
          qt prop_mvbpt;
        ] );
      ( "symmetric-baseline",
        [ Alcotest.test_case "same functors run" `Quick test_structures_on_local_store ] );
      ( "vector-ops",
        [
          Alcotest.test_case "bst vector insert" `Quick test_vector_insert_bst;
          Alcotest.test_case "bptree vector no slower" `Quick
            test_vector_insert_bptree_cheaper_than_loop;
        ] );
      ( "partition",
        [
          Alcotest.test_case "routing" `Quick test_partition_routing_stable;
          Alcotest.test_case "count persisted" `Quick test_partition_count_persisted;
        ] );
    ]
