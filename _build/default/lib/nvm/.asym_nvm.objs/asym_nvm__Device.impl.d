lib/nvm/device.ml: Asym_sim Bytes Int64 Latency Printf
