lib/nvm/device.mli: Asym_sim
