open Asym_util

type op = Push of bytes | Pop | Put of int64 * bytes | Get of int64

type t = {
  rng : Rng.t;
  zipf : Zipf.t;
  kind : [ `Kv of float | `Fifo of float ];
  max_value : int;
}

let create ?(keyspace = 100_000) ?(max_value = 8192) ~kind rng =
  (* Power-law popularity: the paper's traces "satisfy the power-law
     distribution"; theta 0.99 is the conventional heavy-tail setting. *)
  { rng; zipf = Zipf.create ~theta:0.99 ~n:keyspace (Rng.split rng); kind; max_value }

(* Value sizes 64 B - 8 KB with a power-law tail: most values small. *)
let value_size t =
  let u = Rng.float t.rng in
  let exponent = 2.0 in
  let lo = 64.0 and hi = float_of_int t.max_value in
  let x = lo /. ((1.0 -. (u *. (1.0 -. ((lo /. hi) ** exponent)))) ** (1.0 /. exponent)) in
  min t.max_value (max 64 (int_of_float x))

(* Keys "hashed to 64 bytes" in the trace; we keep the 8-byte hash the
   structures index by. *)
let hashed_key t = Int64.of_int (Zipf.next_scrambled t.zipf)

let value t =
  let n = value_size t in
  let b = Bytes.create n in
  Bytes.set_int64_le b 0 (Rng.next_int64 t.rng);
  b

let next t =
  match t.kind with
  | `Fifo push_ratio -> if Rng.float t.rng < push_ratio then Push (value t) else Pop
  | `Kv put_ratio ->
      let k = hashed_key t in
      if Rng.float t.rng < put_ratio then Put (k, value t) else Get k
