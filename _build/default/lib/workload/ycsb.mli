(** YCSB-style workload generation (paper §9.6, Figure 12).

    Produces keyed operations with a configurable key distribution
    (uniform or Zipf with the paper's parameters .5/.9/.99) and a
    configurable put/get mix (Figure 13's 100/50/75/10/0 % put points). *)

type distribution = Uniform | Zipfian of float

val distribution_name : distribution -> string

type op = Put of int64 * bytes | Get of int64

type t

val create :
  ?value_size:int ->
  distribution:distribution ->
  keyspace:int ->
  put_ratio:float ->
  Asym_util.Rng.t ->
  t
(** [put_ratio] in [\[0, 1\]]; [value_size] defaults to the paper's 64 B. *)

val next : t -> op
val key : t -> int64
(** Just a key from the configured distribution. *)

(** {2 Standard YCSB core workloads}

    The canonical presets, expressed as (distribution, put_ratio):
    - A: update heavy, 50/50, Zipfian
    - B: read mostly, 95/5, Zipfian
    - C: read only, Zipfian
    - D: read latest — approximated here as read-mostly uniform
    - F: read-modify-write, 50/50, Zipfian
    (E, the scan workload, is exercised through the structures' [range]
    operations instead of this generator.) *)

type preset = A | B | C | D | F

val preset_name : preset -> string
val of_preset : ?value_size:int -> preset -> keyspace:int -> Asym_util.Rng.t -> t
