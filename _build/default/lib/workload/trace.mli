(** Synthetic industry trace (paper §9.6, Figure 13).

    The paper evaluates against production traces of an Alibaba online
    service and reports only their shape: power-law key popularity, keys
    hashed to 64 bytes, values of 64 B – 8 KB, operations PUSH/POP for the
    queue/stack and PUT/GET for the index structures. This generator
    reproduces exactly those published characteristics (the substitution
    is recorded in DESIGN.md). *)

type op = Push of bytes | Pop | Put of int64 * bytes | Get of int64

type t

val create :
  ?keyspace:int ->
  ?max_value:int ->
  kind:[ `Kv of float (* put ratio *) | `Fifo of float (* push ratio *) ] ->
  Asym_util.Rng.t ->
  t

val next : t -> op

val value_size : t -> int
(** Draw one power-law value size in [\[64, max_value\]]. *)
