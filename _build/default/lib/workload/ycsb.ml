open Asym_util

type distribution = Uniform | Zipfian of float

let distribution_name = function
  | Uniform -> "uniform"
  | Zipfian theta -> Printf.sprintf "zipf(%.2f)" theta

type op = Put of int64 * bytes | Get of int64

type t = {
  rng : Rng.t;
  keyspace : int;
  put_ratio : float;
  value_size : int;
  zipf : Zipf.t option;
}

let create ?(value_size = 64) ~distribution ~keyspace ~put_ratio rng =
  assert (keyspace > 0 && put_ratio >= 0.0 && put_ratio <= 1.0);
  let zipf =
    match distribution with
    | Uniform -> None
    | Zipfian theta -> Some (Zipf.create ~theta ~n:keyspace (Rng.split rng))
  in
  { rng; keyspace; put_ratio; value_size; zipf }

let key t =
  match t.zipf with
  | None -> Int64.of_int (Rng.int t.rng t.keyspace)
  | Some z -> Int64.of_int (Zipf.next_scrambled z)

let next t =
  let k = key t in
  if Rng.float t.rng < t.put_ratio then begin
    let v = Bytes.create t.value_size in
    Bytes.set_int64_le v 0 k;
    Put (k, v)
  end
  else Get k

type preset = A | B | C | D | F

let preset_name = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | F -> "F"

let of_preset ?value_size preset ~keyspace rng =
  let distribution, put_ratio =
    match preset with
    | A -> (Zipfian 0.99, 0.5)
    | B -> (Zipfian 0.99, 0.05)
    | C -> (Zipfian 0.99, 0.0)
    | D -> (Uniform, 0.05)
    | F -> (Zipfian 0.99, 0.5)
  in
  create ?value_size ~distribution ~keyspace ~put_ratio rng
