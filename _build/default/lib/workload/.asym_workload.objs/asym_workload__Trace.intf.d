lib/workload/trace.mli: Asym_util
