lib/workload/trace.ml: Asym_util Bytes Int64 Rng Zipf
