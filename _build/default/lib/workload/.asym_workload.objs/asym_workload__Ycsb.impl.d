lib/workload/ycsb.ml: Asym_util Bytes Int64 Printf Rng Zipf
