lib/workload/ycsb.mli: Asym_util
