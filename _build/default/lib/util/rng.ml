type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA'14). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  assert (bound > 0);
  if bound <= 1 lsl 30 then bits30 t mod bound
  else
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    v mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  (* 53 uniform bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
