module Enc = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create ?(capacity = 64) () = { buf = Bytes.create (max 8 capacity); len = 0 }
  let length t = t.len

  let ensure t n =
    let need = t.len + n in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let u8 t v =
    ensure t 1;
    Bytes.set_uint8 t.buf t.len v;
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_le t.buf t.len v;
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_le t.buf t.len v;
    t.len <- t.len + 4

  let u32i t v = u32 t (Int32.of_int v)

  let u64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len v;
    t.len <- t.len + 8

  let u64i t v = u64 t (Int64.of_int v)

  let bytes t b =
    let n = Bytes.length b in
    ensure t n;
    Bytes.blit b 0 t.buf t.len n;
    t.len <- t.len + n

  let raw_string t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let string t s =
    u32i t (String.length s);
    raw_string t s

  let to_bytes t = Bytes.sub t.buf 0 t.len
end

module Dec = struct
  type t = { buf : bytes; mutable pos : int }

  let of_bytes ?(pos = 0) buf = { buf; pos }
  let pos t = t.pos
  let remaining t = Bytes.length t.buf - t.pos

  let check t n =
    if t.pos + n > Bytes.length t.buf then
      invalid_arg
        (Printf.sprintf "Codec.Dec: out of bounds (pos=%d need=%d len=%d)" t.pos n
           (Bytes.length t.buf))

  let u8 t =
    check t 1;
    let v = Bytes.get_uint8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    check t 2;
    let v = Bytes.get_uint16_le t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    check t 4;
    let v = Bytes.get_int32_le t.buf t.pos in
    t.pos <- t.pos + 4;
    v

  let u32i t = Int32.to_int (u32 t) land 0xFFFFFFFF

  let u64 t =
    check t 8;
    let v = Bytes.get_int64_le t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let u64i t =
    let v = u64 t in
    if v < 0L || v > Int64.of_int max_int then
      invalid_arg "Codec.Dec.u64i: value does not fit in int";
    Int64.to_int v

  let bytes t n =
    check t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let string t =
    let n = u32i t in
    Bytes.to_string (bytes t n)

  let skip t n =
    check t n;
    t.pos <- t.pos + n
end

let get_u8 = Bytes.get_uint8
let set_u8 = Bytes.set_uint8
let get_u16 = Bytes.get_uint16_le
let set_u16 = Bytes.set_uint16_le
let get_u32 = Bytes.get_int32_le
let set_u32 = Bytes.set_int32_le
let get_u64 = Bytes.get_int64_le
let set_u64 = Bytes.set_int64_le

let u64_of_int = Int64.of_int

let int_of_u64 v =
  if v < 0L || v > Int64.of_int max_int then
    invalid_arg "Codec.int_of_u64: value does not fit in int";
  Int64.to_int v
