(** Deterministic pseudo-random number generation.

    A thin, self-contained splitmix64 generator. Every stochastic component
    of the simulation (workload generators, skiplist levels, cache
    replacement sampling, failure injection) draws from an explicit [t] so
    that whole experiments are reproducible from a single seed. *)

type t

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Used to give each simulated node its own stream. *)

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bits30 : t -> int
(** 30 uniform random bits as a non-negative [int]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly chosen element. The array must be non-empty. *)
