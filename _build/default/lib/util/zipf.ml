type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  rng : Rng.t;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let create ?(theta = 0.99) ~n rng =
  assert (n > 0);
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; rng }

let next t =
  let u = Rng.float t.rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** t.theta) then 1
  else
    let v =
      float_of_int t.n
      *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha)
    in
    let k = int_of_float v in
    if k >= t.n then t.n - 1 else if k < 0 then 0 else k

(* FNV-1a 64-bit, the same scrambling YCSB applies. *)
let fnv1a_64 x =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  for shift = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * shift)) 0xFFL) in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime
  done;
  !h

let next_scrambled t =
  let rank = next t in
  let h = fnv1a_64 (Int64.of_int rank) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int t.n))

let theta t = t.theta
let cardinality t = t.n
