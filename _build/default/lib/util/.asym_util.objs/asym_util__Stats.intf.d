lib/util/stats.mli:
