lib/util/zipf.ml: Int64 Rng
