lib/util/codec.ml: Bytes Int32 Int64 Printf String
