lib/util/codec.mli:
