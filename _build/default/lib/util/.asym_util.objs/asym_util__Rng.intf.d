lib/util/rng.mli:
