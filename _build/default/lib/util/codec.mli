(** Little-endian binary encoding of data-structure nodes, log entries and
    metadata records stored in the simulated NVM.

    Two complementary styles are provided:
    - an {!Enc}oder that appends to a growable buffer (for building log
      entries and freshly allocated nodes), and
    - a {!Dec}oder cursor over immutable bytes (for parsing what an
      [rnvm_read] returned),
    plus direct positional accessors used when patching single fields. *)

module Enc : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u32i : t -> int -> unit
  val u64 : t -> int64 -> unit
  val u64i : t -> int -> unit
  val bytes : t -> bytes -> unit
  val string : t -> string -> unit
  (** Length-prefixed (u32) string. *)

  val raw_string : t -> string -> unit
  (** String bytes with no length prefix. *)

  val to_bytes : t -> bytes
end

module Dec : sig
  type t

  val of_bytes : ?pos:int -> bytes -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val u32i : t -> int
  val u64 : t -> int64
  val u64i : t -> int
  val bytes : t -> int -> bytes
  val string : t -> string
  (** Reads a u32 length prefix then that many bytes. *)

  val skip : t -> int -> unit
end

(** Direct positional accessors over a [bytes] buffer. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int32
val set_u32 : bytes -> int -> int32 -> unit
val get_u64 : bytes -> int -> int64
val set_u64 : bytes -> int -> int64 -> unit

val u64_of_int : int -> int64
val int_of_u64 : int64 -> int
(** Raises [Invalid_argument] if the value does not fit in an OCaml [int]. *)
