(** CRC-32 (IEEE 802.3 polynomial) checksums.

    AsymNVM appends a checksum to every transaction log and operation log so
    that a torn RDMA write into NVM is detected after a crash (paper §4.2).
    This is the integrity primitive used by the log areas and recovery. *)

val digest : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** [digest ?init b ~pos ~len] checksums the given slice. [init] allows
    incremental computation: feed the previous digest back in. *)

val digest_bytes : bytes -> int32
(** Checksum of a whole buffer. *)

val digest_string : string -> int32
