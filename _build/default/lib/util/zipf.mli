(** Zipfian key generator, YCSB-compatible.

    Produces integers in [\[0, n)] where rank-[k] items are drawn with
    probability proportional to [1 / (k+1)^theta]. The implementation
    follows the classic Gray et al. "Quickly generating billion-record
    synthetic databases" algorithm used by YCSB, including the scrambled
    variant that spreads hot keys over the whole key space. *)

type t

val create : ?theta:float -> n:int -> Rng.t -> t
(** [create ~theta ~n rng]. [theta] defaults to 0.99 (YCSB default);
    [n] must be positive. *)

val next : t -> int
(** Next zipfian-distributed rank in [\[0, n)] (rank 0 is the hottest). *)

val next_scrambled : t -> int
(** Like {!next} but hashes the rank so hot items are scattered uniformly
    across the key space, as YCSB's [ScrambledZipfianGenerator] does. *)

val theta : t -> float
val cardinality : t -> int
