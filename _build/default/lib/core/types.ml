(** Shared aliases and small types used across the AsymNVM framework. *)

type addr = int
(** Byte offset into a back-end NVM device. *)

type ds_id = int
(** Identifier of one persistent data-structure instance, as registered in
    the back-end's global naming space. The back-end keeps one sequence
    number and one conflict tracker per [ds_id]. *)

type session_id = int
(** Identifier of one front-end connection to a back-end. Each session owns
    a memory-log ring, an operation-log ring and an RPC ring pair. *)

type handle = {
  id : ds_id;
  root : addr;  (** 8-byte root reference word *)
  lock : addr;  (** exclusive writer lock word *)
  sn : addr;  (** sequence-number word (Algorithm 2) *)
  ds_name : string;
}
(** Everything a front-end needs to operate one persistent data structure,
    as handed out by the back-end's naming space. *)

(** Kind tags stored with entries of the global naming space (§5.1). *)
type name_kind =
  | Root  (** root reference of a data structure *)
  | Lock  (** exclusive writer lock word *)
  | Seqno  (** reader-validation sequence number word *)
  | Partition_map  (** key-range / partition mapping table *)
  | Meta  (** anything else a data structure wants found after recovery *)

let name_kind_code = function
  | Root -> 0
  | Lock -> 1
  | Seqno -> 2
  | Partition_map -> 3
  | Meta -> 4

let name_kind_of_code = function
  | 0 -> Root
  | 1 -> Lock
  | 2 -> Seqno
  | 3 -> Partition_map
  | 4 -> Meta
  | c -> invalid_arg (Printf.sprintf "Types.name_kind_of_code: %d" c)

let pp_name_kind fmt k =
  Format.pp_print_string fmt
    (match k with
    | Root -> "root"
    | Lock -> "lock"
    | Seqno -> "seqno"
    | Partition_map -> "partition-map"
    | Meta -> "meta")
