(** Wire messages of the back-end management RPC (§5.1).

    Front-ends reach the passive back-end through an RFP-style RPC built on
    one-sided verbs: the request is RDMA-written into a per-session ring,
    the back-end CPU processes it, and the response is RDMA-read back. The
    encodings here exist so the simulated NIC charges realistic payload
    sizes and so the messages round-trip through real bytes. *)

type request =
  | Open_session of { client_name : string; reuse : int option }
  | Close_session
  | Malloc of { slabs : int }
  | Free of { addr : Types.addr; slabs : int }
  | Free_batch of { addrs : Types.addr list }
      (** periodic reclamation: many 1-slab frees in one RFP round (§5.2) *)
  | Alloc_meta of { len : int }
  | Name_set of { name : string; kind : Types.name_kind; addr : Types.addr }
  | Name_get of { name : string }
  | Register_ds of { name : string }
  | Get_cursors

type handle_info = {
  ds : Types.ds_id;
  root : Types.addr;
  lock : Types.addr;
  sn : Types.addr;
}

type cursors = {
  memlog_head : int;  (** ring-relative append offset for memory logs *)
  oplog_head : int;  (** ring-relative append offset for operation logs *)
  opn_covered : int64;  (** last operation whose memory logs are replayed *)
  next_opnum : int64;  (** next operation number to assign *)
}

type response =
  | R_unit
  | R_addr of Types.addr
  | R_session of Types.session_id
  | R_name of (Types.name_kind * Types.addr) option
  | R_handle of handle_info
  | R_cursors of cursors
  | R_error of string

val encode_request : request -> bytes
val decode_request : bytes -> request
val encode_response : response -> bytes
val decode_response : bytes -> response

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
