open Asym_util

type t = {
  dev : Asym_nvm.Device.t;
  base : int;
  len : int;
  table : (string, Types.name_kind * Types.addr) Hashtbl.t;
  mutable persisted_len : int;
}

let serialize table =
  let e = Codec.Enc.create ~capacity:1024 () in
  Codec.Enc.u32i e (Hashtbl.length table);
  Hashtbl.iter
    (fun name (kind, addr) ->
      Codec.Enc.string e name;
      Codec.Enc.u8 e (Types.name_kind_code kind);
      Codec.Enc.u64i e addr)
    table;
  let body = Codec.Enc.to_bytes e in
  let out = Codec.Enc.create ~capacity:(Bytes.length body + 4) () in
  Codec.Enc.bytes out body;
  Codec.Enc.u32 out (Crc32.digest_bytes body);
  Codec.Enc.to_bytes out

let persist t =
  let b = serialize t.table in
  if Bytes.length b > t.len then failwith "Naming: naming area overflow";
  Asym_nvm.Device.write t.dev ~addr:t.base b;
  t.persisted_len <- Bytes.length b

let create dev ~base ~len =
  let t = { dev; base; len; table = Hashtbl.create 64; persisted_len = 0 } in
  persist t;
  t

let load dev ~base ~len =
  let raw = Asym_nvm.Device.read dev ~addr:base ~len in
  let d = Codec.Dec.of_bytes raw in
  let n = Codec.Dec.u32i d in
  let table = Hashtbl.create 64 in
  for _ = 1 to n do
    let name = Codec.Dec.string d in
    let kind = Types.name_kind_of_code (Codec.Dec.u8 d) in
    let addr = Codec.Dec.u64i d in
    Hashtbl.replace table name (kind, addr)
  done;
  let body_len = Codec.Dec.pos d in
  let crc = Codec.Dec.u32 d in
  if crc <> Crc32.digest raw ~pos:0 ~len:body_len then
    failwith "Naming.load: checksum mismatch";
  { dev; base; len; table; persisted_len = body_len + 4 }

let set t name kind addr =
  Hashtbl.replace t.table name (kind, addr);
  persist t

let find t name = Hashtbl.find_opt t.table name
let mem t name = Hashtbl.mem t.table name

let remove t name =
  Hashtbl.remove t.table name;
  persist t

let to_list t = Hashtbl.fold (fun name (kind, addr) acc -> (name, kind, addr) :: acc) t.table []
let persisted_len t = t.persisted_len
