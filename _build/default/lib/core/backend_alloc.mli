(** Back-end slab allocator (§5.2, lower tier).

    Hands out fixed-size slabs (and contiguous runs of slabs for large
    requests) from the data area. Allocation state is a persistent bitmap
    — one bit per slab — mirrored in DRAM for speed; after a crash the
    DRAM free list is rebuilt from the bitmap, which is the paper's
    "reconstruct the allocation status only in the slab level". *)

type t

val create : Asym_nvm.Device.t -> Layout.t -> t
(** Fresh allocator: zeroes the bitmap. *)

val load : Asym_nvm.Device.t -> Layout.t -> t
(** Rebuild the free list from the persistent bitmap. *)

val slab_size : t -> int

val alloc : t -> slabs:int -> Types.addr option
(** Allocate [slabs] contiguous slabs; [None] when no run fits. The
    bitmap update is persisted before returning. *)

val free : t -> addr:Types.addr -> slabs:int -> unit
(** Release a previously allocated run. Raises [Invalid_argument] on a
    double free or an unaligned address. *)

val used_slabs : t -> int
val total_slabs : t -> int

val persisted_bytes_last_op : t -> int
(** Size of the bitmap region persisted by the most recent alloc/free
    (used for replication cost accounting). *)
