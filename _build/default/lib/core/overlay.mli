(** Front-end write overlay.

    Between a memory-log append and the next [rnvm_tx_write], the written
    bytes exist only in the front-end's DRAM. The overlay indexes those
    pending bytes (per 64-byte block) so that every [rnvm_read] observes
    the front-end's own writes, and so that reads fully covered by pending
    writes skip the network entirely — which is what makes the §8.1
    push/pop annulment optimization fall out for free. *)

type t

val create : unit -> t

val add : t -> addr:Types.addr -> bytes -> unit
(** Record pending bytes at [addr]. *)

val patch : t -> addr:Types.addr -> bytes -> unit
(** Overwrite the buffer (holding bytes fetched from [addr]) with any
    pending bytes in its range. *)

val try_read : t -> addr:Types.addr -> len:int -> bytes option
(** [Some bytes] iff the whole range is covered by pending writes. *)

val covers_u64 : t -> Types.addr -> bool

val clear : t -> unit
val is_empty : t -> bool
val pending_bytes : t -> int
