type t = {
  dev : Asym_nvm.Device.t;
  layout : Layout.t;
  bitmap : Bytes.t;  (* DRAM mirror of the persistent bitmap *)
  mutable used : int;
  mutable rover : int;  (* next-fit starting point *)
  mutable free_singles : int list;  (* fast path for 1-slab allocations *)
  mutable last_persist : int;
}

let bit_get b i = Bytes.get_uint8 b (i / 8) land (1 lsl (i mod 8)) <> 0

let bit_set b i v =
  let byte = Bytes.get_uint8 b (i / 8) in
  let mask = 1 lsl (i mod 8) in
  Bytes.set_uint8 b (i / 8) (if v then byte lor mask else byte land lnot mask)

let persist_bit t i =
  (* Persist the byte containing bit [i]. *)
  let off = i / 8 in
  Asym_nvm.Device.write t.dev ~addr:(t.layout.Layout.bitmap_base + off)
    (Bytes.sub t.bitmap off 1);
  t.last_persist <- 1

let create dev layout =
  let len = layout.Layout.bitmap_len in
  let bitmap = Bytes.make len '\000' in
  Asym_nvm.Device.write dev ~addr:layout.Layout.bitmap_base bitmap;
  { dev; layout; bitmap; used = 0; rover = 0; free_singles = []; last_persist = len }

let load dev layout =
  let bitmap =
    Asym_nvm.Device.read dev ~addr:layout.Layout.bitmap_base ~len:layout.Layout.bitmap_len
  in
  let used = ref 0 in
  for i = 0 to layout.Layout.n_slabs - 1 do
    if bit_get bitmap i then incr used
  done;
  { dev; layout; bitmap; used = !used; rover = 0; free_singles = []; last_persist = 0 }

let slab_size t = t.layout.Layout.slab_size
let total_slabs t = t.layout.Layout.n_slabs
let used_slabs t = t.used
let persisted_bytes_last_op t = t.last_persist

let take_single t =
  let rec pop () =
    match t.free_singles with
    | i :: rest ->
        t.free_singles <- rest;
        if bit_get t.bitmap i then pop () else Some i
    | [] -> None
  in
  match pop () with
  | Some i -> Some i
  | None ->
      let n = t.layout.Layout.n_slabs in
      let rec scan tried i =
        if tried >= n then None
        else if not (bit_get t.bitmap i) then Some i
        else scan (tried + 1) ((i + 1) mod n)
      in
      let r = scan 0 t.rover in
      (match r with Some i -> t.rover <- (i + 1) mod n | None -> ());
      r

let find_run t slabs =
  let n = t.layout.Layout.n_slabs in
  let rec scan start =
    if start + slabs > n then None
    else
      let rec check k = if k >= slabs then true else (not (bit_get t.bitmap (start + k))) && check (k + 1) in
      if check 0 then Some start
      else
        (* Skip past the first allocated slab in the window. *)
        let rec first_used k = if bit_get t.bitmap (start + k) then k else first_used (k + 1) in
        scan (start + first_used 0 + 1)
  in
  scan 0

let alloc t ~slabs =
  assert (slabs >= 1);
  let start = if slabs = 1 then take_single t else find_run t slabs in
  match start with
  | None -> None
  | Some s ->
      for k = s to s + slabs - 1 do
        bit_set t.bitmap k true;
        persist_bit t k
      done;
      t.used <- t.used + slabs;
      Some (Layout.slab_addr t.layout s)

let free t ~addr ~slabs =
  let l = t.layout in
  if (addr - l.Layout.data_base) mod l.Layout.slab_size <> 0 then
    invalid_arg "Backend_alloc.free: unaligned address";
  let s = Layout.slab_index l addr in
  for k = s to s + slabs - 1 do
    if not (bit_get t.bitmap k) then invalid_arg "Backend_alloc.free: double free";
    bit_set t.bitmap k false;
    persist_bit t k;
    t.free_singles <- k :: t.free_singles
  done;
  t.used <- t.used - slabs
