open Asym_util

type request =
  | Open_session of { client_name : string; reuse : int option }
  | Close_session
  | Malloc of { slabs : int }
  | Free of { addr : Types.addr; slabs : int }
  | Free_batch of { addrs : Types.addr list }
  | Alloc_meta of { len : int }
  | Name_set of { name : string; kind : Types.name_kind; addr : Types.addr }
  | Name_get of { name : string }
  | Register_ds of { name : string }
  | Get_cursors

type handle_info = {
  ds : Types.ds_id;
  root : Types.addr;
  lock : Types.addr;
  sn : Types.addr;
}

type cursors = {
  memlog_head : int;
  oplog_head : int;
  opn_covered : int64;
  next_opnum : int64;
}

type response =
  | R_unit
  | R_addr of Types.addr
  | R_session of Types.session_id
  | R_name of (Types.name_kind * Types.addr) option
  | R_handle of handle_info
  | R_cursors of cursors
  | R_error of string

let encode_request r =
  let e = Codec.Enc.create () in
  (match r with
  | Open_session { client_name; reuse } ->
      Codec.Enc.u8 e 1;
      Codec.Enc.string e client_name;
      (match reuse with
      | None -> Codec.Enc.u8 e 0
      | Some s ->
          Codec.Enc.u8 e 1;
          Codec.Enc.u32i e s)
  | Close_session -> Codec.Enc.u8 e 2
  | Malloc { slabs } ->
      Codec.Enc.u8 e 3;
      Codec.Enc.u32i e slabs
  | Free { addr; slabs } ->
      Codec.Enc.u8 e 4;
      Codec.Enc.u64i e addr;
      Codec.Enc.u32i e slabs
  | Free_batch { addrs } ->
      Codec.Enc.u8 e 10;
      Codec.Enc.u32i e (List.length addrs);
      List.iter (Codec.Enc.u64i e) addrs
  | Alloc_meta { len } ->
      Codec.Enc.u8 e 5;
      Codec.Enc.u32i e len
  | Name_set { name; kind; addr } ->
      Codec.Enc.u8 e 6;
      Codec.Enc.string e name;
      Codec.Enc.u8 e (Types.name_kind_code kind);
      Codec.Enc.u64i e addr
  | Name_get { name } ->
      Codec.Enc.u8 e 7;
      Codec.Enc.string e name
  | Register_ds { name } ->
      Codec.Enc.u8 e 8;
      Codec.Enc.string e name
  | Get_cursors -> Codec.Enc.u8 e 9);
  Codec.Enc.to_bytes e

let decode_request b =
  let d = Codec.Dec.of_bytes b in
  match Codec.Dec.u8 d with
  | 1 ->
      let client_name = Codec.Dec.string d in
      let reuse =
        match Codec.Dec.u8 d with
        | 0 -> None
        | _ -> Some (Codec.Dec.u32i d)
      in
      Open_session { client_name; reuse }
  | 2 -> Close_session
  | 3 -> Malloc { slabs = Codec.Dec.u32i d }
  | 4 ->
      let addr = Codec.Dec.u64i d in
      let slabs = Codec.Dec.u32i d in
      Free { addr; slabs }
  | 5 -> Alloc_meta { len = Codec.Dec.u32i d }
  | 6 ->
      let name = Codec.Dec.string d in
      let kind = Types.name_kind_of_code (Codec.Dec.u8 d) in
      let addr = Codec.Dec.u64i d in
      Name_set { name; kind; addr }
  | 7 -> Name_get { name = Codec.Dec.string d }
  | 8 -> Register_ds { name = Codec.Dec.string d }
  | 9 -> Get_cursors
  | 10 ->
      let n = Codec.Dec.u32i d in
      Free_batch { addrs = List.init n (fun _ -> Codec.Dec.u64i d) }
  | c -> invalid_arg (Printf.sprintf "Rpc_msg.decode_request: tag %d" c)

let encode_response r =
  let e = Codec.Enc.create () in
  (match r with
  | R_unit -> Codec.Enc.u8 e 1
  | R_addr a ->
      Codec.Enc.u8 e 2;
      Codec.Enc.u64i e a
  | R_session s ->
      Codec.Enc.u8 e 3;
      Codec.Enc.u32i e s
  | R_name None ->
      Codec.Enc.u8 e 4;
      Codec.Enc.u8 e 0
  | R_name (Some (kind, addr)) ->
      Codec.Enc.u8 e 4;
      Codec.Enc.u8 e 1;
      Codec.Enc.u8 e (Types.name_kind_code kind);
      Codec.Enc.u64i e addr
  | R_handle { ds; root; lock; sn } ->
      Codec.Enc.u8 e 5;
      Codec.Enc.u32i e ds;
      Codec.Enc.u64i e root;
      Codec.Enc.u64i e lock;
      Codec.Enc.u64i e sn
  | R_cursors { memlog_head; oplog_head; opn_covered; next_opnum } ->
      Codec.Enc.u8 e 6;
      Codec.Enc.u64i e memlog_head;
      Codec.Enc.u64i e oplog_head;
      Codec.Enc.u64 e opn_covered;
      Codec.Enc.u64 e next_opnum
  | R_error msg ->
      Codec.Enc.u8 e 7;
      Codec.Enc.string e msg);
  Codec.Enc.to_bytes e

let decode_response b =
  let d = Codec.Dec.of_bytes b in
  match Codec.Dec.u8 d with
  | 1 -> R_unit
  | 2 -> R_addr (Codec.Dec.u64i d)
  | 3 -> R_session (Codec.Dec.u32i d)
  | 4 -> (
      match Codec.Dec.u8 d with
      | 0 -> R_name None
      | _ ->
          let kind = Types.name_kind_of_code (Codec.Dec.u8 d) in
          let addr = Codec.Dec.u64i d in
          R_name (Some (kind, addr)))
  | 5 ->
      let ds = Codec.Dec.u32i d in
      let root = Codec.Dec.u64i d in
      let lock = Codec.Dec.u64i d in
      let sn = Codec.Dec.u64i d in
      R_handle { ds; root; lock; sn }
  | 6 ->
      let memlog_head = Codec.Dec.u64i d in
      let oplog_head = Codec.Dec.u64i d in
      let opn_covered = Codec.Dec.u64 d in
      let next_opnum = Codec.Dec.u64 d in
      R_cursors { memlog_head; oplog_head; opn_covered; next_opnum }
  | 7 -> R_error (Codec.Dec.string d)
  | c -> invalid_arg (Printf.sprintf "Rpc_msg.decode_response: tag %d" c)

let pp_request fmt = function
  | Open_session { client_name; _ } -> Format.fprintf fmt "open_session(%s)" client_name
  | Close_session -> Format.fprintf fmt "close_session"
  | Malloc { slabs } -> Format.fprintf fmt "malloc(%d slabs)" slabs
  | Free { addr; slabs } -> Format.fprintf fmt "free(%#x, %d slabs)" addr slabs
  | Free_batch { addrs } -> Format.fprintf fmt "free_batch(%d slabs)" (List.length addrs)
  | Alloc_meta { len } -> Format.fprintf fmt "alloc_meta(%d)" len
  | Name_set { name; kind; addr } ->
      Format.fprintf fmt "name_set(%s, %a, %#x)" name Types.pp_name_kind kind addr
  | Name_get { name } -> Format.fprintf fmt "name_get(%s)" name
  | Register_ds { name } -> Format.fprintf fmt "register_ds(%s)" name
  | Get_cursors -> Format.fprintf fmt "get_cursors"

let pp_response fmt = function
  | R_unit -> Format.fprintf fmt "ok"
  | R_addr a -> Format.fprintf fmt "addr %#x" a
  | R_session s -> Format.fprintf fmt "session %d" s
  | R_name None -> Format.fprintf fmt "name: none"
  | R_name (Some (kind, addr)) -> Format.fprintf fmt "name: %a@%#x" Types.pp_name_kind kind addr
  | R_handle { ds; _ } -> Format.fprintf fmt "handle ds=%d" ds
  | R_cursors _ -> Format.fprintf fmt "cursors"
  | R_error msg -> Format.fprintf fmt "error: %s" msg
