let block_shift = 6
let block_size = 1 lsl block_shift

type block = { data : bytes; valid : bytes (* 0/1 per byte *) }

type t = { blocks : (int, block) Hashtbl.t; mutable count : int }

let create () = { blocks = Hashtbl.create 64; count = 0 }

let block_for t id =
  match Hashtbl.find_opt t.blocks id with
  | Some b -> b
  | None ->
      let b = { data = Bytes.create block_size; valid = Bytes.make block_size '\000' } in
      Hashtbl.replace t.blocks id b;
      b

let add t ~addr value =
  let len = Bytes.length value in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let id = a lsr block_shift in
    let off = a land (block_size - 1) in
    let n = min (block_size - off) (len - !i) in
    let b = block_for t id in
    Bytes.blit value !i b.data off n;
    for k = off to off + n - 1 do
      if Bytes.get b.valid k = '\000' then begin
        Bytes.set b.valid k '\001';
        t.count <- t.count + 1
      end
    done;
    i := !i + n
  done

let patch t ~addr buf =
  if Hashtbl.length t.blocks > 0 then begin
    let len = Bytes.length buf in
    let first = addr lsr block_shift in
    let last = (addr + len - 1) lsr block_shift in
    for id = first to last do
      match Hashtbl.find_opt t.blocks id with
      | None -> ()
      | Some b ->
          let block_base = id lsl block_shift in
          let lo = max addr block_base in
          let hi = min (addr + len) (block_base + block_size) in
          for a = lo to hi - 1 do
            let off = a - block_base in
            if Bytes.get b.valid off = '\001' then
              Bytes.set buf (a - addr) (Bytes.get b.data off)
          done
    done
  end

let try_read t ~addr ~len =
  if Hashtbl.length t.blocks = 0 then None
  else begin
    let out = Bytes.create len in
    let ok = ref true in
    let a = ref addr in
    while !ok && !a < addr + len do
      let id = !a lsr block_shift in
      match Hashtbl.find_opt t.blocks id with
      | None -> ok := false
      | Some b ->
          let off = !a land (block_size - 1) in
          if Bytes.get b.valid off = '\001' then begin
            Bytes.set out (!a - addr) (Bytes.get b.data off);
            incr a
          end
          else ok := false
    done;
    if !ok then Some out else None
  end

let covers_u64 t addr = match try_read t ~addr ~len:8 with Some _ -> true | None -> false

let clear t =
  Hashtbl.reset t.blocks;
  t.count <- 0

let is_empty t = Hashtbl.length t.blocks = 0
let pending_bytes t = t.count
