(** Physical layout of a back-end NVM device.

    The device is carved into fixed areas at initialization time:

    {v
    0           superblock (magic + layout parameters)
    naming      global naming space (§5.1)
    sessions    per-session metadata slots: LPN, OPN, log cursors
    meta heap   small persistent words: roots, locks, sequence numbers
    bitmap      slab allocation bitmap (§5.2)
    memlog      per-session memory-log rings (§4.2)
    oplog       per-session operation-log rings (§4.3)
    data        slab pool — the persistent data structures live here
    v}

    The superblock is what makes the device self-describing: after a
    back-end restart (or a mirror promotion) the layout is reconstructed
    from the media alone, which is the paper's "well-known locations"
    global-addressing requirement. *)

type t = {
  capacity : int;
  max_sessions : int;
  naming_base : int;
  naming_len : int;
  sessions_base : int;  (** [max_sessions] slots of {!session_slot_len} bytes *)
  meta_base : int;  (** meta heap; first 8 bytes are the bump cursor *)
  meta_len : int;
  bitmap_base : int;
  bitmap_len : int;
  memlog_base : int;
  memlog_cap : int;  (** ring size per session *)
  oplog_base : int;
  oplog_cap : int;
  slab_size : int;
  data_base : int;
  n_slabs : int;
}

val session_slot_len : int

val compute :
  ?naming_len:int ->
  ?meta_len:int ->
  ?memlog_cap:int ->
  ?oplog_cap:int ->
  ?slab_size:int ->
  capacity:int ->
  max_sessions:int ->
  unit ->
  t
(** Compute a layout for a device of [capacity] bytes. Raises
    [Invalid_argument] if the fixed areas do not leave room for at least
    one slab. *)

val store : Asym_nvm.Device.t -> t -> unit
(** Persist the layout into the superblock. *)

val load : Asym_nvm.Device.t -> t
(** Reconstruct the layout from the superblock. Raises [Failure] if the
    magic does not match (uninitialized device). *)

val memlog_region : t -> session:int -> int * int
(** [(base, len)] of a session's memory-log ring. *)

val oplog_region : t -> session:int -> int * int
val session_slot : t -> session:int -> int
val slab_addr : t -> int -> int
(** Address of the i-th slab. *)

val slab_index : t -> int -> int
(** Index of the slab containing an address in the data area. *)
