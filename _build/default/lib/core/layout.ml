let magic = 0x4153594D4E564D31L (* "ASYMNVM1" *)
let superblock_len = 256
let session_slot_len = 64

type t = {
  capacity : int;
  max_sessions : int;
  naming_base : int;
  naming_len : int;
  sessions_base : int;
  meta_base : int;
  meta_len : int;
  bitmap_base : int;
  bitmap_len : int;
  memlog_base : int;
  memlog_cap : int;
  oplog_base : int;
  oplog_cap : int;
  slab_size : int;
  data_base : int;
  n_slabs : int;
}

let align_up x a = (x + a - 1) / a * a

let compute ?(naming_len = 64 * 1024) ?(meta_len = 256 * 1024) ?(memlog_cap = 4 * 1024 * 1024)
    ?(oplog_cap = 2 * 1024 * 1024) ?(slab_size = 4096) ~capacity ~max_sessions () =
  if max_sessions < 1 then invalid_arg "Layout.compute: max_sessions < 1";
  let naming_base = superblock_len in
  let sessions_base = naming_base + naming_len in
  let meta_base = sessions_base + (max_sessions * session_slot_len) in
  let after_meta = meta_base + meta_len in
  (* Upper bound on slabs ignoring the bitmap itself, then refine. *)
  let logs_len = max_sessions * (memlog_cap + oplog_cap) in
  let est_slabs = max 1 ((capacity - after_meta - logs_len) / slab_size) in
  let bitmap_base = after_meta in
  let bitmap_len = align_up ((est_slabs + 7) / 8) 8 in
  let memlog_base = bitmap_base + bitmap_len in
  let oplog_base = memlog_base + (max_sessions * memlog_cap) in
  let data_base = align_up (oplog_base + (max_sessions * oplog_cap)) slab_size in
  if data_base + slab_size > capacity then
    invalid_arg "Layout.compute: capacity too small for fixed areas";
  let n_slabs = (capacity - data_base) / slab_size in
  let n_slabs = min n_slabs (bitmap_len * 8) in
  {
    capacity;
    max_sessions;
    naming_base;
    naming_len;
    sessions_base;
    meta_base;
    meta_len;
    bitmap_base;
    bitmap_len;
    memlog_base;
    memlog_cap;
    oplog_base;
    oplog_cap;
    slab_size;
    data_base;
    n_slabs;
  }

let store dev t =
  let open Asym_util in
  let e = Codec.Enc.create ~capacity:superblock_len () in
  Codec.Enc.u64 e magic;
  List.iter (Codec.Enc.u64i e)
    [
      t.capacity;
      t.max_sessions;
      t.naming_base;
      t.naming_len;
      t.sessions_base;
      t.meta_base;
      t.meta_len;
      t.bitmap_base;
      t.bitmap_len;
      t.memlog_base;
      t.memlog_cap;
      t.oplog_base;
      t.oplog_cap;
      t.slab_size;
      t.data_base;
      t.n_slabs;
    ];
  Asym_nvm.Device.write dev ~addr:0 (Codec.Enc.to_bytes e)

let load dev =
  let open Asym_util in
  let b = Asym_nvm.Device.read dev ~addr:0 ~len:superblock_len in
  let d = Codec.Dec.of_bytes b in
  if Codec.Dec.u64 d <> magic then failwith "Layout.load: bad superblock magic";
  let f () = Codec.Dec.u64i d in
  let capacity = f () in
  let max_sessions = f () in
  let naming_base = f () in
  let naming_len = f () in
  let sessions_base = f () in
  let meta_base = f () in
  let meta_len = f () in
  let bitmap_base = f () in
  let bitmap_len = f () in
  let memlog_base = f () in
  let memlog_cap = f () in
  let oplog_base = f () in
  let oplog_cap = f () in
  let slab_size = f () in
  let data_base = f () in
  let n_slabs = f () in
  {
    capacity;
    max_sessions;
    naming_base;
    naming_len;
    sessions_base;
    meta_base;
    meta_len;
    bitmap_base;
    bitmap_len;
    memlog_base;
    memlog_cap;
    oplog_base;
    oplog_cap;
    slab_size;
    data_base;
    n_slabs;
  }

let memlog_region t ~session =
  assert (session >= 0 && session < t.max_sessions);
  (t.memlog_base + (session * t.memlog_cap), t.memlog_cap)

let oplog_region t ~session =
  assert (session >= 0 && session < t.max_sessions);
  (t.oplog_base + (session * t.oplog_cap), t.oplog_cap)

let session_slot t ~session =
  assert (session >= 0 && session < t.max_sessions);
  t.sessions_base + (session * session_slot_len)

let slab_addr t i =
  assert (i >= 0 && i < t.n_slabs);
  t.data_base + (i * t.slab_size)

let slab_index t addr =
  assert (addr >= t.data_base && addr < t.data_base + (t.n_slabs * t.slab_size));
  (addr - t.data_base) / t.slab_size
