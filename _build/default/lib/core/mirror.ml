open Asym_sim

type kind = Nvm_backed | Ssd_backed

type t = {
  kind : kind;
  name : string;
  dev : Asym_nvm.Device.t;
  nic : Timeline.t;
  lat : Latency.t;
  mutable bytes : int;
  mutable writes : int;
  mutable crashed : bool;
}

let create ?(name = "mirror") ~kind ~capacity lat =
  {
    kind;
    name;
    dev = Asym_nvm.Device.create ~name:(name ^ ".dev") ~capacity lat;
    nic = Timeline.create ~name:(name ^ ".nic") ();
    lat;
    bytes = 0;
    writes = 0;
    crashed = false;
  }

let kind t = t.kind
let name t = t.name
let device t = t.dev
let nic t = t.nic

let media_cost t len =
  match t.kind with
  | Nvm_backed -> Latency.nvm_write_cost t.lat len
  | Ssd_backed -> t.lat.Latency.ssd_write_ns

let replicate t ~from_nic ~at ~addr b =
  if t.crashed then ()
  else begin
    let len = Bytes.length b in
    let payload = Latency.rdma_payload_ns t.lat len in
    (* The back-end NIC sends, the mirror NIC receives and its media absorbs. *)
    let sent = Timeline.acquire from_nic ~at ~dur:(t.lat.Latency.rdma_post_ns + payload) in
    let _recv =
      Timeline.acquire t.nic ~at:(sent + (t.lat.Latency.rdma_rtt_ns / 2))
        ~dur:(t.lat.Latency.rdma_post_ns + payload + media_cost t len)
    in
    Asym_nvm.Device.write t.dev ~addr b;
    t.bytes <- t.bytes + len;
    t.writes <- t.writes + 1
  end

let bytes_replicated t = t.bytes
let writes_replicated t = t.writes
let crash t = t.crashed <- true
let is_crashed t = t.crashed
let restart t = t.crashed <- false
