(** Mirror node (§7.1).

    A mirror receives the back-end's persistent-write stream asynchronously
    and maintains a byte-identical replica of the back-end's media image.
    An NVM-backed mirror can be voted the new back-end on permanent failure
    (Case 4); an SSD-backed mirror can only be used to rebuild a fresh
    back-end. The replication never blocks the front-end: the back-end
    forwards writes after acknowledging the transaction. *)

type kind = Nvm_backed | Ssd_backed

type t

val create : ?name:string -> kind:kind -> capacity:int -> Asym_sim.Latency.t -> t
val kind : t -> kind
val name : t -> string
val device : t -> Asym_nvm.Device.t
val nic : t -> Asym_sim.Timeline.t

val replicate : t -> from_nic:Asym_sim.Timeline.t -> at:Asym_sim.Simtime.t -> addr:int -> bytes -> unit
(** Apply one forwarded write. Charges the sending NIC, this mirror's NIC
    and its media; never blocks the caller's clock. *)

val bytes_replicated : t -> int
val writes_replicated : t -> int

val crash : t -> unit
val is_crashed : t -> bool
val restart : t -> unit
