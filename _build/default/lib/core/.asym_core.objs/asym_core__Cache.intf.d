lib/core/cache.mli: Asym_util Types
