lib/core/mirror.ml: Asym_nvm Asym_sim Bytes Latency Timeline
