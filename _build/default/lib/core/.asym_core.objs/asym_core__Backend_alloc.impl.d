lib/core/backend_alloc.ml: Asym_nvm Bytes Layout
