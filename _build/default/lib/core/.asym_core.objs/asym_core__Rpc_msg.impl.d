lib/core/rpc_msg.ml: Asym_util Codec Format List Printf Types
