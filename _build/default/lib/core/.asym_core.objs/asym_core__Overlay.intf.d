lib/core/overlay.mli: Types
