lib/core/naming.ml: Asym_nvm Asym_util Bytes Codec Crc32 Hashtbl Types
