lib/core/layout.ml: Asym_nvm Asym_util Codec List
