lib/core/log.ml: Asym_util Bytes Char Codec Crc32 List Types
