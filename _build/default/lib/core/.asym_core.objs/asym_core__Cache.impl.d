lib/core/cache.ml: Array Asym_util Bytes Hashtbl
