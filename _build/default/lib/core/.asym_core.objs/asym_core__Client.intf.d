lib/core/client.mli: Asym_sim Asym_util Backend Cache Front_alloc Log Store Types
