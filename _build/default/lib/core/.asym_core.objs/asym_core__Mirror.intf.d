lib/core/mirror.mli: Asym_nvm Asym_sim
