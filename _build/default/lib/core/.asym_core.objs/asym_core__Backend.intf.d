lib/core/backend.mli: Asym_nvm Asym_rdma Asym_sim Layout Log Mirror Rpc_msg Types
