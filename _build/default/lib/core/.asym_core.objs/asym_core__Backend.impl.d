lib/core/backend.ml: Array Asym_nvm Asym_rdma Asym_sim Backend_alloc Bytes Clock Conflict Device Filename Hashtbl Int64 Latency Layout List Log Mirror Naming Printf Queue Rpc_msg Timeline Types Verbs
