lib/core/client.ml: Asym_nvm Asym_rdma Asym_sim Asym_util Backend Bytes Cache Clock Fmt Front_alloc Hashtbl Int64 Latency Layout List Log Overlay Printf Rpc_msg Simtime Timeline Types Verbs
