lib/core/backend_alloc.mli: Asym_nvm Layout Types
