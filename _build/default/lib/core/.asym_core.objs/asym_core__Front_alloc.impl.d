lib/core/front_alloc.ml: Array Hashtbl List Types
