lib/core/layout.mli: Asym_nvm
