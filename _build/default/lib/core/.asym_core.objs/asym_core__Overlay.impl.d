lib/core/overlay.ml: Bytes Hashtbl
