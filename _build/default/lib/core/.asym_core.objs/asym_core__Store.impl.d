lib/core/store.ml: Asym_sim Types
