lib/core/log.mli: Types
