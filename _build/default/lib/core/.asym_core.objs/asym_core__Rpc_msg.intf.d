lib/core/rpc_msg.mli: Format Types
