lib/core/naming.mli: Asym_nvm Types
