lib/core/types.ml: Format Printf
