lib/core/front_alloc.mli: Types
