(** The storage interface persistent data structures are written against.

    Two implementations exist:
    - {!Client} — the AsymNVM front-end: remote NVM over one-sided RDMA
      with memory/operation logs, caching and batching;
    - [Asym_baseline.Local_store] — the best-possible symmetric
      architecture: structures live in local NVM, logs are shipped to a
      remote NVM asynchronously.

    Writing the eight data structures and the two transaction applications
    as functors over this signature is what makes the paper's
    Symmetric-vs-AsymNVM comparisons run the same data-structure code on
    both architectures. *)

module type S = sig
  type t

  val clock : t -> Asym_sim.Clock.t

  (** {2 Naming} *)

  val register_ds : t -> string -> Types.handle
  (** Create or open the named structure's metadata (root, lock, sequence
      number) in the global naming space. *)

  val lookup_ds : t -> string -> Types.handle option

  (** {2 Data access (Table 1 basic APIs)} *)

  val read : ?hint:[ `Hot | `Cold ] -> t -> addr:Types.addr -> len:int -> bytes
  (** [rnvm_read]. [`Cold] bypasses the cache (the data structure expects
      no reuse, e.g. B+Tree leaves below the caching threshold). *)

  val read_u64 : t -> ?hint:[ `Hot | `Cold ] -> Types.addr -> int64

  val write : t -> ds:Types.ds_id -> addr:Types.addr -> bytes -> unit
  (** [rnvm_write]/[rnvm_mem_log]: durable according to the store's mode —
      immediately (direct/naive), or when the operation's logs are
      persisted (logged mode). *)

  val write_u64 : t -> ds:Types.ds_id -> Types.addr -> int64 -> unit

  val cas_u64 : t -> ds:Types.ds_id -> Types.addr -> expected:int64 -> desired:int64 -> int64
  (** Atomic 8-byte compare-and-swap (multi-version root switch, §6.2). *)

  (** {2 Memory management (Table 1)} *)

  val malloc : t -> int -> Types.addr
  val free : t -> Types.addr -> len:int -> unit

  (** {2 Operation framing (§4.3)} *)

  val op_begin : t -> ds:Types.ds_id -> optype:int -> params:bytes -> int64
  (** Start a data-structure operation: persists the operation log (when
      the configuration batches) and returns the operation number. *)

  val op_end : t -> ds:Types.ds_id -> unit
  (** Finish the operation: triggers [rnvm_tx_write] per batching policy. *)

  val pending_ops : t -> ds:Types.ds_id -> (int64 * int * bytes) list
  (** Operations logged but whose memory logs are still buffered locally —
      the set the stack/queue annulment optimization inspects (§8.1). *)

  val flush : t -> unit
  (** Force [rnvm_tx_write] of all buffered memory logs. *)

  (** {2 Concurrency (Table 1)} *)

  val writer_lock : t -> Types.handle -> unit
  val writer_unlock : t -> Types.handle -> unit

  val read_section : ?retry_on:[ `Conflict | `Torn ] -> t -> Types.handle -> (unit -> 'a) -> 'a
  (** Run an optimistic read section under the write-preferred reader lock
      (Algorithm 2), retrying until it observes no concurrent memory-log
      application. [`Torn] (multi-version readers) retries only when the
      traversal itself tripped over reclaimed memory: any version a
      multi-version reader completes on is consistent by construction. *)

  val invalidate_cache : t -> unit
  (** Drop every cached page. Multi-version readers call this when they
      observe a root switch: within one version epoch nodes are immutable
      and reclaimed blocks are still inside their §6.2 grace period, so a
      cache never outlives its consistency this way. *)

  (** {2 Introspection} *)

  val cache_stats : t -> int * int
  (** (hits, misses) — used by the adaptive tree-level caching of §8.3. *)

  val batch_size : t -> int
  val read_retries : t -> int
end
