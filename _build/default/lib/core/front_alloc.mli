(** Front-end tier of the two-tier NVM allocator (§5.2).

    The back-end hands out fixed-size slabs (via the Malloc/Free RPCs);
    this tier carves them into power-of-two size classes and serves most
    allocations from purely local free lists. Block-level state is
    volatile by design: after a front-end crash only slab-level occupancy
    is reconstructed (from the back-end's persistent bitmap), trading a
    bounded leak inside partially-used slabs for allocation speed — the
    paper's exact trade-off. Emptied slabs beyond [reclaim_threshold] are
    returned to the back-end. *)

exception Out_of_nvm

type backend_ops = {
  slab_size : int;
  alloc_slabs : int -> Types.addr;  (** RPC to the back-end; raises {!Out_of_nvm} *)
  free_slabs : Types.addr -> int -> unit;
  free_slab_batch : Types.addr list -> unit;  (** batched periodic reclamation *)
  slab_base_of : Types.addr -> Types.addr;  (** align an address down to its slab *)
}

type t

val create : ?reclaim_threshold:int -> ?prefetch:int -> backend_ops -> t
(** [prefetch] slabs are fetched per back-end RPC (default 8), amortizing
    the network round trip over many block allocations. *)

val alloc : t -> int -> Types.addr
(** Allocate [size] bytes of back-end NVM. Requests larger than half a
    slab go straight to the back-end as contiguous slab runs. *)

val free : t -> Types.addr -> len:int -> unit
(** Release an allocation made through {!alloc} with the same size.
    Freeing a block that belongs to a pre-crash incarnation's slab leaks
    it (block-level free lists are volatile by design, §5.2); see
    {!leaked}. *)

val allocations : t -> int
val frees : t -> int
val slab_rpcs : t -> int
(** How many allocations had to fall through to the back-end RPC. *)

val leaked : t -> int
(** Blocks leaked because their slab's block map predates a crash. *)
