(** The global naming space (§5.1).

    A small persistent dictionary at a well-known device location mapping
    names to [(kind, address)] pairs: data-structure roots, lock words,
    sequence numbers, partition maps. Both front-ends (via RPC) and the
    back-end consult it; after any crash it is the bootstrap point of
    recovery. The whole table is rewritten on update (it is tiny) with a
    trailing CRC. *)

type t

val create : Asym_nvm.Device.t -> base:int -> len:int -> t
(** Initialize an empty naming space on the device. *)

val load : Asym_nvm.Device.t -> base:int -> len:int -> t
(** Reload from the device. Raises [Failure] on checksum mismatch. *)

val set : t -> string -> Types.name_kind -> Types.addr -> unit
(** Insert or replace; persists immediately. *)

val find : t -> string -> (Types.name_kind * Types.addr) option
val mem : t -> string -> bool
val remove : t -> string -> unit
val to_list : t -> (string * Types.name_kind * Types.addr) list
val persisted_len : t -> int
(** Current serialized size in bytes (what one update writes). *)
