(** The best-possible symmetric NVM architecture (the paper's §9.2
    baseline, rows "Symmetric" and "Symmetric-B" of Table 3).

    Data structures live in NVM on the local memory bus and are mutated
    with stores plus persist fences; for fault tolerance an update log is
    shipped to a remote NVM node {e asynchronously} (the paper notes this
    gives the symmetric upper bound but "will obviously cause
    inconsistency" on an ill-timed crash — the front-end never waits for
    the replica). Implements {!Asym_core.Store.S}, so every data-structure
    functor of this repository runs unchanged against it.

    Cost model: reads/writes pay NVM media latency per 64-byte line;
    operations pay a persist fence at commit; log shipping pays only the
    NIC posting cost ([Symmetric]) or a batched post every [log_batch]
    operations ([Symmetric-B]). *)

type config = { log_batch : int }

val symmetric : config
val symmetric_b : ?batch:int -> unit -> config

type t

val create :
  ?name:string -> ?capacity:int -> ?cfg:config -> Asym_sim.Latency.t ->
  clock:Asym_sim.Clock.t -> t

include Asym_core.Store.S with type t := t

val device : t -> Asym_nvm.Device.t
val ops_executed : t -> int
