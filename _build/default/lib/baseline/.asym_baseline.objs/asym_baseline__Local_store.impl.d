lib/baseline/local_store.ml: Asym_core Asym_nvm Asym_rdma Asym_sim Bytes Clock Front_alloc Hashtbl Latency List Timeline Types
