lib/baseline/local_store.mli: Asym_core Asym_nvm Asym_sim
