lib/rdma/verbs.ml: Asym_nvm Asym_sim Bytes Clock Latency Printf Timeline
