lib/rdma/verbs.mli: Asym_nvm Asym_sim
