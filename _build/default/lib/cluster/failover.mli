(** Back-end fail-over (§7.2 Case 4).

    When the keepAlive service declares a back-end permanently dead, the
    surviving mirrors vote a successor. An NVM-backed mirror is preferred:
    it can serve as the new back-end directly (its media image is a
    byte-identical replica). An SSD-backed mirror can only seed a rebuild
    onto a fresh NVM device. *)

val elect : Asym_core.Mirror.t list -> Asym_core.Mirror.t option
(** Pick the successor: the first live NVM-backed mirror, else the first
    live SSD-backed one, else [None]. *)

val promote :
  ?name:string -> Asym_core.Mirror.t -> Asym_sim.Latency.t -> Asym_core.Backend.t
(** Bring up a new back-end from the mirror's replica image. For an
    NVM-backed mirror the device is adopted in place; for an SSD-backed
    mirror the image is copied onto a new NVM device first (the paper's
    "front-ends reconstruct the data structure to a new back-end"). The
    new back-end replays any pending logs exactly like a restart. *)

val failover :
  ?name:string -> dead:Asym_core.Backend.t -> Asym_sim.Latency.t ->
  Asym_core.Backend.t option
(** Convenience: elect among the dead back-end's mirrors and promote. *)
