lib/cluster/failover.mli: Asym_core Asym_sim
