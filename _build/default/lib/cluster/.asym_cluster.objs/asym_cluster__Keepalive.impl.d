lib/cluster/keepalive.ml: Array Asym_sim Asym_util Hashtbl
