lib/cluster/failover.ml: Asym_core Asym_nvm Backend List Mirror
