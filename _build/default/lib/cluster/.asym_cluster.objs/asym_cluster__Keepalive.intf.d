lib/cluster/keepalive.mli: Asym_sim Asym_util
