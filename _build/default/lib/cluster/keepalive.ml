type node_id = string

type t = {
  replicas : int;
  lease : Asym_sim.Simtime.t;
  skew : Asym_sim.Simtime.t;
  rng : Asym_util.Rng.t;
  (* per node, per replica: the virtual time each replica last saw a
     renewal *)
  seen : (node_id, Asym_sim.Simtime.t array) Hashtbl.t;
}

let create ?(replicas = 3) ?(lease = Asym_sim.Simtime.ms 10) ?(skew = Asym_sim.Simtime.us 100)
    rng =
  assert (replicas >= 1);
  { replicas; lease; skew; rng; seen = Hashtbl.create 8 }

let observe t node ~now =
  let obs =
    match Hashtbl.find_opt t.seen node with
    | Some a -> a
    | None ->
        let a = Array.make t.replicas 0 in
        Hashtbl.replace t.seen node a;
        a
  in
  for i = 0 to t.replicas - 1 do
    let delay = if t.skew = 0 then 0 else Asym_util.Rng.int t.rng (t.skew + 1) in
    obs.(i) <- max obs.(i) (now + delay)
  done

let register = observe
let renew = observe

let alive t node ~now =
  match Hashtbl.find_opt t.seen node with
  | None -> false
  | Some obs ->
      let expired = Array.fold_left (fun n seen -> if now > seen + t.lease then n + 1 else n) 0 obs in
      (* Crashed only when a majority of replicas saw the lease expire. *)
      expired * 2 <= t.replicas

let crashed t ~now =
  Hashtbl.fold (fun node _ acc -> if alive t node ~now then acc else node :: acc) t.seen []

let forget t node = Hashtbl.remove t.seen node
let members t = Hashtbl.fold (fun node _ acc -> node :: acc) t.seen []
