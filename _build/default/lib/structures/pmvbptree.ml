(** Multi-version (copy-on-write) B+Tree — the append-only B-Tree of §6.2.

    Same 512-byte node geometry as {!Pbptree}, but nodes are immutable:
    an insert path-copies from leaf to root and installs the new version
    with a root CAS. Leaf chaining is dropped (a chained leaf would need
    in-place updates); in-order traversal goes through the tree. *)

open Asym_core

let op_put = 1
let op_delete = 2
let fanout = Pbptree.fanout
let max_keys = Pbptree.max_keys

module Make (S : Store.S) = struct
  module B = Blob.Make (S)
  module Gc = Lazy_gc.Make (S)

  type node = {
    leaf : bool;
    mutable nkeys : int;
    keys : int64 array;
    children : int array;
    vals : int array;
  }

  type t = {
    s : S.t;
    h : Types.handle;
    gc : Gc.t;
    lc : Level_cache.t;
    opts : Ds_intf.options;
    mutable last_root : int64;  (* version epoch observed by this reader *)
  }

  let node_bytes = 512

  let attach ?(opts = Ds_intf.default_options) s ~name =
    let h = S.register_ds s name in
    {
      s;
      h;
      gc = Gc.create s;
      lc = Level_cache.create ~initial:2 ~max_depth:12 ();
      opts;
      last_root = 0L;
    }

  (* See Pmvbst.current_root: a root switch starts a new version epoch and
     drops the previous epoch's cached pages. *)
  let current_root t =
    let root = S.read_u64 ~hint:`Cold t.s t.h.Types.root in
    if t.opts.Ds_intf.shared && root <> t.last_root then begin
      S.invalidate_cache t.s;
      t.last_root <- root
    end;
    root

  let handle t = t.h
  let gc_pending t = Gc.pending t.gc
  let gc_drain t = Gc.drain t.gc

  let empty_node leaf =
    {
      leaf;
      nkeys = 0;
      keys = Array.make (max_keys + 1) 0L;
      children = Array.make (fanout + 1) 0;
      vals = Array.make (max_keys + 1) 0;
    }

  let copy_node n =
    {
      leaf = n.leaf;
      nkeys = n.nkeys;
      keys = Array.copy n.keys;
      children = Array.copy n.children;
      vals = Array.copy n.vals;
    }

  let encode n =
    assert (n.nkeys <= max_keys);
    let b = Bytes.make node_bytes '\000' in
    Bytes.set_uint8 b 0 (if n.leaf then 1 else 2);
    Bytes.set_uint8 b 1 n.nkeys;
    if n.leaf then
      for i = 0 to max_keys - 1 do
        Bytes.set_int64_le b (16 + (8 * i)) n.keys.(i);
        Bytes.set_int64_le b (264 + (8 * i)) (Int64.of_int n.vals.(i))
      done
    else
      for i = 0 to fanout - 1 do
        if i < max_keys then Bytes.set_int64_le b (8 + (8 * i)) n.keys.(i);
        Bytes.set_int64_le b (256 + (8 * i)) (Int64.of_int n.children.(i))
      done;
    b

  let decode b =
    let leaf = Bytes.get_uint8 b 0 = 1 in
    let n = empty_node leaf in
    n.nkeys <- Bytes.get_uint8 b 1;
    if leaf then
      for i = 0 to max_keys - 1 do
        n.keys.(i) <- Bytes.get_int64_le b (16 + (8 * i));
        n.vals.(i) <- Int64.to_int (Bytes.get_int64_le b (264 + (8 * i)))
      done
    else
      for i = 0 to fanout - 1 do
        if i < max_keys then n.keys.(i) <- Bytes.get_int64_le b (8 + (8 * i));
        n.children.(i) <- Int64.to_int (Bytes.get_int64_le b (256 + (8 * i)))
      done;
    n

  let load t ~depth addr =
    decode (S.read ~hint:(Level_cache.hint t.lc ~depth) t.s ~addr ~len:node_bytes)

  let alloc_node t ~ds ~created n =
    let addr = S.malloc t.s node_bytes in
    S.write t.s ~ds ~addr (encode n);
    created := (addr, node_bytes) :: !created;
    addr

  let child_index n key =
    let rec go i = if i < n.nkeys && n.keys.(i) <= key then go (i + 1) else i in
    go 0

  let leaf_pos n key =
    let rec go i = if i < n.nkeys && n.keys.(i) < key then go (i + 1) else i in
    go 0

  let leaf_insert_at n pos key valptr =
    for i = n.nkeys downto pos + 1 do
      n.keys.(i) <- n.keys.(i - 1);
      n.vals.(i) <- n.vals.(i - 1)
    done;
    n.keys.(pos) <- key;
    n.vals.(pos) <- valptr;
    n.nkeys <- n.nkeys + 1

  let internal_insert_at n pos key child =
    for i = n.nkeys downto pos + 1 do
      n.keys.(i) <- n.keys.(i - 1)
    done;
    for i = n.nkeys + 1 downto pos + 2 do
      n.children.(i) <- n.children.(i - 1)
    done;
    n.keys.(pos) <- key;
    n.children.(pos + 1) <- child;
    n.nkeys <- n.nkeys + 1

  let split n =
    let right = empty_node n.leaf in
    if n.leaf then begin
      let half = n.nkeys / 2 in
      let moved = n.nkeys - half in
      for i = 0 to moved - 1 do
        right.keys.(i) <- n.keys.(half + i);
        right.vals.(i) <- n.vals.(half + i)
      done;
      right.nkeys <- moved;
      n.nkeys <- half;
      (right.keys.(0), right)
    end
    else begin
      let mid = n.nkeys / 2 in
      let sep = n.keys.(mid) in
      let moved = n.nkeys - mid - 1 in
      for i = 0 to moved - 1 do
        right.keys.(i) <- n.keys.(mid + 1 + i)
      done;
      for i = 0 to moved do
        right.children.(i) <- n.children.(mid + 1 + i)
      done;
      right.nkeys <- moved;
      n.nkeys <- mid;
      (sep, right)
    end

  let rec with_root_swap t ~build ~attempt =
    if attempt > 16 then failwith "Pmvbptree: root CAS kept failing (more than one writer?)";
    let ds = t.h.Types.id in
    let old_root = S.read_u64 ~hint:`Cold t.s t.h.Types.root in
    let created = ref [] in
    let obsolete = ref [] in
    match build ~created ~obsolete (Int64.to_int old_root) with
    | None ->
        List.iter (fun (addr, len) -> S.free t.s addr ~len) !created;
        false
    | Some new_root ->
        if
          S.cas_u64 t.s ~ds t.h.Types.root ~expected:old_root
            ~desired:(Int64.of_int new_root)
          = old_root
        then begin
          List.iter (fun (addr, len) -> Gc.defer t.gc addr ~len) !obsolete;
          true
        end
        else begin
          List.iter (fun (addr, len) -> S.free t.s addr ~len) !created;
          with_root_swap t ~build ~attempt:(attempt + 1)
        end

  let put t ~key ~value =
    let ds = t.h.Types.id in
    ignore (S.op_begin t.s ~ds ~optype:op_put ~params:(Params.of_kv key value));
    ignore
      (with_root_swap t ~attempt:0 ~build:(fun ~created ~obsolete root ->
           let valptr = B.alloc t.s ~ds value in
           created := (valptr, B.size t.s valptr) :: !created;
           (* Copy-on-write insert: returns the copied child's address and
              an optional split to propagate. *)
           let rec ins addr depth =
             if addr = 0 then begin
               let leaf = empty_node true in
               leaf_insert_at leaf 0 key valptr;
               (alloc_node t ~ds ~created leaf, None)
             end
             else begin
               let n = copy_node (load t ~depth addr) in
               obsolete := (addr, node_bytes) :: !obsolete;
               if n.leaf then begin
                 let pos = leaf_pos n key in
                 if pos < n.nkeys && n.keys.(pos) = key then begin
                   obsolete := (n.vals.(pos), B.size t.s n.vals.(pos)) :: !obsolete;
                   n.vals.(pos) <- valptr;
                   (alloc_node t ~ds ~created n, None)
                 end
                 else begin
                   leaf_insert_at n pos key valptr;
                   if n.nkeys <= max_keys then (alloc_node t ~ds ~created n, None)
                   else begin
                     let sep, right = split n in
                     let laddr = alloc_node t ~ds ~created n in
                     let raddr = alloc_node t ~ds ~created right in
                     (laddr, Some (sep, raddr))
                   end
                 end
               end
               else begin
                 let idx = child_index n key in
                 let child', spl = ins n.children.(idx) (depth + 1) in
                 n.children.(idx) <- child';
                 (match spl with
                 | None -> ()
                 | Some (sep, raddr) -> internal_insert_at n idx sep raddr);
                 if n.nkeys <= max_keys then (alloc_node t ~ds ~created n, None)
                 else begin
                   let sep, right = split n in
                   let laddr = alloc_node t ~ds ~created n in
                   let raddr = alloc_node t ~ds ~created right in
                   (laddr, Some (sep, raddr))
                 end
               end
             end
           in
           let new_child, spl = ins root 0 in
           match spl with
           | None -> Some new_child
           | Some (sep, raddr) ->
               let nroot = empty_node false in
               nroot.nkeys <- 1;
               nroot.keys.(0) <- sep;
               nroot.children.(0) <- new_child;
               nroot.children.(1) <- raddr;
               Some (alloc_node t ~ds ~created nroot)));
    S.op_end t.s ~ds;
    Gc.pump t.gc;
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s)

  let find t ~key =
    let read () =
      let rec go addr depth =
        if addr = 0 then None
        else begin
          let n = load t ~depth addr in
          if n.leaf then begin
            let pos = leaf_pos n key in
            if pos < n.nkeys && n.keys.(pos) = key then Some (B.read t.s n.vals.(pos)) else None
          end
          else go n.children.(child_index n key) (depth + 1)
        end
      in
      go (Int64.to_int (current_root t)) 0
    in
    let v =
      if t.opts.Ds_intf.shared then S.read_section ~retry_on:`Torn t.s t.h read else read ()
    in
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
    v

  let mem t ~key = match find t ~key with Some _ -> true | None -> false

  let delete t ~key =
    let ds = t.h.Types.id in
    ignore (S.op_begin t.s ~ds ~optype:op_delete ~params:(Params.of_key key));
    let changed =
      with_root_swap t ~attempt:0 ~build:(fun ~created ~obsolete root ->
          (* Leaf-local deletion with path copying (no rebalancing). *)
          let rec del addr depth =
            if addr = 0 then None
            else begin
              let n = copy_node (load t ~depth addr) in
              if n.leaf then begin
                let pos = leaf_pos n key in
                if pos < n.nkeys && n.keys.(pos) = key then begin
                  obsolete := (addr, node_bytes) :: !obsolete;
                  obsolete := (n.vals.(pos), B.size t.s n.vals.(pos)) :: !obsolete;
                  for i = pos to n.nkeys - 2 do
                    n.keys.(i) <- n.keys.(i + 1);
                    n.vals.(i) <- n.vals.(i + 1)
                  done;
                  n.nkeys <- n.nkeys - 1;
                  Some (alloc_node t ~ds ~created n)
                end
                else None
              end
              else begin
                let idx = child_index n key in
                match del n.children.(idx) (depth + 1) with
                | None -> None
                | Some child' ->
                    obsolete := (addr, node_bytes) :: !obsolete;
                    n.children.(idx) <- child';
                    Some (alloc_node t ~ds ~created n)
              end
            end
          in
          del root 0)
    in
    S.op_end t.s ~ds;
    Gc.pump t.gc;
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
    changed

  let fold t f init =
    let rec go acc addr =
      if addr = 0 then acc
      else begin
        let n = load t ~depth:8 addr in
        if n.leaf then begin
          let acc = ref acc in
          for i = 0 to n.nkeys - 1 do
            acc := f !acc n.keys.(i) (B.read t.s n.vals.(i))
          done;
          !acc
        end
        else begin
          let acc = ref acc in
          for i = 0 to n.nkeys do
            acc := go !acc n.children.(i)
          done;
          !acc
        end
      end
    in
    go init (Int64.to_int (S.read_u64 ~hint:`Cold t.s t.h.Types.root))

  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_put ->
        let key, value = Params.to_kv op.Log.Op_entry.params in
        put t ~key ~value
    | x when x = op_delete -> ignore (delete t ~key:(Params.to_key op.Log.Op_entry.params))
    | 0 -> ()
    | other -> Fmt.invalid_arg "Pmvbptree.replay: unknown optype %d" other
end
