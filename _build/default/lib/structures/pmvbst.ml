(** Multi-version binary search tree (lock-free, §6.2 / Figure 5).

    Nodes are immutable ([[left][right][key][valptr]], 32 bytes): a writer
    copies every node on the path to the root (path copying), then switches
    the root pointer with one RDMA compare-and-swap. Readers never lock and
    never retry — any root they observe anchors a complete, consistent
    version. Superseded nodes are reclaimed by the lazy GC after the §6.2
    grace period. *)

open Asym_core

let op_put = 1
let op_delete = 2

module Make (S : Store.S) = struct
  module B = Blob.Make (S)
  module Gc = Lazy_gc.Make (S)

  type t = {
    s : S.t;
    h : Types.handle;
    gc : Gc.t;
    lc : Level_cache.t;
    opts : Ds_intf.options;
    mutable last_root : int64;  (* version epoch observed by this reader *)
  }

  let node_size = 32
  let off_left = 0
  let off_right = 8
  let off_key = 16
  let off_valptr = 24

  let attach ?(opts = Ds_intf.default_options) s ~name =
    let h = S.register_ds s name in
    { s; h; gc = Gc.create s; lc = Level_cache.create ~max_depth:48 (); opts; last_root = 0L }

  (* Reading the root defines the version epoch; on a switch the cached
     pages of the previous epoch are dropped (blocks reclaimed from older
     epochs are still inside the GC grace period, so within one epoch the
     cache can never serve reused bytes). *)
  let current_root t =
    let root = S.read_u64 ~hint:`Cold t.s t.h.Types.root in
    if t.opts.Ds_intf.shared && root <> t.last_root then begin
      S.invalidate_cache t.s;
      t.last_root <- root
    end;
    root

  let handle t = t.h
  let gc_pending t = Gc.pending t.gc
  let gc_drain t = Gc.drain t.gc

  type node = { left : int; right : int; key : int64; valptr : int }

  let load t ~depth addr =
    let b = S.read ~hint:(Level_cache.hint t.lc ~depth) t.s ~addr ~len:node_size in
    {
      left = Int64.to_int (Bytes.get_int64_le b off_left);
      right = Int64.to_int (Bytes.get_int64_le b off_right);
      key = Bytes.get_int64_le b off_key;
      valptr = Int64.to_int (Bytes.get_int64_le b off_valptr);
    }

  let alloc_node t ~ds ~created n =
    let addr = S.malloc t.s node_size in
    let b = Bytes.create node_size in
    Bytes.set_int64_le b off_left (Int64.of_int n.left);
    Bytes.set_int64_le b off_right (Int64.of_int n.right);
    Bytes.set_int64_le b off_key n.key;
    Bytes.set_int64_le b off_valptr (Int64.of_int n.valptr);
    S.write t.s ~ds ~addr b;
    created := (addr, node_size) :: !created;
    addr

  (* One multi-version mutation attempt: read the root, build the new
     version, CAS the root. SWMR means the CAS only fails if another
     front-end raced us; then we roll the fresh allocations back and retry
     against the new version. *)
  let rec with_root_swap t ~build ~attempt =
    if attempt > 16 then failwith "Pmvbst: root CAS kept failing (more than one writer?)";
    let ds = t.h.Types.id in
    let old_root = S.read_u64 ~hint:`Cold t.s t.h.Types.root in
    let created = ref [] in
    let obsolete = ref [] in
    match build ~created ~obsolete (Int64.to_int old_root) with
    | None ->
        (* Nothing to change (e.g. deleting an absent key): roll back any
           speculative allocations. *)
        List.iter (fun (addr, len) -> S.free t.s addr ~len) !created;
        false
    | Some new_root ->
        let won =
          S.cas_u64 t.s ~ds t.h.Types.root ~expected:old_root
            ~desired:(Int64.of_int new_root)
          = old_root
        in
        if won then begin
          List.iter (fun (addr, len) -> Gc.defer t.gc addr ~len) !obsolete;
          true
        end
        else begin
          List.iter (fun (addr, len) -> S.free t.s addr ~len) !created;
          with_root_swap t ~build ~attempt:(attempt + 1)
        end

  let put t ~key ~value =
    let ds = t.h.Types.id in
    ignore (S.op_begin t.s ~ds ~optype:op_put ~params:(Params.of_kv key value));
    let changed =
      with_root_swap t ~attempt:0 ~build:(fun ~created ~obsolete root ->
          let valptr = B.alloc t.s ~ds value in
          created := (valptr, B.size t.s valptr) :: !created;
          let rec ins addr depth =
            if addr = 0 then alloc_node t ~ds ~created { left = 0; right = 0; key; valptr }
            else begin
              let n = load t ~depth addr in
              obsolete := (addr, node_size) :: !obsolete;
              if key = n.key then begin
                obsolete := (n.valptr, B.size t.s n.valptr) :: !obsolete;
                alloc_node t ~ds ~created { n with valptr }
              end
              else if key < n.key then
                alloc_node t ~ds ~created { n with left = ins n.left (depth + 1) }
              else alloc_node t ~ds ~created { n with right = ins n.right (depth + 1) }
            end
          in
          Some (ins root 0))
    in
    ignore changed;
    S.op_end t.s ~ds;
    Gc.pump t.gc;
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s)

  let find t ~key =
    let read () =
      let rec go addr depth =
        if addr = 0 then None
        else begin
          let n = load t ~depth addr in
          if key = n.key then Some (B.read t.s n.valptr)
          else if key < n.key then go n.left (depth + 1)
          else go n.right (depth + 1)
        end
      in
      go (Int64.to_int (current_root t)) 0
    in
    (* Readers never lock and never need conflict retries (any completed
       version is consistent); the section only guards against traversing
       pages of reclaimed nodes. *)
    let v =
      if t.opts.Ds_intf.shared then S.read_section ~retry_on:`Torn t.s t.h read else read ()
    in
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
    v

  let mem t ~key = match find t ~key with Some _ -> true | None -> false

  let delete t ~key =
    let ds = t.h.Types.id in
    ignore (S.op_begin t.s ~ds ~optype:op_delete ~params:(Params.of_key key));
    let changed =
      with_root_swap t ~attempt:0 ~build:(fun ~created ~obsolete root ->
          (* Remove the minimum of the subtree, returning it and the new
             subtree (path-copied). *)
          let rec take_min addr depth =
            let n = load t ~depth addr in
            obsolete := (addr, node_size) :: !obsolete;
            if n.left = 0 then (n, n.right)
            else begin
              let m, rest = take_min n.left (depth + 1) in
              (m, alloc_node t ~ds ~created { n with left = rest })
            end
          in
          let rec del addr depth =
            if addr = 0 then None
            else begin
              let n = load t ~depth addr in
              if key = n.key then begin
                obsolete := (addr, node_size) :: !obsolete;
                obsolete := (n.valptr, B.size t.s n.valptr) :: !obsolete;
                if n.left = 0 then Some n.right
                else if n.right = 0 then Some n.left
                else begin
                  (* The successor node is re-created at our slot; its
                     original copy is obsoleted inside [take_min]. *)
                  let m, right' = take_min n.right (depth + 1) in
                  Some
                    (alloc_node t ~ds ~created
                       { left = n.left; right = right'; key = m.key; valptr = m.valptr })
                end
              end
              else if key < n.key then
                match del n.left (depth + 1) with
                | None -> None
                | Some l' ->
                    obsolete := (addr, node_size) :: !obsolete;
                    Some (alloc_node t ~ds ~created { n with left = l' })
              else
                match del n.right (depth + 1) with
                | None -> None
                | Some r' ->
                    obsolete := (addr, node_size) :: !obsolete;
                    Some (alloc_node t ~ds ~created { n with right = r' })
            end
          in
          del root 0)
    in
    S.op_end t.s ~ds;
    Gc.pump t.gc;
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
    changed

  let fold t f init =
    let rec go acc addr =
      if addr = 0 then acc
      else begin
        let n = load t ~depth:8 addr in
        let acc = go acc n.left in
        let acc = f acc n.key (B.read t.s n.valptr) in
        go acc n.right
      end
    in
    go init (Int64.to_int (S.read_u64 ~hint:`Cold t.s t.h.Types.root))

  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_put ->
        let key, value = Params.to_kv op.Log.Op_entry.params in
        put t ~key ~value
    | x when x = op_delete -> ignore (delete t ~key:(Params.to_key op.Log.Op_entry.params))
    | 0 -> ()
    | other -> Fmt.invalid_arg "Pmvbst.replay: unknown optype %d" other
end
