(** Persistent B+Tree (lock-based, §8.3), fan-out 32.

    Fixed 512-byte nodes:
    - internal: [[tag][nkeys][pad6][keys: 31 x u64][children: 32 x u64]]
    - leaf:     [[tag][nkeys][pad6][next: u64][keys: 31 x u64][valptrs: 31 x u64]]

    Values live in out-of-line blobs; leaves are chained for range scans.
    Upper levels are read through the cache with the adaptive depth
    threshold of §8.3; leaves below the threshold bypass it. Deletion is
    leaf-local (no rebalancing): emptied leaves stay linked, which keeps
    lookups correct — the standard relaxed B+Tree used by log-structured
    stores. *)

open Asym_core

let op_put = 1
let op_delete = 2
let op_vinsert = 3
let fanout = 32
let max_keys = fanout - 1

module Make (S : Store.S) = struct
  module B = Blob.Make (S)

  type node = {
    leaf : bool;
    mutable nkeys : int;
    keys : int64 array;  (* max_keys *)
    children : int array;  (* fanout, internal only *)
    mutable next : int;  (* leaf only *)
    vals : int array;  (* max_keys, leaf only *)
  }

  type t = {
    s : S.t;
    h : Types.handle;
    lc : Level_cache.t;
    opts : Ds_intf.options;
  }

  let node_bytes = 512

  let attach ?(opts = Ds_intf.locked_options) ?(cache_all_levels = false) s ~name =
    let h = S.register_ds s name in
    let lc =
      if cache_all_levels then Level_cache.create ~initial:12 ~period:max_int ~max_depth:12 ()
      else Level_cache.create ~initial:2 ~max_depth:12 ()
    in
    { s; h; lc; opts }

  let handle t = t.h

  let locked t f =
    if t.opts.Ds_intf.use_lock then begin
      S.writer_lock t.s t.h;
      Fun.protect ~finally:(fun () -> S.writer_unlock t.s t.h) f
    end
    else f ()

  (* Arrays carry one spare slot: an internal node transiently holds
     max_keys + 1 keys between [internal_insert_at] and [split_internal];
     the overflowed shape is never encoded to NVM. *)
  let empty_node leaf =
    {
      leaf;
      nkeys = 0;
      keys = Array.make (max_keys + 1) 0L;
      children = Array.make (fanout + 1) 0;
      next = 0;
      vals = Array.make (max_keys + 1) 0;
    }

  let encode n =
    let b = Bytes.make node_bytes '\000' in
    Bytes.set_uint8 b 0 (if n.leaf then 1 else 2);
    Bytes.set_uint8 b 1 n.nkeys;
    if n.leaf then begin
      Bytes.set_int64_le b 8 (Int64.of_int n.next);
      for i = 0 to max_keys - 1 do
        Bytes.set_int64_le b (16 + (8 * i)) n.keys.(i);
        Bytes.set_int64_le b (264 + (8 * i)) (Int64.of_int n.vals.(i))
      done
    end
    else
      for i = 0 to max_keys - 1 do
        Bytes.set_int64_le b (8 + (8 * i)) n.keys.(i);
        Bytes.set_int64_le b (256 + (8 * i)) (Int64.of_int n.children.(i));
        if i = max_keys - 1 then
          Bytes.set_int64_le b (256 + (8 * max_keys)) (Int64.of_int n.children.(max_keys))
      done;
    b

  let decode b =
    let leaf = Bytes.get_uint8 b 0 = 1 in
    let n = empty_node leaf in
    n.nkeys <- Bytes.get_uint8 b 1;
    if leaf then begin
      n.next <- Int64.to_int (Bytes.get_int64_le b 8);
      for i = 0 to max_keys - 1 do
        n.keys.(i) <- Bytes.get_int64_le b (16 + (8 * i));
        n.vals.(i) <- Int64.to_int (Bytes.get_int64_le b (264 + (8 * i)))
      done
    end
    else
      for i = 0 to fanout - 1 do
        if i < max_keys then n.keys.(i) <- Bytes.get_int64_le b (8 + (8 * i));
        n.children.(i) <- Int64.to_int (Bytes.get_int64_le b (256 + (8 * i)))
      done;
    n

  let load t ~depth addr =
    decode (S.read ~hint:(Level_cache.hint t.lc ~depth) t.s ~addr ~len:node_bytes)

  let store t ~ds addr n = S.write t.s ~ds ~addr (encode n)

  let alloc_node t ~ds n =
    let addr = S.malloc t.s node_bytes in
    store t ~ds addr n;
    addr

  (* Index of the child to descend into: number of separator keys <= key. *)
  let child_index n key =
    let rec go i = if i < n.nkeys && n.keys.(i) <= key then go (i + 1) else i in
    go 0

  (* Position of [key] in a leaf, or the insertion point. *)
  let leaf_pos n key =
    let rec go i = if i < n.nkeys && n.keys.(i) < key then go (i + 1) else i in
    go 0

  let leaf_insert_at n pos key valptr =
    for i = n.nkeys downto pos + 1 do
      n.keys.(i) <- n.keys.(i - 1);
      n.vals.(i) <- n.vals.(i - 1)
    done;
    n.keys.(pos) <- key;
    n.vals.(pos) <- valptr;
    n.nkeys <- n.nkeys + 1

  let internal_insert_at n pos key child =
    for i = n.nkeys downto pos + 1 do
      n.keys.(i) <- n.keys.(i - 1)
    done;
    for i = n.nkeys + 1 downto pos + 2 do
      n.children.(i) <- n.children.(i - 1)
    done;
    n.keys.(pos) <- key;
    n.children.(pos + 1) <- child;
    n.nkeys <- n.nkeys + 1

  (* Split a full leaf in two; returns the separator and the new right
     sibling (still unallocated). *)
  let split_leaf n =
    let right = empty_node true in
    let half = n.nkeys / 2 in
    let moved = n.nkeys - half in
    for i = 0 to moved - 1 do
      right.keys.(i) <- n.keys.(half + i);
      right.vals.(i) <- n.vals.(half + i);
      n.keys.(half + i) <- 0L;
      n.vals.(half + i) <- 0
    done;
    right.nkeys <- moved;
    n.nkeys <- half;
    right.next <- n.next;
    (right.keys.(0), right)

  let split_internal n =
    let right = empty_node false in
    let mid = n.nkeys / 2 in
    let sep = n.keys.(mid) in
    let moved = n.nkeys - mid - 1 in
    for i = 0 to moved - 1 do
      right.keys.(i) <- n.keys.(mid + 1 + i);
      n.keys.(mid + 1 + i) <- 0L
    done;
    for i = 0 to moved do
      right.children.(i) <- n.children.(mid + 1 + i);
      n.children.(mid + 1 + i) <- 0
    done;
    right.nkeys <- moved;
    n.keys.(mid) <- 0L;
    n.nkeys <- mid;
    (sep, right)

  (* Returns [Some (sep, right_addr)] if [addr] split. *)
  let rec insert_rec t ~ds addr depth key valptr =
    let n = load t ~depth addr in
    if n.leaf then begin
      let pos = leaf_pos n key in
      if pos < n.nkeys && n.keys.(pos) = key then begin
        let old = n.vals.(pos) in
        n.vals.(pos) <- valptr;
        store t ~ds addr n;
        B.free t.s old;
        None
      end
      else if n.nkeys < max_keys then begin
        leaf_insert_at n pos key valptr;
        store t ~ds addr n;
        None
      end
      else begin
        let sep, right = split_leaf n in
        (if key >= sep then leaf_insert_at right (leaf_pos right key) key valptr
         else leaf_insert_at n (leaf_pos n key) key valptr);
        let right_addr = alloc_node t ~ds right in
        n.next <- right_addr;
        store t ~ds addr n;
        Some (sep, right_addr)
      end
    end
    else begin
      let idx = child_index n key in
      match insert_rec t ~ds n.children.(idx) (depth + 1) key valptr with
      | None -> None
      | Some (sep, right_addr) ->
          if n.nkeys < max_keys then begin
            internal_insert_at n idx sep right_addr;
            store t ~ds addr n;
            None
          end
          else begin
            internal_insert_at n idx sep right_addr;
            (* Overflowed by one: split. nkeys is transiently max_keys+1 in
               DRAM only; both halves are rewritten below. *)
            let osep, right = split_internal n in
            let raddr = alloc_node t ~ds right in
            store t ~ds addr n;
            Some (osep, raddr)
          end
    end

  let put_nolog t key value =
    let ds = t.h.Types.id in
    let valptr = B.alloc t.s ~ds value in
    let root = Int64.to_int (S.read_u64 ~hint:`Hot t.s t.h.Types.root) in
    (if root = 0 then begin
       let leaf = empty_node true in
       leaf_insert_at leaf 0 key valptr;
       let addr = alloc_node t ~ds leaf in
       S.write_u64 t.s ~ds t.h.Types.root (Int64.of_int addr)
     end
     else
       match insert_rec t ~ds root 0 key valptr with
       | None -> ()
       | Some (sep, right_addr) ->
           let nroot = empty_node false in
           nroot.nkeys <- 1;
           nroot.keys.(0) <- sep;
           nroot.children.(0) <- root;
           nroot.children.(1) <- right_addr;
           let addr = alloc_node t ~ds nroot in
           S.write_u64 t.s ~ds t.h.Types.root (Int64.of_int addr));
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s)

  let put t ~key ~value =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_put ~params:(Params.of_kv key value));
        put_nolog t key value;
        S.op_end t.s ~ds)

  (* Internal-overflow guard: keys array has max_keys slots, so the
     transient max_keys+1 state above must never be encoded. It is not:
     split_internal runs before [store]. *)

  let rec find_leaf t ~depth addr key =
    let n = load t ~depth addr in
    if n.leaf then n else find_leaf t ~depth:(depth + 1) n.children.(child_index n key) key

  let find t ~key =
    let read () =
      let root = Int64.to_int (S.read_u64 ~hint:`Hot t.s t.h.Types.root) in
      if root = 0 then None
      else begin
        let leaf = find_leaf t ~depth:0 root key in
        let pos = leaf_pos leaf key in
        if pos < leaf.nkeys && leaf.keys.(pos) = key then Some (B.read t.s leaf.vals.(pos))
        else None
      end
    in
    let v = if t.opts.Ds_intf.shared then S.read_section t.s t.h read else read () in
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
    v

  let mem t ~key = match find t ~key with Some _ -> true | None -> false

  let rec delete_rec t ~ds addr depth key =
    let n = load t ~depth addr in
    if n.leaf then begin
      let pos = leaf_pos n key in
      if pos < n.nkeys && n.keys.(pos) = key then begin
        let blob = n.vals.(pos) in
        for i = pos to n.nkeys - 2 do
          n.keys.(i) <- n.keys.(i + 1);
          n.vals.(i) <- n.vals.(i + 1)
        done;
        n.nkeys <- n.nkeys - 1;
        store t ~ds addr n;
        B.free t.s blob;
        true
      end
      else false
    end
    else delete_rec t ~ds n.children.(child_index n key) (depth + 1) key

  let delete t ~key =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_delete ~params:(Params.of_key key));
        let root = Int64.to_int (S.read_u64 ~hint:`Hot t.s t.h.Types.root) in
        let r = if root = 0 then false else delete_rec t ~ds root 0 key in
        S.op_end t.s ~ds;
        Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
        r)

  let insert_vector t pairs =
    let pairs = List.sort (fun (a, _) (b, _) -> Int64.compare a b) pairs in
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_vinsert ~params:(Params.of_kvs pairs));
        List.iter (fun (key, value) -> put_nolog t key value) pairs;
        S.op_end t.s ~ds)

  (* In-order range scan over the leaf chain. *)
  let range t ~lo ~hi =
    let root = Int64.to_int (S.read_u64 ~hint:`Hot t.s t.h.Types.root) in
    if root = 0 then []
    else begin
      let leaf = ref (find_leaf t ~depth:0 root lo) in
      let out = ref [] in
      let continue_ = ref true in
      while !continue_ do
        let n = !leaf in
        for i = 0 to n.nkeys - 1 do
          if n.keys.(i) >= lo && n.keys.(i) <= hi then
            out := (n.keys.(i), B.read t.s n.vals.(i)) :: !out
        done;
        if n.nkeys > 0 && n.keys.(n.nkeys - 1) > hi then continue_ := false
        else if n.next = 0 then continue_ := false
        else leaf := load t ~depth:12 n.next
      done;
      List.rev !out
    end

  let to_list t = range t ~lo:Int64.min_int ~hi:Int64.max_int

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_put ->
        let key, value = Params.to_kv op.Log.Op_entry.params in
        put t ~key ~value
    | x when x = op_delete -> ignore (delete t ~key:(Params.to_key op.Log.Op_entry.params))
    | x when x = op_vinsert -> insert_vector t (Params.to_kvs op.Log.Op_entry.params)
    | 0 -> ()
    | other -> Fmt.invalid_arg "Pbptree.replay: unknown optype %d" other
end
