(** Persistent FIFO queue (§8.1).

    Layout: the root word points at a 24-byte header [{head; tail; count}];
    nodes are [[next: u64][len: u32][pad: u32][value bytes]]. Enqueues
    append at the tail, dequeues consume from the head; both ends are the
    only hot data, so a tiny cache suffices. *)

open Asym_core

let op_enqueue = 1
let op_dequeue = 2

module Make (S : Store.S) = struct
  type t = { s : S.t; h : Types.handle; header : Types.addr; opts : Ds_intf.options }

  let node_meta = 16
  let off_head = 0
  let off_tail = 8
  let off_count = 16

  let attach ?(opts = Ds_intf.default_options) s ~name =
    let h = S.register_ds s name in
    let header = S.read_u64 ~hint:`Hot s h.Types.root in
    if header = 0L then begin
      let header = S.malloc s 24 in
      S.write s ~ds:h.Types.id ~addr:header (Bytes.make 24 '\000');
      S.write_u64 s ~ds:h.Types.id h.Types.root (Int64.of_int header);
      S.flush s;
      { s; h; header; opts }
    end
    else { s; h; header = Int64.to_int header; opts }

  let handle t = t.h

  let locked t f =
    if t.opts.Ds_intf.use_lock then begin
      S.writer_lock t.s t.h;
      Fun.protect ~finally:(fun () -> S.writer_unlock t.s t.h) f
    end
    else f ()

  let enqueue t value =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_enqueue ~params:value);
        let len = Bytes.length value in
        let node = S.malloc t.s (node_meta + len) in
        let b = Bytes.create (node_meta + len) in
        Bytes.set_int64_le b 0 0L;
        Bytes.set_int32_le b 8 (Int32.of_int len);
        Bytes.set_int32_le b 12 0l;
        Bytes.blit value 0 b node_meta len;
        S.write t.s ~ds ~addr:node b;
        let tail = S.read_u64 ~hint:`Hot t.s (t.header + off_tail) in
        if tail = 0L then begin
          S.write_u64 t.s ~ds (t.header + off_head) (Int64.of_int node);
          S.write_u64 t.s ~ds (t.header + off_tail) (Int64.of_int node)
        end
        else begin
          (* Link the old tail to the new node. *)
          S.write_u64 t.s ~ds (Int64.to_int tail) (Int64.of_int node);
          S.write_u64 t.s ~ds (t.header + off_tail) (Int64.of_int node)
        end;
        let count = S.read_u64 ~hint:`Hot t.s (t.header + off_count) in
        S.write_u64 t.s ~ds (t.header + off_count) (Int64.add count 1L);
        S.op_end t.s ~ds)

  let dequeue t =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_dequeue ~params:Bytes.empty);
        let head = S.read_u64 ~hint:`Hot t.s (t.header + off_head) in
        if head = 0L then begin
          S.op_end t.s ~ds;
          None
        end
        else begin
          let node = Int64.to_int head in
          let meta = S.read ~hint:`Hot t.s ~addr:node ~len:node_meta in
          let next = Bytes.get_int64_le meta 0 in
          let len = Int32.to_int (Bytes.get_int32_le meta 8) in
          let value = S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len in
          S.write_u64 t.s ~ds (t.header + off_head) next;
          if next = 0L then S.write_u64 t.s ~ds (t.header + off_tail) 0L;
          let count = S.read_u64 ~hint:`Hot t.s (t.header + off_count) in
          S.write_u64 t.s ~ds (t.header + off_count) (Int64.sub count 1L);
          S.op_end t.s ~ds;
          S.free t.s node ~len:(node_meta + len);
          Some value
        end)

  let peek t =
    let read () =
      let head = S.read_u64 ~hint:`Hot t.s (t.header + off_head) in
      if head = 0L then None
      else begin
        let node = Int64.to_int head in
        let meta = S.read ~hint:`Hot t.s ~addr:node ~len:node_meta in
        let len = Int32.to_int (Bytes.get_int32_le meta 8) in
        Some (S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len)
      end
    in
    if t.opts.Ds_intf.shared then S.read_section t.s t.h read else read ()

  let size t = Int64.to_int (S.read_u64 ~hint:`Hot t.s (t.header + off_count))

  let to_list t =
    let rec walk acc ptr =
      if ptr = 0L then List.rev acc
      else begin
        let node = Int64.to_int ptr in
        let meta = S.read ~hint:`Hot t.s ~addr:node ~len:node_meta in
        let next = Bytes.get_int64_le meta 0 in
        let len = Int32.to_int (Bytes.get_int32_le meta 8) in
        let v = S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len in
        walk (v :: acc) next
      end
    in
    walk [] (S.read_u64 ~hint:`Hot t.s (t.header + off_head))

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_enqueue -> enqueue t op.Log.Op_entry.params
    | x when x = op_dequeue -> ignore (dequeue t)
    | 0 -> ()
    | other -> Fmt.invalid_arg "Pqueue.replay: unknown optype %d" other
end
