(** Operation-log parameter encodings shared by the key/value structures:
    a bare key, a key/value pair, and the sorted key/value vector used by
    the §8.3 vector operations. *)

val of_key : int64 -> bytes
val to_key : bytes -> int64
val of_kv : int64 -> bytes -> bytes
val to_kv : bytes -> int64 * bytes
val of_kvs : (int64 * bytes) list -> bytes
val to_kvs : bytes -> (int64 * bytes) list
