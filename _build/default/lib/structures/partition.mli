(** Key-hash partitioning (§8.3).

    Wraps N independent instances of any structure: each partition has its
    own writer lock and index, so a writer in one partition never blocks
    readers of the others, and partitions placed on different back-ends
    spread the NIC load (Figure 10). The partition count is persisted in
    the global naming space so recovery routes keys identically. *)

module Make (S : Asym_core.Store.S) : sig
  type 'ds t

  val hash : int64 -> int -> int
  (** [hash key n] is the partition index of [key] among [n] partitions —
      exposed so external routers (multi-back-end deployments with one
      client per back-end) agree with {!route}. *)

  val create : S.t -> name:string -> n:int -> attach:(int -> 'ds) -> 'ds t
  (** Build or open the partition map on [map_store], then attach every
      underlying instance. An existing map's partition count overrides
      [n]. *)

  val npartitions : 'ds t -> int
  val route : 'ds t -> int64 -> 'ds
  val part : 'ds t -> int -> 'ds
  val iter_parts : 'ds t -> ('ds -> unit) -> unit
end
