(** Recovery dispatch: maps a data-structure id to its replay function.

    After a front-end crash, {!Asym_core.Client.recover} returns the
    operation-log records whose memory logs never became durable; the
    application replays them through the owning structure (§7.2). *)

open Asym_core

type t = (Types.ds_id, Log.Op_entry.t -> unit) Hashtbl.t

let create () : t = Hashtbl.create 8
let register t ~ds f = Hashtbl.replace t ds f

let replay_all t ops =
  List.iter
    (fun (op : Log.Op_entry.t) ->
      match Hashtbl.find_opt t op.Log.Op_entry.ds with
      | Some f -> f op
      | None ->
          Fmt.invalid_arg "Registry.replay_all: no replay function for ds %d"
            op.Log.Op_entry.ds)
    ops
