(** Conventions shared by the persistent data structures (§8).

    Every structure is a functor over {!Asym_core.Store.S}, so the same
    implementation runs on the AsymNVM front-end and on the symmetric
    baseline. Keys are [int64]; values are byte strings.

    Operation-type codes are per-structure and live in each module; codes
    0 (initialization) and >= 250 (framework lock records) are reserved.

    Recovery: every structure exposes [replay] which re-executes one
    operation-log record (§7.2 Cases 2.b/2.c). Re-execution runs the
    normal operation path, producing fresh logs. *)

type key = int64

(** Creation-time options common to the structures. *)
type options = {
  shared : bool;
      (** multiple front-ends access the structure: writers must flush
          before unlocking, readers must validate optimistically *)
  use_lock : bool;
      (** take the exclusive writer lock around every mutation (§6.1) —
          the lock-based structures of the paper's evaluation *)
}

let default_options = { shared = false; use_lock = false }
let locked_options = { shared = false; use_lock = true }
let shared_options = { shared = true; use_lock = true }
