(** Lazy NVM reclamation for the multi-version structures (§6.2).

    After a version switch the superseded nodes may still be under
    traversal by a reader that started earlier, so frees are deferred by
    [n + l] microseconds of virtual time (the paper fixes n/l at
    4000/1000 µs); every read is required to complete within n µs. *)

val default_n_us : int
val default_l_us : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val create : ?n_us:int -> ?l_us:int -> S.t -> t
  val defer : t -> Asym_core.Types.addr -> len:int -> unit

  val pump : t -> unit
  (** Free everything whose grace period expired; called by the
      multi-version structures at operation boundaries. *)

  val drain : t -> unit
  (** Free everything immediately (teardown/tests only). *)

  val pending : t -> int
end
