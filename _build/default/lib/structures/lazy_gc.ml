(** Lazy NVM reclamation for the multi-version structures (§6.2).

    After a version switch the writer may not free the superseded nodes
    immediately: a reader that started before the switch may still be
    traversing them. Frees are deferred by [n + l] microseconds of virtual
    time (the paper fixes n/l at 4000/1000 µs after a tuning pre-run); any
    pending read is required to finish within n µs. *)

open Asym_core

let default_n_us = 4000
let default_l_us = 1000

module Make (S : Store.S) = struct
  type t = {
    s : S.t;
    delay : Asym_sim.Simtime.t;
    q : (Asym_sim.Simtime.t * Types.addr * int) Queue.t;
  }

  let create ?(n_us = default_n_us) ?(l_us = default_l_us) s =
    { s; delay = Asym_sim.Simtime.us (n_us + l_us); q = Queue.create () }

  let defer t addr ~len =
    Queue.push (Asym_sim.Clock.now (S.clock t.s) + t.delay, addr, len) t.q

  (* Release everything whose grace period expired. Called at operation
     boundaries by the multi-version structures. *)
  let pump t =
    let now = Asym_sim.Clock.now (S.clock t.s) in
    let continue_ = ref true in
    while !continue_ do
      match Queue.peek_opt t.q with
      | Some (due, addr, len) when due <= now ->
          ignore (Queue.pop t.q);
          S.free t.s addr ~len
      | _ -> continue_ := false
    done

  let drain t =
    Queue.iter (fun (_, addr, len) -> S.free t.s addr ~len) t.q;
    Queue.clear t.q

  let pending t = Queue.length t.q
end
