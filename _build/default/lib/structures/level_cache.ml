(** Adaptive level-based caching policy for tree-like structures (§8.3).

    Nodes above threshold level [n] (counting from the root, depth 0) are
    read through the front-end cache; deeper nodes bypass it. Every
    [period] operations the front-end cache's miss ratio α over the window
    decides the adjustment: α > 50% shrinks the cached region, α < 25%
    grows it — the paper's exact rule. *)

type t = {
  mutable n : int;
  max_depth : int;
  period : int;
  mutable ops : int;
  mutable last_hits : int;
  mutable last_misses : int;
}

let create ?(initial = 6) ?(period = 64) ~max_depth () =
  { n = initial; max_depth; period; ops = 0; last_hits = 0; last_misses = 0 }

let threshold t = t.n

let hint t ~depth : [ `Hot | `Cold ] = if depth <= t.n then `Hot else `Cold

(* [stats] are the cumulative (hits, misses) of the front-end cache. *)
let note_op t ~stats:(hits, misses) =
  t.ops <- t.ops + 1;
  if t.ops mod t.period = 0 then begin
    let dh = hits - t.last_hits and dm = misses - t.last_misses in
    t.last_hits <- hits;
    t.last_misses <- misses;
    let total = dh + dm in
    if total > 0 then begin
      let alpha = float_of_int dm /. float_of_int total in
      if alpha > 0.5 && t.n > 1 then t.n <- t.n - 1
      else if alpha < 0.25 && t.n < t.max_depth then t.n <- t.n + 1
    end
  end
