(** Persistent skiplist (§8.4 — the paper's running example, Figure 2).

    Probabilistic multi-level list anchored by a max-level head sentinel;
    values live in out-of-line blobs so updates never change node
    geometry. Writers populate a new node's successors before swinging the
    predecessors bottom-up and unlink top-down, so a reader walking the
    list always observes a consistent view. Reads above [hot_level] go
    through the front-end cache (taller nodes are visited exponentially
    more often); level-0 reads bypass it. *)

val op_put : int
val op_delete : int

val max_level : int
(** Tower height bound (16, with p = 0.5 as in the paper's setup). *)

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach :
    ?opts:Ds_intf.options ->
    ?rng:Asym_util.Rng.t ->
    ?hot_level:int ->
    S.t ->
    name:string ->
    t

  val handle : t -> Asym_core.Types.handle
  val put : t -> key:int64 -> value:bytes -> unit
  val find : t -> key:int64 -> bytes option
  val mem : t -> key:int64 -> bool
  val delete : t -> key:int64 -> bool

  val range : t -> lo:int64 -> hi:int64 -> (int64 * bytes) list
  (** Inclusive range scan along level 0. *)

  val to_list : t -> (int64 * bytes) list
  (** Ascending key order. *)

  val replay : t -> Asym_core.Log.Op_entry.t -> unit
end
