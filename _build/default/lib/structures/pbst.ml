(** Persistent binary search tree (lock-based, §8.3).

    Node layout (32 bytes): [[left][right][key][valptr]] with values in
    out-of-line blobs. The root word holds the root node address. Nodes
    near the root are read through the cache; the depth threshold adapts
    to the observed miss ratio ({!Level_cache}). Mutations run under the
    exclusive writer lock when the structure is configured lock-based. *)

open Asym_core

let op_put = 1
let op_delete = 2
let op_vinsert = 3

module Make (S : Store.S) = struct
  module B = Blob.Make (S)

  type t = {
    s : S.t;
    h : Types.handle;
    lc : Level_cache.t;
    opts : Ds_intf.options;
  }

  let node_size = 32
  let off_left = 0
  let off_right = 8
  let off_key = 16
  let off_valptr = 24

  let attach ?(opts = Ds_intf.locked_options) ?(cache_all_levels = false) s ~name =
    let h = S.register_ds s name in
    let lc =
      (* [cache_all_levels] reproduces the "native LRU" baseline of §8.3:
         every node goes through the cache, no level threshold. *)
      if cache_all_levels then Level_cache.create ~initial:48 ~period:max_int ~max_depth:48 ()
      else Level_cache.create ~max_depth:48 ()
    in
    { s; h; lc; opts }

  let handle t = t.h

  let locked t f =
    if t.opts.Ds_intf.use_lock then begin
      S.writer_lock t.s t.h;
      Fun.protect ~finally:(fun () -> S.writer_unlock t.s t.h) f
    end
    else f ()

  let read_node t ~depth addr = S.read ~hint:(Level_cache.hint t.lc ~depth) t.s ~addr ~len:node_size

  let make_node t ~ds ~key ~valptr ~left ~right =
    let addr = S.malloc t.s node_size in
    let b = Bytes.create node_size in
    Bytes.set_int64_le b off_left (Int64.of_int left);
    Bytes.set_int64_le b off_right (Int64.of_int right);
    Bytes.set_int64_le b off_key key;
    Bytes.set_int64_le b off_valptr (Int64.of_int valptr);
    S.write t.s ~ds ~addr b;
    addr

  (* Descend to [key]. Returns [`Found (link, node, depth)] or
     [`Missing (link, depth)] where [link] is the pointer word to update. *)
  let locate t key =
    let rec go link depth =
      let node = S.read_u64 ~hint:(Level_cache.hint t.lc ~depth) t.s link in
      if node = 0L then `Missing (link, depth)
      else begin
        let node = Int64.to_int node in
        let b = read_node t ~depth node in
        let k = Bytes.get_int64_le b off_key in
        if key = k then `Found (link, node, depth)
        else if key < k then go (node + off_left) (depth + 1)
        else go (node + off_right) (depth + 1)
      end
    in
    go t.h.Types.root 0

  let put_nolog t key value =
    let ds = t.h.Types.id in
    (match locate t key with
    | `Missing (link, _) ->
        let valptr = B.alloc t.s ~ds value in
        let node = make_node t ~ds ~key ~valptr ~left:0 ~right:0 in
        S.write_u64 t.s ~ds link (Int64.of_int node)
    | `Found (_, node, depth) ->
        let b = read_node t ~depth node in
        let old_blob = Int64.to_int (Bytes.get_int64_le b off_valptr) in
        let valptr = B.alloc t.s ~ds value in
        S.write_u64 t.s ~ds (node + off_valptr) (Int64.of_int valptr);
        B.free t.s old_blob);
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s)

  let put t ~key ~value =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_put ~params:(Params.of_kv key value));
        put_nolog t key value;
        S.op_end t.s ~ds)

  let find t ~key =
    let read () =
      match locate t key with
      | `Missing _ -> None
      | `Found (_, node, depth) ->
          let b = read_node t ~depth node in
          let blob = Int64.to_int (Bytes.get_int64_le b off_valptr) in
          Some (B.read t.s blob)
    in
    let v = if t.opts.Ds_intf.shared then S.read_section t.s t.h read else read () in
    Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
    v

  let mem t ~key = match find t ~key with Some _ -> true | None -> false

  (* Find the minimum node of the subtree at [*link], returning its link. *)
  let rec min_link t link depth =
    let node = Int64.to_int (S.read_u64 ~hint:(Level_cache.hint t.lc ~depth) t.s link) in
    let left = S.read_u64 ~hint:(Level_cache.hint t.lc ~depth) t.s (node + off_left) in
    if left = 0L then (link, node) else min_link t (node + off_left) (depth + 1)

  let delete t ~key =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_delete ~params:(Params.of_key key));
        let result =
          match locate t key with
          | `Missing _ -> false
          | `Found (link, node, depth) ->
              let b = read_node t ~depth node in
              let left = Int64.to_int (Bytes.get_int64_le b off_left) in
              let right = Int64.to_int (Bytes.get_int64_le b off_right) in
              let blob = Int64.to_int (Bytes.get_int64_le b off_valptr) in
              (if left = 0 then S.write_u64 t.s ~ds link (Int64.of_int right)
               else if right = 0 then S.write_u64 t.s ~ds link (Int64.of_int left)
               else begin
                 (* Two children: splice the successor node into our place. *)
                 let succ_link, succ = min_link t (node + off_right) (depth + 1) in
                 let succ_right = S.read_u64 ~hint:`Hot t.s (succ + off_right) in
                 (* Detach the successor (it has no left child). *)
                 S.write_u64 t.s ~ds succ_link succ_right;
                 (* The successor takes over our children and our slot. Its
                    right child must be re-read: it may have been [succ]'s
                    detachment target when right = succ. *)
                 let new_right = S.read_u64 ~hint:`Hot t.s (node + off_right) in
                 S.write_u64 t.s ~ds (succ + off_left) (Int64.of_int left);
                 S.write_u64 t.s ~ds (succ + off_right) new_right;
                 S.write_u64 t.s ~ds link (Int64.of_int succ)
               end);
              S.free t.s node ~len:node_size;
              B.free t.s blob;
              true
        in
        S.op_end t.s ~ds;
        Level_cache.note_op t.lc ~stats:(S.cache_stats t.s);
        result)

  (* Vector write (Algorithm 3): one lock acquisition and one operation
     log record for a sorted batch of inserts; sorted order makes upper
     tree nodes hit the cache across consecutive keys. *)
  let insert_vector t pairs =
    let pairs = List.sort (fun (a, _) (b, _) -> Int64.compare a b) pairs in
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_vinsert ~params:(Params.of_kvs pairs));
        List.iter (fun (key, value) -> put_nolog t key value) pairs;
        S.op_end t.s ~ds)

  let fold t f init =
    let rec go acc ptr =
      if ptr = 0L then acc
      else begin
        let node = Int64.to_int ptr in
        let b = S.read ~hint:`Hot t.s ~addr:node ~len:node_size in
        let acc = go acc (Bytes.get_int64_le b off_left) in
        let blob = Int64.to_int (Bytes.get_int64_le b off_valptr) in
        let acc = f acc (Bytes.get_int64_le b off_key) (B.read t.s blob) in
        go acc (Bytes.get_int64_le b off_right)
      end
    in
    go init (S.read_u64 ~hint:`Hot t.s t.h.Types.root)

  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  (* Inclusive range scan, pruning subtrees outside [lo, hi]. *)
  let range t ~lo ~hi =
    let rec go acc ptr =
      if ptr = 0L then acc
      else begin
        let node = Int64.to_int ptr in
        let b = S.read ~hint:`Hot t.s ~addr:node ~len:node_size in
        let key = Bytes.get_int64_le b off_key in
        let acc = if key > lo then go acc (Bytes.get_int64_le b off_left) else acc in
        let acc =
          if key >= lo && key <= hi then begin
            let blob = Int64.to_int (Bytes.get_int64_le b off_valptr) in
            (key, B.read t.s blob) :: acc
          end
          else acc
        in
        if key < hi then go acc (Bytes.get_int64_le b off_right) else acc
      end
    in
    List.rev (go [] (S.read_u64 ~hint:`Hot t.s t.h.Types.root))

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_put ->
        let key, value = Params.to_kv op.Log.Op_entry.params in
        put t ~key ~value
    | x when x = op_delete -> ignore (delete t ~key:(Params.to_key op.Log.Op_entry.params))
    | x when x = op_vinsert -> insert_vector t (Params.to_kvs op.Log.Op_entry.params)
    | 0 -> ()
    | other -> Fmt.invalid_arg "Pbst.replay: unknown optype %d" other
end
