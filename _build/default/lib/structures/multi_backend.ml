(** One front-end node operating a structure spread over several back-end
    NVM blades (§4.3: "To support a data structure larger than the
    capacity of the NVM in a single back-end node, AsymNVM supports a
    distributed data structure partitioning across multiple back-ends").

    The front-end opens one connection (one {!Asym_core.Client}) per
    back-end, all sharing its clock; keys route by hash exactly as
    {!Partition}; the partition count is persisted in back-end 0's naming
    space so recovery and other front-ends route identically. *)

open Asym_core

type 'ds t = {
  clients : Client.t array;
  parts : 'ds array;
  name : string;
}

let hash key n =
  let z = Int64.mul (Int64.logxor key (Int64.shift_right_logical key 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int n))

let create ?(cfg = Client.rcb ()) ?(name = "mb") ~clock ~backends ~attach () =
  let backends = Array.of_list backends in
  let n = Array.length backends in
  if n = 0 then invalid_arg "Multi_backend.create: no back-ends";
  let clients =
    Array.mapi
      (fun _i bk ->
        Client.connect ~name:(Printf.sprintf "%s->%s" name (Backend.name bk)) cfg bk ~clock)
      backends
  in
  (* Persist (or read back) the partition count on back-end 0. *)
  let h = Client.register_ds clients.(0) (name ^ "!pmap") in
  let persisted = Client.read_u64 ~hint:`Hot clients.(0) h.Types.root in
  let n =
    if persisted = 0L then begin
      Client.write_u64 clients.(0) ~ds:h.Types.id h.Types.root (Int64.of_int n);
      Client.flush clients.(0);
      n
    end
    else begin
      let p = Int64.to_int persisted in
      if p > n then
        invalid_arg
          (Printf.sprintf "Multi_backend.create: map says %d partitions, only %d back-ends" p n);
      p
    end
  in
  let parts = Array.init n (fun i -> attach clients.(i) i) in
  { clients; parts; name }

let npartitions t = Array.length t.parts
let route t key = t.parts.(hash key (Array.length t.parts))
let part t i = t.parts.(i)
let client t i = t.clients.(i)
let iter_parts t f = Array.iteri f t.parts

let flush_all t = Array.iter Client.flush t.clients

(* Crash every connection's volatile state and recover each partition,
   handing the uncovered operations of partition [i] to [replay i]. *)
let crash t = Array.iter Client.crash t.clients

let recover t ~replay =
  Array.iteri
    (fun i c ->
      let ops = Client.recover c in
      replay i ops)
    t.clients
