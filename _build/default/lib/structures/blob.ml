(** Out-of-line value storage.

    The ordered structures keep an 8-byte pointer to a value blob
    ([len: u32][bytes]) instead of inlining the value, so updating a value
    never changes node geometry: allocate a new blob, swing the pointer,
    release the old blob. *)

open Asym_core

module Make (S : Store.S) = struct
  let alloc s ~ds value =
    let len = Bytes.length value in
    let addr = S.malloc s (4 + len) in
    let b = Bytes.create (4 + len) in
    Bytes.set_int32_le b 0 (Int32.of_int len);
    Bytes.blit value 0 b 4 len;
    S.write s ~ds ~addr b;
    addr

  let read ?(hint = `Hot) s addr =
    let len = Int32.to_int (Bytes.get_int32_le (S.read ~hint s ~addr ~len:4) 0) in
    S.read ~hint s ~addr:(addr + 4) ~len

  let size ?(hint = `Hot) s addr =
    4 + Int32.to_int (Bytes.get_int32_le (S.read ~hint s ~addr ~len:4) 0)

  let free s addr =
    let total = size s addr in
    S.free s addr ~len:total
end
