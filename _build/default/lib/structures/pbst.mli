(** Persistent binary search tree (lock-based, §8.3).

    Unbalanced BST with fixed 32-byte nodes and out-of-line value blobs.
    Deletion splices the in-order successor (pointer surgery only, no
    payload copying). Node reads near the root go through the front-end
    cache; the depth threshold adapts to the observed miss ratio exactly
    as §8.3 prescribes. Sorted vector writes (Algorithm 3) amortize the
    writer lock and make consecutive keys share cached upper levels. *)

val op_put : int
val op_delete : int
val op_vinsert : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach : ?opts:Ds_intf.options -> ?cache_all_levels:bool -> S.t -> name:string -> t
  (** [cache_all_levels] disables the level threshold — the "native LRU"
      baseline the paper compares against. *)

  val handle : t -> Asym_core.Types.handle
  val put : t -> key:int64 -> value:bytes -> unit
  val find : t -> key:int64 -> bytes option
  val mem : t -> key:int64 -> bool
  val delete : t -> key:int64 -> bool

  val insert_vector : t -> (int64 * bytes) list -> unit
  (** Algorithm 3: sort the batch, take the writer lock once, log one
      vector operation, apply every insert. *)

  val fold : t -> ('a -> int64 -> bytes -> 'a) -> 'a -> 'a
  (** In-order fold. *)

  val to_list : t -> (int64 * bytes) list

  val range : t -> lo:int64 -> hi:int64 -> (int64 * bytes) list
  (** Inclusive range scan, pruning subtrees outside the bounds. *)

  val replay : t -> Asym_core.Log.Op_entry.t -> unit
end
