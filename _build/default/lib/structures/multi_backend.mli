(** One front-end node operating a structure spread over several back-end
    NVM blades (§4.3 / §8.3 / Figure 10).

    The front-end keeps one connection per back-end (all on its clock);
    keys route by the same hash {!Partition} uses; the partition count is
    persisted on back-end 0's naming space. Each partition is an
    independent instance with its own lock and index, so the usual SWMR
    rules apply per partition. *)

type 'ds t

val hash : int64 -> int -> int

val create :
  ?cfg:Asym_core.Client.config ->
  ?name:string ->
  clock:Asym_sim.Clock.t ->
  backends:Asym_core.Backend.t list ->
  attach:(Asym_core.Client.t -> int -> 'ds) ->
  unit ->
  'ds t
(** [attach client i] builds or opens partition [i] on [client]. Opening
    an existing deployment with fewer back-ends than the persisted
    partition count raises [Invalid_argument]. *)

val npartitions : 'ds t -> int
val route : 'ds t -> int64 -> 'ds
val part : 'ds t -> int -> 'ds
val client : 'ds t -> int -> Asym_core.Client.t
val iter_parts : 'ds t -> (int -> 'ds -> unit) -> unit

val flush_all : 'ds t -> unit
(** [rnvm_tx_write] on every connection. *)

val crash : 'ds t -> unit
(** Drop the front-end's volatile state on every connection. *)

val recover : 'ds t -> replay:(int -> Asym_core.Log.Op_entry.t list -> unit) -> unit
(** Recover every session; [replay i ops] re-executes partition [i]'s
    uncovered operations (§7.2). *)
