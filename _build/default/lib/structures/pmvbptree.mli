(** Multi-version (copy-on-write) B+Tree — the append-only B-Tree of §6.2.

    Same geometry as {!Pbptree} but immutable nodes: inserts path-copy
    leaf-to-root (including splits) and install the version with a root
    CAS. Leaf chaining is dropped (a chained leaf would need in-place
    updates); in-order traversal goes through the tree. *)

val op_put : int
val op_delete : int
val fanout : int
val max_keys : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach : ?opts:Ds_intf.options -> S.t -> name:string -> t
  val handle : t -> Asym_core.Types.handle
  val put : t -> key:int64 -> value:bytes -> unit
  val find : t -> key:int64 -> bytes option
  val mem : t -> key:int64 -> bool
  val delete : t -> key:int64 -> bool
  val fold : t -> ('a -> int64 -> bytes -> 'a) -> 'a -> 'a
  val to_list : t -> (int64 * bytes) list
  val gc_pending : t -> int
  val gc_drain : t -> unit
  val replay : t -> Asym_core.Log.Op_entry.t -> unit
end
