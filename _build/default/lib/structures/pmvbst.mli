(** Multi-version binary search tree (lock-free, §6.2 / Figure 5).

    Immutable 32-byte nodes; every mutation path-copies from the touched
    node up to the root and publishes the new version with a single
    compare-and-swap of the root word. Readers never lock, never retry,
    and always see a complete version. Superseded nodes wait out the §6.2
    grace period in the lazy GC before their NVM is reclaimed. *)

val op_put : int
val op_delete : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach : ?opts:Ds_intf.options -> S.t -> name:string -> t
  val handle : t -> Asym_core.Types.handle
  val put : t -> key:int64 -> value:bytes -> unit
  val find : t -> key:int64 -> bytes option
  val mem : t -> key:int64 -> bool
  val delete : t -> key:int64 -> bool
  val fold : t -> ('a -> int64 -> bytes -> 'a) -> 'a -> 'a
  val to_list : t -> (int64 * bytes) list

  val gc_pending : t -> int
  (** Superseded allocations still inside their grace period. *)

  val gc_drain : t -> unit
  (** Reclaim everything immediately (teardown/tests only — unsafe while
      concurrent readers may hold old versions). *)

  val replay : t -> Asym_core.Log.Op_entry.t -> unit
end
