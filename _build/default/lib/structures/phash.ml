(** Persistent chained hash table (§8.2).

    Layout: the root word points at a header [{nbuckets; count; buckets_ptr}];
    the bucket array is one contiguous allocation of [nbuckets] pointer
    words; chain nodes are [[next][key][len][pad][value bytes]]. Key/value
    items are the caching granularity; batching brings the structure no
    benefit (the paper disables it for O(1) structures), so callers
    typically run it under the RC configuration. *)

open Asym_core

let op_put = 1
let op_delete = 2

module Make (S : Store.S) = struct
  type t = {
    s : S.t;
    h : Types.handle;
    header : Types.addr;
    nbuckets : int;
    buckets : Types.addr;
    opts : Ds_intf.options;
  }

  let node_meta = 24
  let off_next = 0
  let off_key = 8
  let off_len = 16

  (* splitmix-style finalizer as the bucket hash *)
  let hash key nbuckets =
    let z = Int64.mul (Int64.logxor key (Int64.shift_right_logical key 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int nbuckets))

  let attach ?(opts = Ds_intf.default_options) ?(nbuckets = 4096) s ~name =
    let h = S.register_ds s name in
    let header = S.read_u64 ~hint:`Hot s h.Types.root in
    if header = 0L then begin
      let header = S.malloc s 24 in
      let buckets = S.malloc s (nbuckets * 8) in
      S.write s ~ds:h.Types.id ~addr:buckets (Bytes.make (nbuckets * 8) '\000');
      let b = Bytes.create 24 in
      Bytes.set_int64_le b 0 (Int64.of_int nbuckets);
      Bytes.set_int64_le b 8 0L;
      Bytes.set_int64_le b 16 (Int64.of_int buckets);
      S.write s ~ds:h.Types.id ~addr:header b;
      S.write_u64 s ~ds:h.Types.id h.Types.root (Int64.of_int header);
      S.flush s;
      { s; h; header; nbuckets; buckets; opts }
    end
    else begin
      let header = Int64.to_int header in
      let b = S.read ~hint:`Hot s ~addr:header ~len:24 in
      let nbuckets = Int64.to_int (Bytes.get_int64_le b 0) in
      let buckets = Int64.to_int (Bytes.get_int64_le b 16) in
      { s; h; header; nbuckets; buckets; opts }
    end

  let handle t = t.h
  let bucket_addr t key = t.buckets + (8 * hash key t.nbuckets)

  let locked t f =
    if t.opts.Ds_intf.use_lock then begin
      S.writer_lock t.s t.h;
      Fun.protect ~finally:(fun () -> S.writer_unlock t.s t.h) f
    end
    else f ()

  (* Walk the chain of [key]'s bucket. Returns the address of the pointer
     word referencing the matching node (the bucket word or a node's next
     field) together with the node address, or [None]. *)
  let find_slot t key =
    let rec walk link_addr =
      let node = S.read_u64 ~hint:`Hot t.s link_addr in
      if node = 0L then None
      else begin
        let node = Int64.to_int node in
        let k = S.read_u64 ~hint:`Hot t.s (node + off_key) in
        if k = key then Some (link_addr, node) else walk (node + off_next)
      end
    in
    walk (bucket_addr t key)

  let node_len t node =
    Int64.to_int (S.read_u64 ~hint:`Hot t.s (node + off_len))

  let adjust_count t ~ds delta =
    let c = S.read_u64 ~hint:`Hot t.s (t.header + 8) in
    S.write_u64 t.s ~ds (t.header + 8) (Int64.add c (Int64.of_int delta))

  let put t ~key ~value =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_put ~params:(Params.of_kv key value));
        let len = Bytes.length value in
        let make_node next =
          let node = S.malloc t.s (node_meta + len) in
          let b = Bytes.create (node_meta + len) in
          Bytes.set_int64_le b off_next next;
          Bytes.set_int64_le b off_key key;
          Bytes.set_int64_le b off_len (Int64.of_int len);
          Bytes.blit value 0 b node_meta len;
          S.write t.s ~ds ~addr:node b;
          node
        in
        (match find_slot t key with
        | Some (link_addr, old_node) ->
            (* Replace: new node takes over the old node's successor. *)
            let next = S.read_u64 ~hint:`Hot t.s (old_node + off_next) in
            let old_len = node_len t old_node in
            let node = make_node next in
            S.write_u64 t.s ~ds link_addr (Int64.of_int node);
            S.op_end t.s ~ds;
            S.free t.s old_node ~len:(node_meta + old_len)
        | None ->
            let bucket = bucket_addr t key in
            let head = S.read_u64 ~hint:`Hot t.s bucket in
            let node = make_node head in
            S.write_u64 t.s ~ds bucket (Int64.of_int node);
            adjust_count t ~ds 1;
            S.op_end t.s ~ds))

  let get t ~key =
    let read () =
      match find_slot t key with
      | None -> None
      | Some (_, node) ->
          let len = node_len t node in
          Some (S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len)
    in
    if t.opts.Ds_intf.shared then S.read_section t.s t.h read else read ()

  let delete t ~key =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_delete ~params:(Params.of_key key));
        match find_slot t key with
        | None ->
            S.op_end t.s ~ds;
            false
        | Some (link_addr, node) ->
            let next = S.read_u64 ~hint:`Hot t.s (node + off_next) in
            let len = node_len t node in
            S.write_u64 t.s ~ds link_addr next;
            adjust_count t ~ds (-1);
            S.op_end t.s ~ds;
            S.free t.s node ~len:(node_meta + len);
            true)

  let mem t ~key = match get t ~key with Some _ -> true | None -> false
  let size t = Int64.to_int (S.read_u64 ~hint:`Hot t.s (t.header + 8))

  let iter t f =
    for i = 0 to t.nbuckets - 1 do
      let rec walk ptr =
        if ptr <> 0L then begin
          let node = Int64.to_int ptr in
          let next = S.read_u64 ~hint:`Hot t.s (node + off_next) in
          let key = S.read_u64 ~hint:`Hot t.s (node + off_key) in
          let len = node_len t node in
          f key (S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len);
          walk next
        end
      in
      walk (S.read_u64 ~hint:`Hot t.s (t.buckets + (8 * i)))
    done

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_put ->
        let key, value = Params.to_kv op.Log.Op_entry.params in
        put t ~key ~value
    | x when x = op_delete -> ignore (delete t ~key:(Params.to_key op.Log.Op_entry.params))
    | 0 -> ()
    | other -> Fmt.invalid_arg "Phash.replay: unknown optype %d" other
end
