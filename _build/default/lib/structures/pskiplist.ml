(** Persistent skiplist (§8.4, and the paper's running example, Figure 2).

    Node layout: [[key: u64][level: u32][pad: u32][valptr: u64][next_0 ..
    next_{level-1}]] with out-of-line value blobs. A head sentinel with
    the maximum level anchors the lists. Writers first populate the new
    node's successor pointers, then swing the predecessors bottom-up, so
    readers always observe a consistent list. Taller nodes are visited
    exponentially more often, so reads performed while traversing high
    levels go through the cache and low levels bypass it. *)

open Asym_core

let op_put = 1
let op_delete = 2
let max_level = 16

module Make (S : Store.S) = struct
  module B = Blob.Make (S)

  type t = {
    s : S.t;
    h : Types.handle;
    head : Types.addr;
    rng : Asym_util.Rng.t;
    hot_level : int;
    opts : Ds_intf.options;
  }

  let off_key = 0
  let off_level = 8
  let off_valptr = 16
  let next_off i = 24 + (8 * i)
  let node_size level = 24 + (8 * level)

  let write_new_node t ~ds ~key ~valptr ~level ~nexts =
    let addr = S.malloc t.s (node_size level) in
    let b = Bytes.create (node_size level) in
    Bytes.set_int64_le b off_key key;
    Bytes.set_int32_le b off_level (Int32.of_int level);
    Bytes.set_int32_le b 12 0l;
    Bytes.set_int64_le b off_valptr (Int64.of_int valptr);
    Array.iteri (fun i nxt -> Bytes.set_int64_le b (next_off i) nxt) nexts;
    S.write t.s ~ds ~addr b;
    addr

  let attach ?(opts = Ds_intf.locked_options) ?(rng = Asym_util.Rng.create ~seed:4242L)
      ?(hot_level = 1) s ~name =
    let h = S.register_ds s name in
    let head = S.read_u64 ~hint:`Hot s h.Types.root in
    if head = 0L then begin
      let t = { s; h; head = 0; rng; hot_level; opts } in
      let head =
        write_new_node t ~ds:h.Types.id ~key:Int64.min_int ~valptr:0 ~level:max_level
          ~nexts:(Array.make max_level 0L)
      in
      S.write_u64 s ~ds:h.Types.id h.Types.root (Int64.of_int head);
      S.flush s;
      { t with head }
    end
    else { s; h; head = Int64.to_int head; rng; hot_level; opts }

  let handle t = t.h

  let locked t f =
    if t.opts.Ds_intf.use_lock then begin
      S.writer_lock t.s t.h;
      Fun.protect ~finally:(fun () -> S.writer_unlock t.s t.h) f
    end
    else f ()

  let random_level t =
    let rec go l = if l < max_level && Asym_util.Rng.bool t.rng then go (l + 1) else l in
    go 1

  let hint t lvl : [ `Hot | `Cold ] = if lvl >= t.hot_level then `Hot else `Cold

  let node_key t ~lvl addr = S.read_u64 ~hint:(hint t lvl) t.s (addr + off_key)
  let node_next t ~lvl addr = S.read_u64 ~hint:(hint t lvl) t.s (addr + next_off lvl)

  (* Find predecessors at every level; preds.(l) is the last node with
     key < [key] at level l (Figure 2's traversal). *)
  let find_preds t key =
    let preds = Array.make max_level t.head in
    let cur = ref t.head in
    for lvl = max_level - 1 downto 0 do
      let continue_ = ref true in
      while !continue_ do
        let nxt = node_next t ~lvl !cur in
        if nxt = 0L then continue_ := false
        else begin
          let nk = node_key t ~lvl (Int64.to_int nxt) in
          if nk < key then cur := Int64.to_int nxt else continue_ := false
        end
      done;
      preds.(lvl) <- !cur
    done;
    preds

  let lookup_node t key =
    let preds = find_preds t key in
    let cand = node_next t ~lvl:0 preds.(0) in
    if cand = 0L then (preds, None)
    else
      let cand = Int64.to_int cand in
      if node_key t ~lvl:0 cand = key then (preds, Some cand) else (preds, None)

  let put t ~key ~value =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_put ~params:(Params.of_kv key value));
        (match lookup_node t key with
        | _, Some node ->
            let old_blob = Int64.to_int (S.read_u64 ~hint:`Hot t.s (node + off_valptr)) in
            let valptr = B.alloc t.s ~ds value in
            S.write_u64 t.s ~ds (node + off_valptr) (Int64.of_int valptr);
            B.free t.s old_blob
        | preds, None ->
            let level = random_level t in
            let valptr = B.alloc t.s ~ds value in
            (* 1. the new node's successors; 2. swing predecessors bottom-up *)
            let nexts =
              Array.init level (fun lvl -> node_next t ~lvl preds.(lvl))
            in
            let node = write_new_node t ~ds ~key ~valptr ~level ~nexts in
            for lvl = 0 to level - 1 do
              S.write_u64 t.s ~ds (preds.(lvl) + next_off lvl) (Int64.of_int node)
            done);
        S.op_end t.s ~ds)

  let find t ~key =
    let read () =
      match lookup_node t key with
      | _, None -> None
      | _, Some node ->
          let blob = Int64.to_int (S.read_u64 ~hint:`Hot t.s (node + off_valptr)) in
          Some (B.read t.s blob)
    in
    if t.opts.Ds_intf.shared then S.read_section t.s t.h read else read ()

  let mem t ~key = match find t ~key with Some _ -> true | None -> false

  let delete t ~key =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_delete ~params:(Params.of_key key));
        let result =
          match lookup_node t key with
          | _, None -> false
          | preds, Some node ->
              let level = Int32.to_int (Bytes.get_int32_le (S.read ~hint:`Hot t.s ~addr:(node + off_level) ~len:4) 0) in
              (* Unlink top-down so partially deleted nodes stay reachable
                 at lower levels for concurrent readers. *)
              for lvl = level - 1 downto 0 do
                S.write_u64 t.s ~ds (preds.(lvl) + next_off lvl) (node_next t ~lvl node)
              done;
              let blob = Int64.to_int (S.read_u64 ~hint:`Hot t.s (node + off_valptr)) in
              S.free t.s node ~len:(node_size level);
              B.free t.s blob;
              true
        in
        S.op_end t.s ~ds;
        result)

  (* Inclusive range scan: descend to the last node with key < lo, then
     walk level 0 — the skiplist equivalent of the B+Tree leaf scan. *)
  let range t ~lo ~hi =
    let preds = find_preds t lo in
    let out = ref [] in
    let cur = ref (node_next t ~lvl:0 preds.(0)) in
    let continue_ = ref true in
    while !continue_ && !cur <> 0L do
      let node = Int64.to_int !cur in
      let key = node_key t ~lvl:0 node in
      if key > hi then continue_ := false
      else begin
        if key >= lo then begin
          let blob = Int64.to_int (S.read_u64 ~hint:`Hot t.s (node + off_valptr)) in
          out := (key, B.read t.s blob) :: !out
        end;
        cur := node_next t ~lvl:0 node
      end
    done;
    List.rev !out

  let to_list t =
    let rec walk acc ptr =
      if ptr = 0L then List.rev acc
      else begin
        let node = Int64.to_int ptr in
        let key = node_key t ~lvl:0 node in
        let blob = Int64.to_int (S.read_u64 ~hint:`Hot t.s (node + off_valptr)) in
        walk ((key, B.read t.s blob) :: acc) (node_next t ~lvl:0 node)
      end
    in
    walk [] (node_next t ~lvl:0 t.head)

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_put ->
        let key, value = Params.to_kv op.Log.Op_entry.params in
        put t ~key ~value
    | x when x = op_delete -> ignore (delete t ~key:(Params.to_key op.Log.Op_entry.params))
    | 0 -> ()
    | other -> Fmt.invalid_arg "Pskiplist.replay: unknown optype %d" other
end
