(** Key-hash partitioning (§8.3).

    A partitioned structure is an array of independent instances — each
    with its own writer lock and index — plus a persistent partition map.
    While a writer works in one partition, readers proceed in all others;
    spreading partitions over several back-ends removes the single-NIC
    bottleneck (Figure 10). The partition count is persisted in the global
    naming space (as the root word of a dedicated map entry) so recovery
    can re-route keys identically. *)

open Asym_core

module Make (S : Store.S) = struct
  type 'ds t = { parts : 'ds array; name : string }

  let hash key n =
    let z = Int64.mul (Int64.logxor key (Int64.shift_right_logical key 33)) 0xFF51AFD7ED558CCDL in
    let z = Int64.logxor z (Int64.shift_right_logical z 33) in
    Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int n))

  (* [map_store] is where the partition map lives (typically partition 0's
     store); [attach i] builds or opens the i-th underlying instance. *)
  let create map_store ~name ~n ~attach =
    assert (n >= 1);
    let h = S.register_ds map_store (name ^ "!pmap") in
    let persisted = S.read_u64 ~hint:`Hot map_store h.Types.root in
    let n =
      if persisted = 0L then begin
        S.write_u64 map_store ~ds:h.Types.id h.Types.root (Int64.of_int n);
        S.flush map_store;
        n
      end
      else Int64.to_int persisted
    in
    { parts = Array.init n (fun i -> attach i); name }

  let npartitions t = Array.length t.parts
  let route t key = t.parts.(hash key (Array.length t.parts))
  let part t i = t.parts.(i)
  let iter_parts t f = Array.iter f t.parts
end
