(** Recovery dispatch: maps a data-structure id to its replay function.

    After a front-end crash, {!Asym_core.Client.recover} returns the
    operation-log records whose memory logs never became durable; the
    application replays them through the owning structure (§7.2 Cases
    2.b/2.c). Typical use:

    {[
      let reg = Registry.create () in
      Registry.register reg ~ds:(Bpt.handle tree).id (Bpt.replay tree);
      Registry.replay_all reg (Client.recover fe)
    ]} *)

type t

val create : unit -> t
val register : t -> ds:Asym_core.Types.ds_id -> (Asym_core.Log.Op_entry.t -> unit) -> unit

val replay_all : t -> Asym_core.Log.Op_entry.t list -> unit
(** Replays in list (operation-number) order. Raises [Invalid_argument]
    on a record whose structure has no registered handler. *)
