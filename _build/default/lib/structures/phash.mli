(** Persistent chained hash table (§8.2).

    A header names a contiguous bucket array of pointer words; collisions
    chain through [[next][key][len][value]] nodes. Updates replace the
    whole node (constant node geometry keeps chain surgery to one pointer
    write). Key/value items are the caching granularity; batching brings
    no benefit to an O(1) structure, which is why the paper's Table 3 has
    no RCB column for it. *)

val op_put : int
val op_delete : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach : ?opts:Ds_intf.options -> ?nbuckets:int -> S.t -> name:string -> t
  (** [nbuckets] (default 4096) is fixed at creation and ignored when
      opening an existing table — the persistent header wins. *)

  val handle : t -> Asym_core.Types.handle
  val put : t -> key:int64 -> value:bytes -> unit
  val get : t -> key:int64 -> bytes option
  val delete : t -> key:int64 -> bool
  val mem : t -> key:int64 -> bool
  val size : t -> int

  val iter : t -> (int64 -> bytes -> unit) -> unit
  (** Full scan, bucket by bucket (unordered). *)

  val replay : t -> Asym_core.Log.Op_entry.t -> unit
end
