(** Adaptive level-based caching policy for tree-like structures (§8.3).

    Nodes at depth ≤ [n] (root = 0) are read through the front-end cache;
    deeper nodes bypass it. Every [period] operations the front-end
    cache's miss ratio α over the window adjusts [n]: α > 50% shrinks the
    cached region, α < 25% grows it — the paper's exact rule. *)

type t

val create : ?initial:int -> ?period:int -> max_depth:int -> unit -> t
val threshold : t -> int
val hint : t -> depth:int -> [ `Hot | `Cold ]

val note_op : t -> stats:int * int -> unit
(** Called once per data-structure operation with the cumulative
    (hits, misses) of the front-end cache. *)
