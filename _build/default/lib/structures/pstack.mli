(** Persistent stack (§8.1).

    LIFO over remote NVM: the root word names a header holding the top
    pointer and the element count; elements are singly linked nodes with
    inline values. Because only the top is ever touched, a front-end needs
    to cache just the head node, and a pop issued while the matching push
    is still buffered is served entirely from the write overlay — the
    paper's push/pop annulment optimization falls out of the log design. *)

val op_push : int
val op_pop : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach : ?opts:Ds_intf.options -> S.t -> name:string -> t
  (** Create the named stack, or open it if the naming space already knows
      it. With [opts.use_lock] every mutation runs under the exclusive
      writer lock; with [opts.shared] reads validate optimistically. *)

  val handle : t -> Asym_core.Types.handle

  val push : t -> bytes -> unit
  (** Durable when it returns, per the store's configuration (§4). *)

  val pop : t -> bytes option
  val peek : t -> bytes option
  val size : t -> int

  val to_list : t -> bytes list
  (** Top-first contents (test/debugging helper; walks every node). *)

  val replay : t -> Asym_core.Log.Op_entry.t -> unit
  (** Re-execute one recovered operation-log record (§7.2). *)
end
