lib/structures/lazy_gc.ml: Asym_core Asym_sim Queue Store Types
