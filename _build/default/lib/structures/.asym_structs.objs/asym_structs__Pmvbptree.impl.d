lib/structures/pmvbptree.ml: Array Asym_core Blob Bytes Ds_intf Fmt Int64 Lazy_gc Level_cache List Log Params Pbptree Store Types
