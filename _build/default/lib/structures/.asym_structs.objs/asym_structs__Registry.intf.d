lib/structures/registry.mli: Asym_core
