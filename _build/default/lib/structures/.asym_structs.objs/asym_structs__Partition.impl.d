lib/structures/partition.ml: Array Asym_core Int64 Store Types
