lib/structures/params.mli:
