lib/structures/blob.ml: Asym_core Bytes Int32 Store
