lib/structures/level_cache.mli:
