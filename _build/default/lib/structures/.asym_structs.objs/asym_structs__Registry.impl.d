lib/structures/registry.ml: Asym_core Fmt Hashtbl List Log Types
