lib/structures/pmvbst.mli: Asym_core Ds_intf
