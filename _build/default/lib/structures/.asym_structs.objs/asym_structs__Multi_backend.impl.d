lib/structures/multi_backend.ml: Array Asym_core Backend Client Int64 Printf Types
