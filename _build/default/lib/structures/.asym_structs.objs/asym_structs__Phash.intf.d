lib/structures/phash.mli: Asym_core Ds_intf
