lib/structures/pqueue.ml: Asym_core Bytes Ds_intf Fmt Fun Int32 Int64 List Log Store Types
