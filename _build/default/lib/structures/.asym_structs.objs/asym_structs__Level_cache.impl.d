lib/structures/level_cache.ml:
