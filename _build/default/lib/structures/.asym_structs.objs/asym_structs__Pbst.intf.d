lib/structures/pbst.mli: Asym_core Ds_intf
