lib/structures/pmvbptree.mli: Asym_core Ds_intf
