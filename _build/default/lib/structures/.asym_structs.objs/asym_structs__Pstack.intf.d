lib/structures/pstack.mli: Asym_core Ds_intf
