lib/structures/params.ml: Asym_util Bytes Codec List
