lib/structures/phash.ml: Asym_core Bytes Ds_intf Fmt Fun Int64 Log Params Store Types
