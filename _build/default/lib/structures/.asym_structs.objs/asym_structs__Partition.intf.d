lib/structures/partition.mli: Asym_core
