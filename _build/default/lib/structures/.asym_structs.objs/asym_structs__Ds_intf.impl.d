lib/structures/ds_intf.ml:
