lib/structures/blob.mli: Asym_core
