lib/structures/pskiplist.ml: Array Asym_core Asym_util Blob Bytes Ds_intf Fmt Fun Int32 Int64 List Log Params Store Types
