lib/structures/pbptree.ml: Array Asym_core Blob Bytes Ds_intf Fmt Fun Int64 Level_cache List Log Params Store Types
