lib/structures/multi_backend.mli: Asym_core Asym_sim
