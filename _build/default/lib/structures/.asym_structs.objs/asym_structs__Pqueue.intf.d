lib/structures/pqueue.mli: Asym_core Ds_intf
