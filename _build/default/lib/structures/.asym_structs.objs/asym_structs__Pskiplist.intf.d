lib/structures/pskiplist.mli: Asym_core Asym_util Ds_intf
