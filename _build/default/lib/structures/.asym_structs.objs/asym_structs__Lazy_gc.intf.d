lib/structures/lazy_gc.mli: Asym_core
