lib/structures/pbptree.mli: Asym_core Ds_intf
