(** Persistent stack (§8.1).

    Layout: the root word points at a 16-byte header [{top; count}]; each
    node is [[next: u64][len: u32][pad: u32][value bytes]]. Only the top of
    the stack is ever touched, so the front-end effectively caches just the
    head nodes; pops that follow unflushed pushes are served entirely from
    the write overlay — the paper's push/pop annulment effect. *)

open Asym_core

let op_push = 1
let op_pop = 2

module Make (S : Store.S) = struct
  type t = { s : S.t; h : Types.handle; header : Types.addr; opts : Ds_intf.options }

  let node_meta = 16

  let attach ?(opts = Ds_intf.default_options) s ~name =
    let h = S.register_ds s name in
    let header = S.read_u64 ~hint:`Hot s h.Types.root in
    if header = 0L then begin
      let header = S.malloc s 16 in
      S.write s ~ds:h.Types.id ~addr:header (Bytes.make 16 '\000');
      S.write_u64 s ~ds:h.Types.id h.Types.root (Int64.of_int header);
      S.flush s;
      { s; h; header; opts }
    end
    else { s; h; header = Int64.to_int header; opts }

  let handle t = t.h

  let locked t f =
    if t.opts.Ds_intf.use_lock then begin
      S.writer_lock t.s t.h;
      Fun.protect ~finally:(fun () -> S.writer_unlock t.s t.h) f
    end
    else f ()

  let push t value =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_push ~params:value);
        let len = Bytes.length value in
        let node = S.malloc t.s (node_meta + len) in
        let top = S.read_u64 ~hint:`Hot t.s t.header in
        let b = Bytes.create (node_meta + len) in
        Bytes.set_int64_le b 0 top;
        Bytes.set_int32_le b 8 (Int32.of_int len);
        Bytes.set_int32_le b 12 0l;
        Bytes.blit value 0 b node_meta len;
        S.write t.s ~ds ~addr:node b;
        S.write_u64 t.s ~ds t.header (Int64.of_int node);
        let count = S.read_u64 ~hint:`Hot t.s (t.header + 8) in
        S.write_u64 t.s ~ds (t.header + 8) (Int64.add count 1L);
        S.op_end t.s ~ds)

  let pop t =
    locked t (fun () ->
        let ds = t.h.Types.id in
        ignore (S.op_begin t.s ~ds ~optype:op_pop ~params:Bytes.empty);
        let top = S.read_u64 ~hint:`Hot t.s t.header in
        if top = 0L then begin
          S.op_end t.s ~ds;
          None
        end
        else begin
          let node = Int64.to_int top in
          let meta = S.read ~hint:`Hot t.s ~addr:node ~len:node_meta in
          let next = Bytes.get_int64_le meta 0 in
          let len = Int32.to_int (Bytes.get_int32_le meta 8) in
          let value = S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len in
          S.write_u64 t.s ~ds t.header next;
          let count = S.read_u64 ~hint:`Hot t.s (t.header + 8) in
          S.write_u64 t.s ~ds (t.header + 8) (Int64.sub count 1L);
          S.op_end t.s ~ds;
          S.free t.s node ~len:(node_meta + len);
          Some value
        end)

  let peek t =
    let read () =
      let top = S.read_u64 ~hint:`Hot t.s t.header in
      if top = 0L then None
      else begin
        let node = Int64.to_int top in
        let meta = S.read ~hint:`Hot t.s ~addr:node ~len:node_meta in
        let len = Int32.to_int (Bytes.get_int32_le meta 8) in
        Some (S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len)
      end
    in
    if t.opts.Ds_intf.shared then S.read_section t.s t.h read else read ()

  let size t = Int64.to_int (S.read_u64 ~hint:`Hot t.s (t.header + 8))

  let to_list t =
    let rec walk acc ptr =
      if ptr = 0L then List.rev acc
      else begin
        let node = Int64.to_int ptr in
        let meta = S.read ~hint:`Hot t.s ~addr:node ~len:node_meta in
        let next = Bytes.get_int64_le meta 0 in
        let len = Int32.to_int (Bytes.get_int32_le meta 8) in
        let v = S.read ~hint:`Hot t.s ~addr:(node + node_meta) ~len in
        walk (v :: acc) next
      end
    in
    walk [] (S.read_u64 ~hint:`Hot t.s t.header)

  let replay t (op : Log.Op_entry.t) =
    match op.Log.Op_entry.optype with
    | x when x = op_push -> push t op.Log.Op_entry.params
    | x when x = op_pop -> ignore (pop t)
    | 0 -> ()
    | other -> Fmt.invalid_arg "Pstack.replay: unknown optype %d" other
end
