(** Out-of-line value storage: a value blob is [[len: u32][bytes]].

    The ordered structures keep an 8-byte blob pointer in the node instead
    of the value, so updating a value never changes node geometry —
    allocate a new blob, swing the pointer, release the old one. *)

module Make (S : Asym_core.Store.S) : sig
  val alloc : S.t -> ds:Asym_core.Types.ds_id -> bytes -> Asym_core.Types.addr
  val read : ?hint:[ `Hot | `Cold ] -> S.t -> Asym_core.Types.addr -> bytes

  val size : ?hint:[ `Hot | `Cold ] -> S.t -> Asym_core.Types.addr -> int
  (** Total on-media footprint (header + payload), as {!free} releases. *)

  val free : S.t -> Asym_core.Types.addr -> unit
end
