(** Persistent FIFO queue (§8.1).

    The root word names a header [{head; tail; count}]; elements are
    singly linked nodes with inline values. Enqueues link at the tail,
    dequeues unlink at the head — both ends are the only hot data, so the
    paper's observation that queues need almost no cache applies. *)

val op_enqueue : int
val op_dequeue : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach : ?opts:Ds_intf.options -> S.t -> name:string -> t
  val handle : t -> Asym_core.Types.handle
  val enqueue : t -> bytes -> unit
  val dequeue : t -> bytes option
  val peek : t -> bytes option
  val size : t -> int

  val to_list : t -> bytes list
  (** Head-first contents (test/debugging helper). *)

  val replay : t -> Asym_core.Log.Op_entry.t -> unit
end
