(** Persistent B+Tree (lock-based, §8.3), fan-out 32.

    Fixed 512-byte nodes, values in out-of-line blobs, leaves chained for
    range scans. Deletion is leaf-local (no rebalancing — emptied leaves
    stay linked, the relaxed structure log-structured stores use), which
    keeps lookups exact while bounding write amplification. Upper levels
    are read through the cache with the adaptive §8.3 depth threshold. *)

val op_put : int
val op_delete : int
val op_vinsert : int

val fanout : int
val max_keys : int

module Make (S : Asym_core.Store.S) : sig
  type t

  val attach : ?opts:Ds_intf.options -> ?cache_all_levels:bool -> S.t -> name:string -> t
  val handle : t -> Asym_core.Types.handle
  val put : t -> key:int64 -> value:bytes -> unit
  val find : t -> key:int64 -> bytes option
  val mem : t -> key:int64 -> bool
  val delete : t -> key:int64 -> bool

  val insert_vector : t -> (int64 * bytes) list -> unit
  (** Algorithm 3 applied to the B+Tree: one lock, one vector op log. *)

  val range : t -> lo:int64 -> hi:int64 -> (int64 * bytes) list
  (** Inclusive range scan along the leaf chain. *)

  val to_list : t -> (int64 * bytes) list
  val replay : t -> Asym_core.Log.Op_entry.t -> unit
end
