(** Operation-log parameter encodings shared by the key/value structures. *)

open Asym_util

let of_key key =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 key;
  b

let to_key b = Bytes.get_int64_le b 0

let of_kv key value =
  let e = Codec.Enc.create ~capacity:(12 + Bytes.length value) () in
  Codec.Enc.u64 e key;
  Codec.Enc.u32i e (Bytes.length value);
  Codec.Enc.bytes e value;
  Codec.Enc.to_bytes e

let to_kv b =
  let d = Codec.Dec.of_bytes b in
  let key = Codec.Dec.u64 d in
  let len = Codec.Dec.u32i d in
  (key, Codec.Dec.bytes d len)

(* A sorted vector of key/value pairs (vector operations, §8.3). *)
let of_kvs pairs =
  let e = Codec.Enc.create () in
  Codec.Enc.u32i e (List.length pairs);
  List.iter
    (fun (k, v) ->
      Codec.Enc.u64 e k;
      Codec.Enc.u32i e (Bytes.length v);
      Codec.Enc.bytes e v)
    pairs;
  Codec.Enc.to_bytes e

let to_kvs b =
  let d = Codec.Dec.of_bytes b in
  let n = Codec.Dec.u32i d in
  List.init n (fun _ ->
      let k = Codec.Dec.u64 d in
      let len = Codec.Dec.u32i d in
      (k, Codec.Dec.bytes d len))
