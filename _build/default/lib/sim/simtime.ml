type t = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = int_of_float (x *. 1e9)
let to_sec t = float_of_int t /. 1e9
let to_us t = float_of_int t /. 1e3
let max (a : t) (b : t) = if a > b then a else b

let pp fmt t =
  if t >= 1_000_000_000 then Format.fprintf fmt "%.3fs" (to_sec t)
  else if t >= 1_000_000 then Format.fprintf fmt "%.3fms" (float_of_int t /. 1e6)
  else if t >= 1_000 then Format.fprintf fmt "%.3fus" (float_of_int t /. 1e3)
  else Format.fprintf fmt "%dns" t
