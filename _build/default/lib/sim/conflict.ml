type t = {
  starts : Simtime.t array;
  stops : Simtime.t array;
  capacity : int;
  mutable total : int;
  mutable oldest_known : Simtime.t;  (* windows ending before this were evicted *)
}

let create ?(capacity = 1024) () =
  {
    starts = Array.make capacity 0;
    stops = Array.make capacity 0;
    capacity;
    total = 0;
    oldest_known = 0;
  }

let record t ~start_ ~stop =
  assert (stop >= start_);
  let i = t.total mod t.capacity in
  if t.total >= t.capacity then t.oldest_known <- Stdlib.max t.oldest_known t.stops.(i);
  t.starts.(i) <- start_;
  t.stops.(i) <- stop;
  t.total <- t.total + 1

let overlaps t ~start_ ~stop =
  if start_ < t.oldest_known then true
  else begin
    let n = min t.total t.capacity in
    let hit = ref false in
    let i = ref 0 in
    while (not !hit) && !i < n do
      if t.starts.(!i) < stop && start_ < t.stops.(!i) then hit := true;
      incr i
    done;
    !hit
  end

let count t = t.total
