type t = { name : string; mutable now : Simtime.t; mutable busy : Simtime.t }

let create ?(name = "node") () = { name; now = 0; busy = 0 }
let name t = t.name
let now t = t.now

let advance t d =
  assert (d >= 0);
  t.now <- t.now + d;
  t.busy <- t.busy + d

let wait_until t at = if at > t.now then t.now <- at
let busy t = t.busy

let utilization t ~since ~busy_since =
  let elapsed = t.now - since in
  if elapsed <= 0 then 0.0 else float_of_int (t.busy - busy_since) /. float_of_int elapsed

let reset t =
  t.now <- 0;
  t.busy <- 0
