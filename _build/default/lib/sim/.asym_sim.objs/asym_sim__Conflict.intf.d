lib/sim/conflict.mli: Simtime
