lib/sim/simtime.ml: Format
