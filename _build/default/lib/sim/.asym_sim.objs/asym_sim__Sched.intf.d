lib/sim/sched.mli: Clock Simtime
