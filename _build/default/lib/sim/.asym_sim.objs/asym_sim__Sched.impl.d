lib/sim/sched.ml: Array Clock List Simtime
