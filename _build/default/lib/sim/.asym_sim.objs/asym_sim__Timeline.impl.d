lib/sim/timeline.ml: Array Simtime
