lib/sim/clock.mli: Simtime
