lib/sim/timeline.mli: Simtime
