lib/sim/conflict.ml: Array Simtime Stdlib
