lib/sim/clock.ml: Simtime
