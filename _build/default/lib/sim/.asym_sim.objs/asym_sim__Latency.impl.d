lib/sim/latency.ml:
