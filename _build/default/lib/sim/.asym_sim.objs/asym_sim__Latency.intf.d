lib/sim/latency.mli:
