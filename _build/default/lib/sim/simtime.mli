(** Virtual time, in integer nanoseconds.

    All performance accounting in the simulation is expressed in this unit.
    Plain [int] is used (63-bit on 64-bit platforms), which covers ~292
    simulated years — far beyond any experiment here. *)

type t = int

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : float -> t
val to_sec : t -> float
val to_us : t -> float
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
