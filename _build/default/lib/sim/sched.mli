(** Cooperative multi-client co-simulation.

    Each client is a (clock, step) pair; [step] performs exactly one
    complete data-structure operation and returns [false] once the client
    has no more work. The scheduler repeatedly runs the client whose
    virtual clock is furthest behind, so operations across clients
    interleave in virtual-time order — the property the conflict tracker
    and the shared-resource timelines rely on. *)

type client

val client : clock:Clock.t -> step:(unit -> bool) -> client

val run : ?deadline:Simtime.t -> client list -> unit
(** Run all clients to completion, or stop scheduling clients whose clock
    passed [deadline]. *)

val makespan : Clock.t list -> Simtime.t
(** Largest [now] among the given clocks. *)
