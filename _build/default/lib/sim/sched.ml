type client = { clock : Clock.t; step : unit -> bool; mutable live : bool }

let client ~clock ~step = { clock; step; live = true }

let run ?deadline clients =
  let clients = Array.of_list clients in
  let live = ref (Array.length clients) in
  while !live > 0 do
    (* Pick the live client with the smallest virtual time. *)
    let best = ref (-1) in
    Array.iteri
      (fun i c ->
        if c.live && (!best < 0 || Clock.now c.clock < Clock.now clients.(!best).clock) then
          best := i)
      clients;
    let c = clients.(!best) in
    let past_deadline =
      match deadline with Some d -> Clock.now c.clock >= d | None -> false
    in
    if past_deadline || not (c.step ()) then begin
      c.live <- false;
      decr live
    end
  done

let makespan clocks = List.fold_left (fun acc c -> Simtime.max acc (Clock.now c)) 0 clocks
