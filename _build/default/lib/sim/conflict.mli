(** Write-application interval tracker.

    The back-end records, per data structure, the virtual-time windows
    during which it applied memory logs to the data area (the windows in
    which the sequence number of Algorithm 2 is odd). A reader validates
    its optimistic read by checking that its gather window overlapped no
    application window; an overlap forces a retry, exactly as the
    SN-compare in the paper's Reader_Unlock does. A bounded ring of recent
    windows is kept. *)

type t

val create : ?capacity:int -> unit -> t

val record : t -> start_:Simtime.t -> stop:Simtime.t -> unit
(** Record one application window [\[start_, stop)]. *)

val overlaps : t -> start_:Simtime.t -> stop:Simtime.t -> bool
(** Does [\[start_, stop)] intersect any recorded window, or precede a
    window that has been evicted from the ring? (Conservatively [true] in
    the latter case.) *)

val count : t -> int
(** Total windows ever recorded. *)
