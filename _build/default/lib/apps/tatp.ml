(** The TATP (Telecom Application Transaction Processing) benchmark.

    Four tables indexed by persistent B+Trees — the paper uses the B+Tree
    as TATP's index structure:
    - Subscriber            (s_id)
    - Access_Info           (s_id, ai_type 1..4)
    - Special_Facility      (s_id, sf_type 1..4)
    - Call_Forwarding       (s_id, sf_type, start_time in {0,8,16})

    Composite keys are packed into an int64 ([s_id * 64 + sf_type * 8 +
    slot]). The standard seven transactions with the standard mix (80%
    reads / 20% writes) are implemented; records are fixed-shape byte
    strings as in the TATP spec (sub_nbr, bits/hex fields, vlr_location). *)

open Asym_core
open Asym_structs

type txn =
  | Get_subscriber_data  (** 35% *)
  | Get_new_destination  (** 10% *)
  | Get_access_data  (** 35% *)
  | Update_subscriber_data  (** 2% *)
  | Update_location  (** 14% *)
  | Insert_call_forwarding  (** 2% *)
  | Delete_call_forwarding  (** 2% *)

let default_mix =
  [
    (Get_subscriber_data, 35); (Get_new_destination, 10); (Get_access_data, 35);
    (Update_subscriber_data, 2); (Update_location, 14); (Insert_call_forwarding, 2);
    (Delete_call_forwarding, 2);
  ]

let txn_name = function
  | Get_subscriber_data -> "get_subscriber_data"
  | Get_new_destination -> "get_new_destination"
  | Get_access_data -> "get_access_data"
  | Update_subscriber_data -> "update_subscriber_data"
  | Update_location -> "update_location"
  | Insert_call_forwarding -> "insert_call_forwarding"
  | Delete_call_forwarding -> "delete_call_forwarding"

module Make (S : Store.S) = struct
  module T = Pbptree.Make (S)

  type t = {
    subscriber : T.t;
    access_info : T.t;
    special_facility : T.t;
    call_forwarding : T.t;
    mutable commits : int;
    mutable aborts : int;
  }

  let key_sub s_id = Int64.of_int (s_id * 64)
  let key_ai s_id ai_type = Int64.of_int ((s_id * 64) + (8 * 0) + ai_type)
  let key_sf s_id sf_type = Int64.of_int ((s_id * 64) + (8 * sf_type))
  let key_cf s_id sf_type slot = Int64.of_int ((s_id * 64) + (8 * sf_type) + 1 + slot)

  (* Record payloads: fixed-shape synthetic fields per the TATP spec. *)
  let sub_record ~s_id ~bits ~vlr =
    let b = Bytes.create 40 in
    Bytes.set_int64_le b 0 (Int64.of_int s_id);
    Bytes.set_int64_le b 8 (Int64.of_int bits);
    Bytes.set_int64_le b 16 (Int64.of_int vlr);
    Bytes.blit_string (Printf.sprintf "%015d" s_id) 0 b 24 15;
    b

  let ai_record ai_type = Bytes.of_string (Printf.sprintf "ai%02d-data1-data2-data3" ai_type)
  let sf_record ~active = Bytes.of_string (if active then "sf-active-data" else "sf-idle-data  ")
  let cf_record numberx = Bytes.of_string (Printf.sprintf "cf->%015d" numberx)

  let attach ?opts s ~name =
    {
      subscriber = T.attach ?opts s ~name:(name ^ ".subscriber");
      access_info = T.attach ?opts s ~name:(name ^ ".access_info");
      special_facility = T.attach ?opts s ~name:(name ^ ".special_facility");
      call_forwarding = T.attach ?opts s ~name:(name ^ ".call_forwarding");
      commits = 0;
      aborts = 0;
    }

  (* Population per the TATP spec: every subscriber has 1-4 access-info
     rows and 1-4 special facilities, each with 0-3 call forwardings. *)
  let populate t rng ~subscribers =
    for s_id = 0 to subscribers - 1 do
      T.put t.subscriber ~key:(key_sub s_id)
        ~value:(sub_record ~s_id ~bits:(Asym_util.Rng.int rng 256) ~vlr:(Asym_util.Rng.int rng 1000000));
      let n_ai = 1 + Asym_util.Rng.int rng 4 in
      for ai_type = 1 to n_ai do
        T.put t.access_info ~key:(key_ai s_id ai_type) ~value:(ai_record ai_type)
      done;
      let n_sf = 1 + Asym_util.Rng.int rng 4 in
      for sf_type = 1 to n_sf do
        T.put t.special_facility ~key:(key_sf s_id sf_type)
          ~value:(sf_record ~active:(Asym_util.Rng.int rng 100 < 85));
        let n_cf = Asym_util.Rng.int rng 4 in
        for slot = 0 to n_cf - 1 do
          T.put t.call_forwarding ~key:(key_cf s_id sf_type slot)
            ~value:(cf_record (Asym_util.Rng.int rng 1000000))
        done
      done
    done

  let commit t = t.commits <- t.commits + 1
  let abort t = t.aborts <- t.aborts + 1

  (* -- the seven transactions -- *)

  let get_subscriber_data t ~s_id =
    match T.find t.subscriber ~key:(key_sub s_id) with
    | Some r ->
        commit t;
        Some r
    | None ->
        abort t;
        None

  let get_new_destination t ~s_id ~sf_type ~start_time =
    let slot = start_time / 8 in
    match T.find t.special_facility ~key:(key_sf s_id sf_type) with
    | None ->
        abort t;
        None
    | Some _ -> (
        match T.find t.call_forwarding ~key:(key_cf s_id sf_type slot) with
        | Some r ->
            commit t;
            Some r
        | None ->
            abort t;
            None)

  let get_access_data t ~s_id ~ai_type =
    match T.find t.access_info ~key:(key_ai s_id ai_type) with
    | Some r ->
        commit t;
        Some r
    | None ->
        abort t;
        None

  let update_subscriber_data t ~s_id ~sf_type ~bits =
    match T.find t.subscriber ~key:(key_sub s_id) with
    | None ->
        abort t;
        false
    | Some r -> (
        Bytes.set_int64_le r 8 (Int64.of_int bits);
        T.put t.subscriber ~key:(key_sub s_id) ~value:r;
        match T.find t.special_facility ~key:(key_sf s_id sf_type) with
        | None ->
            abort t;
            false
        | Some _ ->
            T.put t.special_facility ~key:(key_sf s_id sf_type) ~value:(sf_record ~active:true);
            commit t;
            true)

  let update_location t ~s_id ~vlr =
    match T.find t.subscriber ~key:(key_sub s_id) with
    | None ->
        abort t;
        false
    | Some r ->
        Bytes.set_int64_le r 16 (Int64.of_int vlr);
        T.put t.subscriber ~key:(key_sub s_id) ~value:r;
        commit t;
        true

  let insert_call_forwarding t ~s_id ~sf_type ~start_time ~numberx =
    let slot = start_time / 8 in
    match T.find t.special_facility ~key:(key_sf s_id sf_type) with
    | None ->
        abort t;
        false
    | Some _ ->
        if T.mem t.call_forwarding ~key:(key_cf s_id sf_type slot) then begin
          (* Primary-key violation aborts, per the spec. *)
          abort t;
          false
        end
        else begin
          T.put t.call_forwarding ~key:(key_cf s_id sf_type slot) ~value:(cf_record numberx);
          commit t;
          true
        end

  let delete_call_forwarding t ~s_id ~sf_type ~start_time =
    let slot = start_time / 8 in
    if T.delete t.call_forwarding ~key:(key_cf s_id sf_type slot) then begin
      commit t;
      true
    end
    else begin
      abort t;
      false
    end

  let commits t = t.commits
  let aborts t = t.aborts
  let subscriber_table t = t.subscriber

  let run_random t rng ~subscribers ~mix =
    let total = List.fold_left (fun a (_, w) -> a + w) 0 mix in
    let roll = Asym_util.Rng.int rng total in
    let rec pick acc = function
      | [] -> Get_subscriber_data
      | (txn, w) :: rest -> if roll < acc + w then txn else pick (acc + w) rest
    in
    let s_id = Asym_util.Rng.int rng subscribers in
    let sf_type = 1 + Asym_util.Rng.int rng 4 in
    let ai_type = 1 + Asym_util.Rng.int rng 4 in
    let start_time = 8 * Asym_util.Rng.int rng 3 in
    match pick 0 mix with
    | Get_subscriber_data -> ignore (get_subscriber_data t ~s_id)
    | Get_new_destination -> ignore (get_new_destination t ~s_id ~sf_type ~start_time)
    | Get_access_data -> ignore (get_access_data t ~s_id ~ai_type)
    | Update_subscriber_data ->
        ignore (update_subscriber_data t ~s_id ~sf_type ~bits:(Asym_util.Rng.int rng 256))
    | Update_location -> ignore (update_location t ~s_id ~vlr:(Asym_util.Rng.int rng 1000000))
    | Insert_call_forwarding ->
        ignore
          (insert_call_forwarding t ~s_id ~sf_type ~start_time
             ~numberx:(Asym_util.Rng.int rng 1000000))
    | Delete_call_forwarding -> ignore (delete_call_forwarding t ~s_id ~sf_type ~start_time)
end
