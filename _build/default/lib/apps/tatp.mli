(** The TATP telecom benchmark (paper §9.2, Table 3's TX(TATP) row).

    Four tables indexed by persistent B+Trees — the structure the paper
    assigns to TATP: Subscriber, Access_Info, Special_Facility and
    Call_Forwarding, with composite keys packed into 64 bits. The seven
    standard transactions are implemented with the standard abort rules
    (missing rows, call-forwarding primary-key violations). *)

type txn =
  | Get_subscriber_data  (** 35% of the standard mix *)
  | Get_new_destination  (** 10% *)
  | Get_access_data  (** 35% *)
  | Update_subscriber_data  (** 2% *)
  | Update_location  (** 14% *)
  | Insert_call_forwarding  (** 2% *)
  | Delete_call_forwarding  (** 2% *)

val default_mix : (txn * int) list
val txn_name : txn -> string

module Make (S : Asym_core.Store.S) : sig
  module T : module type of Asym_structs.Pbptree.Make (S)

  type t

  val attach : ?opts:Asym_structs.Ds_intf.options -> S.t -> name:string -> t

  val populate : t -> Asym_util.Rng.t -> subscribers:int -> unit
  (** TATP population rules: every subscriber gets 1–4 access-info rows
      and 1–4 special facilities, each with 0–3 call-forwarding rows. *)

  (** {2 The seven transactions} *)

  val get_subscriber_data : t -> s_id:int -> bytes option
  val get_new_destination : t -> s_id:int -> sf_type:int -> start_time:int -> bytes option
  val get_access_data : t -> s_id:int -> ai_type:int -> bytes option
  val update_subscriber_data : t -> s_id:int -> sf_type:int -> bits:int -> bool
  val update_location : t -> s_id:int -> vlr:int -> bool
  val insert_call_forwarding : t -> s_id:int -> sf_type:int -> start_time:int -> numberx:int -> bool
  val delete_call_forwarding : t -> s_id:int -> sf_type:int -> start_time:int -> bool

  (** {2 Harness hooks} *)

  val run_random : t -> Asym_util.Rng.t -> subscribers:int -> mix:(txn * int) list -> unit
  val commits : t -> int
  val aborts : t -> int
  val subscriber_table : t -> T.t
end
