lib/apps/tatp.mli: Asym_core Asym_structs Asym_util
