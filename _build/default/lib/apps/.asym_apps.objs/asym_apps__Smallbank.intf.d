lib/apps/smallbank.mli: Asym_core Asym_structs Asym_util
