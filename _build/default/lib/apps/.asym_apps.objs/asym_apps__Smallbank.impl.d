lib/apps/smallbank.ml: Asym_core Asym_structs Asym_util Bytes Int64 List Phash Store
