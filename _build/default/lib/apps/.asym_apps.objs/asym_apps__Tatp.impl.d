lib/apps/tatp.ml: Asym_core Asym_structs Asym_util Bytes Int64 List Pbptree Printf Store
