(** The SmallBank transaction benchmark (paper §9.2, Table 3's
    TX(SmallBank) row).

    Checking and savings balances are indexed by two persistent hash
    tables — the structure the paper assigns to SmallBank. The six
    standard transaction profiles are implemented with the standard
    semantics (abort on missing accounts, overdraft rules, the write-check
    penalty, distinct-account requirements). Balances are signed 64-bit
    cent amounts. *)

type txn = Amalgamate | Balance | Deposit_checking | Send_payment | Transact_savings | Write_check

val txn_name : txn -> string

val default_mix : (txn * int) list
(** The standard 15/15/15/25/15/15 SmallBank mix (weights). *)

module Make (S : Asym_core.Store.S) : sig
  module H : module type of Asym_structs.Phash.Make (S)

  type t

  val create :
    ?opts:Asym_structs.Ds_intf.options -> S.t -> name:string -> accounts:int -> initial_balance:int64 -> t
  (** Create the two tables and open every account with the given balance
      in both checking and savings. *)

  val attach : ?opts:Asym_structs.Ds_intf.options -> S.t -> name:string -> t
  (** Open an existing bank (after recovery or from another front-end). *)

  (** {2 The six transaction profiles} *)

  val balance : t -> cust:int64 -> int64 option
  val deposit_checking : t -> cust:int64 -> amount:int64 -> bool
  val transact_savings : t -> cust:int64 -> amount:int64 -> bool
  val amalgamate : t -> from_cust:int64 -> to_cust:int64 -> bool
  val send_payment : t -> from_cust:int64 -> to_cust:int64 -> amount:int64 -> bool
  val write_check : t -> cust:int64 -> amount:int64 -> bool

  (** {2 Harness hooks} *)

  val run_random :
    ?cust_gen:(unit -> int64) -> t -> Asym_util.Rng.t -> accounts:int -> mix:(txn * int) list ->
    unit
  (** Draw one transaction from the weighted [mix] and execute it;
      [cust_gen] overrides the account distribution (e.g. Zipfian). *)

  val commits : t -> int
  val aborts : t -> int

  val total_assets : t -> accounts:int -> int64
  (** Sum of every balance — the conservation invariant the tests check. *)

  val checking : t -> H.t
  val savings : t -> H.t
end
