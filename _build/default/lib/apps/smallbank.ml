(** The SmallBank transaction benchmark over the AsymNVM framework.

    Two persistent hash tables index the checking and savings balances by
    customer id — the paper uses the hash table as SmallBank's index
    structure. The six standard transaction profiles are implemented;
    balances are signed 64-bit amounts (cents). Every balance mutation is
    a logged data-structure operation, so crash recovery replays exactly
    the acked transactions. *)

open Asym_core
open Asym_structs

type txn = Amalgamate | Balance | Deposit_checking | Send_payment | Transact_savings | Write_check

let txn_name = function
  | Amalgamate -> "amalgamate"
  | Balance -> "balance"
  | Deposit_checking -> "deposit_checking"
  | Send_payment -> "send_payment"
  | Transact_savings -> "transact_savings"
  | Write_check -> "write_check"

(* The standard SmallBank mix: 15/15/15/25/15/15. *)
let default_mix =
  [
    (Amalgamate, 15); (Balance, 15); (Deposit_checking, 15); (Send_payment, 25);
    (Transact_savings, 15); (Write_check, 15);
  ]

module Make (S : Store.S) = struct
  module H = Phash.Make (S)

  type t = { checking : H.t; savings : H.t; mutable aborts : int; mutable commits : int }

  let amount_of_bytes b = Bytes.get_int64_le b 0

  let bytes_of_amount v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    b

  let create ?opts s ~name ~accounts ~initial_balance =
    let checking = H.attach ?opts ~nbuckets:(max 64 accounts) s ~name:(name ^ ".checking") in
    let savings = H.attach ?opts ~nbuckets:(max 64 accounts) s ~name:(name ^ ".savings") in
    let t = { checking; savings; aborts = 0; commits = 0 } in
    for i = 0 to accounts - 1 do
      let key = Int64.of_int i in
      H.put checking ~key ~value:(bytes_of_amount initial_balance);
      H.put savings ~key ~value:(bytes_of_amount initial_balance)
    done;
    t

  let attach ?opts s ~name =
    {
      checking = H.attach ?opts s ~name:(name ^ ".checking");
      savings = H.attach ?opts s ~name:(name ^ ".savings");
      aborts = 0;
      commits = 0;
    }

  let read_balance tbl ~key =
    match H.get tbl ~key with Some b -> Some (amount_of_bytes b) | None -> None

  let write_balance tbl ~key v = H.put tbl ~key ~value:(bytes_of_amount v)

  let commit t = t.commits <- t.commits + 1
  let abort t = t.aborts <- t.aborts + 1

  (* -- the six transaction profiles -- *)

  let balance t ~cust =
    match (read_balance t.checking ~key:cust, read_balance t.savings ~key:cust) with
    | Some c, Some s ->
        commit t;
        Some (Int64.add c s)
    | _ ->
        abort t;
        None

  let deposit_checking t ~cust ~amount =
    if amount < 0L then begin
      abort t;
      false
    end
    else
      match read_balance t.checking ~key:cust with
      | None ->
          abort t;
          false
      | Some c ->
          write_balance t.checking ~key:cust (Int64.add c amount);
          commit t;
          true

  let transact_savings t ~cust ~amount =
    match read_balance t.savings ~key:cust with
    | None ->
        abort t;
        false
    | Some s ->
        let ns = Int64.add s amount in
        if ns < 0L then begin
          abort t;
          false
        end
        else begin
          write_balance t.savings ~key:cust ns;
          commit t;
          true
        end

  let amalgamate t ~from_cust ~to_cust =
    if from_cust = to_cust then begin
      (* Self-amalgamation would double-count the balances read before the
         zeroing writes; the spec requires distinct accounts. *)
      abort t;
      false
    end
    else
      match
      ( read_balance t.checking ~key:from_cust,
        read_balance t.savings ~key:from_cust,
        read_balance t.checking ~key:to_cust )
    with
    | Some fc, Some fs, Some tc ->
        write_balance t.checking ~key:from_cust 0L;
        write_balance t.savings ~key:from_cust 0L;
        write_balance t.checking ~key:to_cust (Int64.add tc (Int64.add fc fs));
        commit t;
        true
    | _ ->
        abort t;
        false

  let send_payment t ~from_cust ~to_cust ~amount =
    if from_cust = to_cust then begin
      abort t;
      false
    end
    else
    match (read_balance t.checking ~key:from_cust, read_balance t.checking ~key:to_cust) with
    | Some fc, Some tc when fc >= amount ->
        write_balance t.checking ~key:from_cust (Int64.sub fc amount);
        write_balance t.checking ~key:to_cust (Int64.add tc amount);
        commit t;
        true
    | _ ->
        abort t;
        false

  let write_check t ~cust ~amount =
    match (read_balance t.checking ~key:cust, read_balance t.savings ~key:cust) with
    | Some c, Some s ->
        (* Overdraft penalty of 1 when the check exceeds total assets. *)
        let penalty = if Int64.add c s < amount then 1L else 0L in
        write_balance t.checking ~key:cust (Int64.sub c (Int64.add amount penalty));
        commit t;
        true
    | _ ->
        abort t;
        false

  let commits t = t.commits
  let aborts t = t.aborts

  (* Total money in the bank — conserved by every profile except
     write_check (which burns the amount) and deposits (which mint it);
     used by the invariant tests. *)
  let total_assets t ~accounts =
    let sum = ref 0L in
    for i = 0 to accounts - 1 do
      let key = Int64.of_int i in
      (match read_balance t.checking ~key with Some v -> sum := Int64.add !sum v | None -> ());
      match read_balance t.savings ~key with Some v -> sum := Int64.add !sum v | None -> ()
    done;
    !sum

  let checking t = t.checking
  let savings t = t.savings

  (* Run one randomly drawn transaction (harness entry point).
     [cust_gen] overrides the account distribution (e.g. Zipfian). *)
  let run_random ?cust_gen t rng ~accounts ~mix =
    let total = List.fold_left (fun a (_, w) -> a + w) 0 mix in
    let roll = Asym_util.Rng.int rng total in
    let rec pick acc = function
      | [] -> Balance
      | (txn, w) :: rest -> if roll < acc + w then txn else pick (acc + w) rest
    in
    let cust () =
      match cust_gen with
      | Some g -> g ()
      | None -> Int64.of_int (Asym_util.Rng.int rng accounts)
    in
    let amount () = Int64.of_int (1 + Asym_util.Rng.int rng 100) in
    match pick 0 mix with
    | Amalgamate -> ignore (amalgamate t ~from_cust:(cust ()) ~to_cust:(cust ()))
    | Balance -> ignore (balance t ~cust:(cust ()))
    | Deposit_checking -> ignore (deposit_checking t ~cust:(cust ()) ~amount:(amount ()))
    | Send_payment -> ignore (send_payment t ~from_cust:(cust ()) ~to_cust:(cust ()) ~amount:(amount ()))
    | Transact_savings -> ignore (transact_savings t ~cust:(cust ()) ~amount:(amount ()))
    | Write_check -> ignore (write_check t ~cust:(cust ()) ~amount:(amount ()))
end
