lib/harness/experiments.mli: Asym_baseline Asym_core Report
