lib/harness/multiclient.ml: Array Asym_core Asym_sim Asym_structs Asym_util Backend Bytes Client Clock Hashtbl Int64 Latency List Printf Report Runner Sched Simtime Timeline Types
