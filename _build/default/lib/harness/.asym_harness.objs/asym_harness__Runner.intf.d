lib/harness/runner.mli: Asym_baseline Asym_core Asym_sim Asym_structs Asym_workload
