lib/harness/multiclient.mli: Asym_sim Report Runner
