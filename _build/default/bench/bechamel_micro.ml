(* Wall-clock micro-benchmarks of the primitives each experiment leans on,
   one Bechamel test per table/figure. These measure the real OCaml
   implementation cost (the experiment tables report virtual time). *)

open Bechamel
open Toolkit
open Asym_core

let lat = Asym_sim.Latency.default

let setup () =
  let bk =
    Backend.create ~name:"micro" ~max_sessions:4 ~memlog_cap:(4 * 1024 * 1024)
      ~oplog_cap:(1024 * 1024) ~slab_size:4096 ~capacity:(64 * 1024 * 1024) lat
  in
  let clock = Asym_sim.Clock.create ~name:"fe" () in
  let c = Client.connect ~name:"fe" (Client.rcb ~batch_size:64 ()) bk ~clock in
  (bk, c)

let tests () =
  let _bk, c = setup () in
  let h = Client.register_ds c "micro" in
  let addr = Client.malloc c 64 in
  ignore (Client.op_begin c ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write c ~ds:h.Types.id ~addr (Bytes.make 64 'x');
  Client.op_end c ~ds:h.Types.id;
  Client.flush c;
  let module Bpt = Asym_structs.Pbptree.Make (Client) in
  let bpt = Bpt.attach c ~name:"micro.bpt" in
  for i = 0 to 999 do
    Bpt.put bpt ~key:(Int64.of_int i) ~value:(Bytes.make 64 'v')
  done;
  Client.flush c;
  let rng = Asym_util.Rng.create ~seed:1L in
  let zipf = Asym_util.Zipf.create ~theta:0.99 ~n:100_000 (Asym_util.Rng.create ~seed:2L) in
  let tx =
    {
      Log.Tx.ds = 1;
      op_hi = 7L;
      entries = List.init 8 (fun i -> Log.Mem_entry.make ~addr:(i * 64) (Bytes.make 64 'e'));
    }
  in
  let tx_bytes = Log.Tx.encode tx in
  let i = ref 0 in
  [
    (* Table 2: the allocator fast path. *)
    Test.make ~name:"table2/two-tier-alloc-free"
      (Staged.stage (fun () ->
           let a = Client.malloc c 64 in
           Client.free c a ~len:64));
    (* Table 3: one cached read (the dominant RC/RCB operation). *)
    Test.make ~name:"table3/cached-read"
      (Staged.stage (fun () -> ignore (Client.read c ~addr ~len:64)));
    (* Figure 6: one logged write (memory-log append into the overlay). *)
    Test.make ~name:"fig6/mem-log-write"
      (Staged.stage (fun () ->
           incr i;
           Client.write c ~ds:h.Types.id ~addr (Bytes.make 64 (Char.chr (!i land 0xff)));
           if !i land 63 = 0 then Client.flush c));
    (* Figure 7: B+Tree lookup through the cache. *)
    Test.make ~name:"fig7/bptree-find"
      (Staged.stage (fun () ->
           ignore (Bpt.find bpt ~key:(Int64.of_int (Asym_util.Rng.int rng 1000)))));
    (* Figure 12: the Zipf generator itself. *)
    Test.make ~name:"fig12/zipf-next" (Staged.stage (fun () -> ignore (Asym_util.Zipf.next zipf)));
    (* Figure 13: trace value sizing + crc of a log record. *)
    Test.make ~name:"fig13/crc32-4k"
      (Staged.stage
         (let b = Bytes.make 4096 'z' in
          fun () -> ignore (Asym_util.Crc32.digest_bytes b)));
    (* §4.2: transaction encode + scan roundtrip. *)
    Test.make ~name:"tx/encode-scan"
      (Staged.stage (fun () ->
           match Log.Tx.scan (Log.Tx.encode tx) ~pos:0 with
           | Log.Tx.Record _ -> ()
           | _ -> assert false));
    (* §7.2: torn-tail scan of an intact record. *)
    Test.make ~name:"recovery/tx-scan" (Staged.stage (fun () -> ignore (Log.Tx.scan tx_bytes ~pos:0)));
  ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.== Bechamel micro-benchmarks (wall-clock ns/op) ==@.";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Format.printf "%-28s %10.1f ns@." name est
      | _ -> Format.printf "%-28s (no estimate)@." name)
    results
