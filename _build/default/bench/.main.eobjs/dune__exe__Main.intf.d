bench/main.mli:
