bench/main.ml: Arg Asym_harness Asym_sim Bechamel_micro Cmd Cmdliner Experiments Fmt List Multiclient Report Term
