bench/bechamel_micro.ml: Analyze Asym_core Asym_sim Asym_structs Asym_util Backend Bechamel Benchmark Bytes Char Client Format Hashtbl Instance Int64 List Log Measure Staged Test Time Toolkit Types
