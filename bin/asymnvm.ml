(* Command-line utility around the AsymNVM framework:

     asymnvm layout --capacity 64   print the device layout for a capacity
     asymnvm demo                   end-to-end put/get/crash/recover run
     asymnvm drill                  exercise all five §7.2 failure cases
     asymnvm check                  crash-point sweep vs. reference models
     asymnvm trace                  traced multi-phase run + Chrome JSON
     asymnvm profile                latency-attribution profile of one cell
     asymnvm bench-diff OLD NEW     compare two bench --json documents

   demo and drill also accept --trace FILE to record the same run;
   check accepts --json FILE for a machine-readable verdict document. *)

open Cmdliner
open Asym_core
open Asym_sim
module Obs = Asym_obs
module Obs_report = Asym_harness.Obs_report
module Bench_json = Asym_harness.Bench_json
module Breakdown = Asym_harness.Breakdown
module Runner = Asym_harness.Runner

let lat = Latency.default

(* -- tracing ---------------------------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable the observability subsystem for this run and write a Chrome trace_event \
           JSON document to $(docv) (loadable in Perfetto or chrome://tracing).")

(* Run [f] with observability on when a trace file was requested; on the
   way out write the trace and print the plain-text summaries, even if
   [f] raised (a crash drill mid-run should still leave a trace). *)
let with_trace file f =
  match file with
  | None -> f ()
  | Some path ->
      Obs.set_enabled true;
      Obs.reset ();
      Obs_report.reset_phases ();
      Fun.protect f ~finally:(fun () ->
          (try
             Obs.Export_chrome.write_file path;
             Asym_harness.Report.print (Obs_report.span_summary ());
             Asym_harness.Report.print (Obs_report.counter_summary ());
             Fmt.pr "@.trace: %d events (%d dropped) written to %s@."
               (List.length (Obs.Span.events ()))
               (Obs.Span.dropped ()) path
           with Sys_error msg ->
             Fmt.epr "asymnvm: cannot write trace: %s@." msg;
             Obs.set_enabled false;
             exit 1);
          Obs.set_enabled false)

(* -- layout ---------------------------------------------------------------- *)

let layout_cmd =
  let run capacity_mb sessions slab =
    let capacity = capacity_mb * 1024 * 1024 in
    let l =
      try Layout.compute ~capacity ~max_sessions:sessions ~slab_size:slab ()
      with Invalid_argument msg ->
        Fmt.epr "asymnvm: %s@." msg;
        Fmt.epr
          "hint: %d sessions need %d MiB of log rings alone; grow --capacity or shrink \
           --sessions@."
          sessions
          (sessions * 6);
        exit 1
    in
    let row name base len = Fmt.pr "%-12s %#12x  %10d bytes@." name base len in
    Fmt.pr "Layout of a %d MiB back-end (%d sessions, %d-byte slabs):@.@." capacity_mb sessions
      slab;
    row "superblock" 0 l.Layout.naming_base;
    row "naming" l.Layout.naming_base l.Layout.naming_len;
    row "sessions" l.Layout.sessions_base (sessions * Layout.session_slot_len);
    row "meta heap" l.Layout.meta_base l.Layout.meta_len;
    row "bitmap" l.Layout.bitmap_base l.Layout.bitmap_len;
    row "memlog" l.Layout.memlog_base (sessions * l.Layout.memlog_cap);
    row "oplog" l.Layout.oplog_base (sessions * l.Layout.oplog_cap);
    row "data" l.Layout.data_base (l.Layout.n_slabs * l.Layout.slab_size);
    Fmt.pr "@.%d slabs available to the allocator@." l.Layout.n_slabs
  in
  let capacity =
    Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"MIB" ~doc:"Device capacity in MiB")
  in
  let sessions =
    Arg.(value & opt int 8 & info [ "sessions" ] ~docv:"N" ~doc:"Maximum front-end sessions")
  in
  let slab = Arg.(value & opt int 4096 & info [ "slab" ] ~docv:"BYTES" ~doc:"Slab size") in
  Cmd.v (Cmd.info "layout" ~doc:"Print the NVM device layout for a given capacity")
    Term.(const run $ capacity $ sessions $ slab)

(* -- demo ------------------------------------------------------------------- *)

module Bpt = Asym_structs.Pbptree.Make (Client)

let demo_cmd =
  let run n trace =
    with_trace trace @@ fun () ->
    let bk = Backend.create ~name:"backend" ~capacity:(64 * 1024 * 1024) lat in
    let clock = Clock.create ~name:"fe" () in
    let fe = Client.connect ~name:"fe" (Client.rcb ()) bk ~clock in
    let t = Bpt.attach fe ~name:"demo" in
    let rng = Asym_util.Rng.create ~seed:1L in
    for _ = 1 to n do
      let k = Int64.of_int (Asym_util.Rng.int rng (4 * n)) in
      Bpt.put t ~key:k ~value:(Bytes.of_string (Int64.to_string k))
    done;
    Client.flush fe;
    Fmt.pr "inserted %d keys in %a of virtual time (%d RDMA verbs)@." n Simtime.pp
      (Clock.now clock) (Client.rdma_ops fe);
    Client.crash fe;
    let ops = Client.recover fe in
    Fmt.pr "crash + recovery: %d operations replayed@." (List.length ops);
    Fmt.pr "demo OK@."
  in
  let n = Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc:"Operations to run") in
  Cmd.v (Cmd.info "demo" ~doc:"End-to-end insert/crash/recover run")
    Term.(const run $ n $ trace_arg)

(* -- drill ------------------------------------------------------------------ *)

module H = Asym_structs.Phash.Make (Client)

let drill_cmd =
  let run trace =
    with_trace trace @@ fun () ->
    let ok name cond =
      Fmt.pr "%-38s %s@." name (if cond then "OK" else "FAILED");
      if not cond then exit 1
    in
    let bk =
      Backend.create ~name:"bk" ~max_sessions:4 ~memlog_cap:(1024 * 1024)
        ~oplog_cap:(512 * 1024) ~capacity:(32 * 1024 * 1024) lat
    in
    let m = Mirror.create ~name:"m" ~kind:Mirror.Nvm_backed ~capacity:(32 * 1024 * 1024) lat in
    Backend.attach_mirror bk m;
    let fe = Client.connect ~name:"fe" (Client.rcb ~batch_size:8 ()) bk
        ~clock:(Clock.create ~name:"fe" ()) in
    let h = H.attach ~nbuckets:256 fe ~name:"drill" in
    let reg = Asym_structs.Registry.create () in
    Asym_structs.Registry.register reg ~ds:(H.handle h).Types.id (H.replay h);
    for i = 0 to 99 do
      H.put h ~key:(Int64.of_int i) ~value:(Bytes.of_string (string_of_int i))
    done;
    (* Case 1/2: front-end crash mid-batch. *)
    Client.crash fe;
    let ops = Client.recover fe in
    Asym_structs.Registry.replay_all reg ops;
    Client.flush fe;
    ok "case 1/2: front-end crash + replay" (H.get h ~key:99L <> None);
    (* Case 3: back-end transient failure. *)
    Backend.crash bk;
    (try H.put h ~key:1000L ~value:(Bytes.of_string "x")
     with Asym_rdma.Verbs.Failure_detected _ -> Client.abort_tx fe);
    ignore (Backend.restart bk);
    Client.reconnect_after_backend_restart fe;
    Asym_structs.Registry.replay_all reg (Client.recover fe);
    Client.flush fe;
    ok "case 3: back-end restart + redo" (H.get h ~key:50L <> None);
    (* Case 4: permanent failure, mirror promotion. *)
    Backend.crash bk;
    (match Asym_cluster.Failover.failover ~dead:bk lat with
    | Some bk' ->
        Client.switch_backend fe bk';
        let h = H.attach ~nbuckets:256 fe ~name:"drill" in
        ok "case 4: mirror promotion" (H.get h ~key:75L <> None)
    | None -> ok "case 4: mirror promotion" false);
    (* Case 5: mirror crash is non-disruptive (no mirror on the promoted
       back-end to lose, so exercise the API). *)
    Mirror.crash m;
    ok "case 5: mirror crash tolerated" (Mirror.is_crashed m);
    Fmt.pr "drill complete@."
  in
  Cmd.v (Cmd.info "drill" ~doc:"Exercise the five failure cases of paper §7.2")
    Term.(const run $ trace_arg)

(* -- check ------------------------------------------------------------------ *)

module Check = Asym_check

(* asymnvm-check/1: machine-readable sweep verdicts (census histogram,
   failure details with one-line reproducers, fuzz counters). *)
let check_schema = "asymnvm-check/1"

let failure_json (o : Check.Explorer.outcome) (f : Check.Explorer.failure) =
  let open Obs.Json in
  Obj
    [
      ("point", Int f.Check.Explorer.point);
      ("site", String f.Check.Explorer.site);
      ( "torn",
        match f.Check.Explorer.torn with Some k -> Int k | None -> Null );
      ("completed", Int f.Check.Explorer.completed);
      ("detail", String f.Check.Explorer.detail);
      ("reproduce", String (Check.Explorer.reproducer o f));
    ]

let sweep_json (o : Check.Explorer.outcome) =
  let open Obs.Json in
  Obj
    [
      ("structure", String o.Check.Explorer.structure);
      ("ops", Int o.Check.Explorer.ops);
      ("seed", String (Int64.to_string o.Check.Explorer.seed));
      ("fault_drop", Float o.Check.Explorer.drop);
      ("boundaries", Int o.Check.Explorer.boundaries);
      ("points_run", Int o.Check.Explorer.points_run);
      ( "sites",
        Obj
          (List.map
             (fun (site, n) -> (site, Int n))
             (List.sort (fun (_, a) (_, b) -> compare b a) o.Check.Explorer.sites)) );
      ("failures", List (List.map (failure_json o) o.Check.Explorer.failures));
    ]

let fuzz_json (o : Check.Fuzz.outcome) =
  let open Obs.Json in
  Obj
    [
      ("structure", String o.Check.Fuzz.structure);
      ("clients", Int o.Check.Fuzz.clients);
      ("steps", Int o.Check.Fuzz.steps);
      ("seed", String (Int64.to_string o.Check.Fuzz.seed));
      ("ops_applied", Int o.Check.Fuzz.ops_applied);
      ("validations", Int o.Check.Fuzz.validations);
      ("client_crashes", Int o.Check.Fuzz.client_crashes);
      ("backend_restarts", Int o.Check.Fuzz.backend_restarts);
      ("mirror_crashes", Int o.Check.Fuzz.mirror_crashes);
      ("promotions", Int o.Check.Fuzz.promotions);
      ("fault_drop", Float o.Check.Fuzz.fault_drop);
      ("grey_periods", Int o.Check.Fuzz.grey_periods);
      ("verb_timeouts", Int o.Check.Fuzz.verb_timeouts);
      ("fault_retries", Int o.Check.Fuzz.fault_retries);
      ("reconnects", Int o.Check.Fuzz.reconnects);
      ("failures", List (List.map (fun f -> String f) o.Check.Fuzz.failures));
    ]

let check_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the sweep and fuzz outcomes (census histograms, failures with one-line \
           reproducers) to $(docv) as an asymnvm-check/1 JSON document.")

let check_cmd =
  let run structure ops seed stride no_tear point tear_point fuzz fuzz_clients fault_drop json =
    let subjects =
      if structure = "all" then Check.Subject.all
      else
        match Check.Subject.find structure with
        | Some s -> [ s ]
        | None ->
            Fmt.epr "asymnvm: unknown structure %S (try one of: all %s)@." structure
              (String.concat " " Check.Subject.names);
            exit 1
    in
    let failed = ref false in
    let sweeps = ref [] and fuzzes = ref [] and points = ref [] in
    (match point with
    | Some point ->
        (* Reproducer mode: one schedule, one armed crash point. *)
        List.iter
          (fun s ->
            match
              Check.Explorer.run_point ~drop:fault_drop s ~ops ~seed ~point ~tear:tear_point
            with
            | None ->
                Fmt.pr "%-10s point %d%s: OK@." s.Check.Subject.name point
                  (if tear_point then " (torn)" else "");
                points :=
                  Obs.Json.Obj
                    [
                      ("structure", Obs.Json.String s.Check.Subject.name);
                      ("point", Obs.Json.Int point);
                      ("torn", Obs.Json.Bool tear_point);
                      ("pass", Obs.Json.Bool true);
                    ]
                  :: !points
            | Some f ->
                failed := true;
                Fmt.pr "%-10s point %d (%s%s, %d ops completed): %s@." s.Check.Subject.name
                  f.Check.Explorer.point f.Check.Explorer.site
                  (match f.Check.Explorer.torn with
                  | Some k -> Printf.sprintf ", torn keep=%d" k
                  | None -> "")
                  f.Check.Explorer.completed f.Check.Explorer.detail;
                points :=
                  Obs.Json.Obj
                    [
                      ("structure", Obs.Json.String s.Check.Subject.name);
                      ("point", Obs.Json.Int point);
                      ("torn", Obs.Json.Bool tear_point);
                      ("pass", Obs.Json.Bool false);
                      ("detail", Obs.Json.String f.Check.Explorer.detail);
                    ]
                  :: !points)
          subjects
    | None ->
        List.iter
          (fun s ->
            let o = Check.Explorer.sweep ~stride ~tear:(not no_tear) ~drop:fault_drop s ~ops ~seed in
            Fmt.pr "%a@." Check.Explorer.pp_outcome o;
            List.iter
              (fun (site, n) -> Fmt.pr "    %6d  %s@." n site)
              (List.sort (fun (_, a) (_, b) -> compare b a) o.Check.Explorer.sites);
            sweeps := sweep_json o :: !sweeps;
            if o.Check.Explorer.failures <> [] then failed := true)
          subjects;
        match fuzz with
        | 0 -> ()
        | steps ->
            List.iter
              (fun s ->
                let o = Check.Fuzz.run ~clients:fuzz_clients ~drop:fault_drop s ~steps ~seed in
                Fmt.pr "%a@." Check.Fuzz.pp_outcome o;
                fuzzes := fuzz_json o :: !fuzzes;
                if o.Check.Fuzz.failures <> [] then failed := true)
              subjects);
    (match json with
    | None -> ()
    | Some path ->
        let doc =
          Obs.Json.Obj
            [
              ("schema", Obs.Json.String check_schema);
              ("pass", Obs.Json.Bool (not !failed));
              ("sweeps", Obs.Json.List (List.rev !sweeps));
              ("points", Obs.Json.List (List.rev !points));
              ("fuzz", Obs.Json.List (List.rev !fuzzes));
            ]
        in
        (try
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () -> output_string oc (Obs.Json.to_string doc));
           Fmt.pr "wrote %s@." path
         with Sys_error msg ->
           Fmt.epr "asymnvm: cannot write %s: %s@." path msg;
           exit 2));
    if !failed then exit 1
  in
  let structure =
    Arg.(
      value & opt string "all"
      & info [ "structure" ] ~docv:"NAME"
          ~doc:"Structure to sweep ($(b,all) or one of the registered names).")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~docv:"N" ~doc:"Operations in the schedule.")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Schedule generator seed.")
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ] ~docv:"K" ~doc:"Sample every $(docv)-th crash point (1 = exhaustive).")
  in
  let no_tear =
    Arg.(value & flag & info [ "no-tear" ] ~doc:"Skip the torn-write variant of each point.")
  in
  let point =
    Arg.(
      value & opt (some int) None
      & info [ "point" ] ~docv:"N"
          ~doc:"Re-run a single crash point (reproducer mode; skips the sweep).")
  in
  let tear_point =
    Arg.(
      value & flag
      & info [ "tear-point" ] ~doc:"With $(b,--point), also tear the write at that point.")
  in
  let fuzz =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"STEPS"
          ~doc:
            "After the sweep, run the multi-client fault fuzzer for $(docv) random steps \
             (0 = off).")
  in
  let fuzz_clients =
    Arg.(value & opt int 2 & info [ "fuzz-clients" ] ~docv:"N" ~doc:"Fuzzer front-end count.")
  in
  let fault_drop =
    Arg.(
      value & opt float 0.
      & info [ "fault-drop" ] ~docv:"RATE"
          ~doc:
            "Run the sweep and fuzzer under the transient-fault model: each verb is lost with \
             probability $(docv) (and the fuzzer also arms grey periods of heavy loss). The loss \
             schedule is derived from $(b,--seed), so reproducers stay one-line. 0 = off.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustive crash-point sweep: re-run a deterministic schedule once per NVM-mutating \
          boundary, crash there, recover, and validate against a pure reference model.")
    Term.(
      const run $ structure $ ops $ seed $ stride $ no_tear $ point $ tear_point $ fuzz
      $ fuzz_clients $ fault_drop $ check_json_arg)

(* -- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let run n out =
    Obs.set_enabled true;
    Obs.reset ();
    Obs_report.reset_phases ();
    let bk = Backend.create ~name:"backend" ~capacity:(64 * 1024 * 1024) lat in
    let clock = Clock.create ~name:"fe" () in
    let fe = Client.connect ~name:"fe" (Client.rcb ()) bk ~clock in
    let t = Bpt.attach fe ~name:"trace" in
    let rng = Asym_util.Rng.create ~seed:1L in
    let key () = Int64.of_int (Asym_util.Rng.int rng (4 * n)) in
    Obs_report.phase "insert" (fun () ->
        for _ = 1 to n do
          let k = key () in
          Bpt.put t ~key:k ~value:(Bytes.of_string (Int64.to_string k))
        done;
        Client.flush fe);
    Obs_report.phase "lookup" (fun () ->
        for _ = 1 to n do
          ignore (Bpt.find t ~key:(key ()))
        done);
    Obs_report.phase "crash+recover" (fun () ->
        Client.crash fe;
        ignore (Client.recover fe));
    (try Obs.Export_chrome.write_file out
     with Sys_error msg ->
       Fmt.epr "asymnvm: cannot write trace: %s@." msg;
       exit 1);
    Asym_harness.Report.print (Obs_report.phases_report ());
    Asym_harness.Report.print (Obs_report.span_summary ());
    Asym_harness.Report.print (Obs_report.counter_summary ());
    Fmt.pr "@.trace: %d events (%d dropped) over %a of virtual time written to %s@."
      (List.length (Obs.Span.events ()))
      (Obs.Span.dropped ()) Simtime.pp (Clock.now clock) out;
    Obs.set_enabled false
  in
  let n =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N" ~doc:"Operations per phase")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a three-phase workload (insert/lookup/recover) with tracing on")
    Term.(const run $ n $ out)

(* -- profile ---------------------------------------------------------------- *)

let profile_cmd =
  let run structure config preload ops =
    let kind =
      match Runner.ds_of_name structure with
      | Some k -> k
      | None ->
          Fmt.epr "asymnvm: unknown structure %S (one of: %s)@." structure
            (String.concat " " (List.map Runner.ds_name Runner.all_ds));
          exit 1
    in
    let cfg =
      match String.lowercase_ascii config with
      | "naive" -> Client.naive ()
      | "r" -> Client.r ()
      | "rc" -> Client.rc ()
      | "rcb" -> Client.rcb ()
      | other ->
          Fmt.epr "asymnvm: unknown config %S (naive, r, rc or rcb)@." other;
          exit 1
    in
    (* The same drive `bench breakdown` uses: YCSB-A for key/value
       structures, pure pushes for the FIFO family. *)
    let put_ratio = if Runner.is_fifo kind then 1.0 else 0.5 in
    let cell =
      Breakdown.run_cell ~put_ratio
        ~dist:(Asym_workload.Ycsb.Zipfian 0.99)
        ~rig:(Runner.make_rig lat) ~cfg ~preload ~ops kind
    in
    Asym_harness.Report.print (Breakdown.table [ cell ]);
    Asym_harness.Report.print (Breakdown.resource_table [ cell ])
  in
  let structure =
    Arg.(
      value & opt string "bpt"
      & info [ "structure" ] ~docv:"NAME" ~doc:"Structure to profile (e.g. bpt, mv-bpt).")
  in
  let config =
    Arg.(
      value & opt string "rcb"
      & info [ "config" ] ~docv:"CFG"
          ~doc:"Optimization stack: $(b,naive), $(b,r), $(b,rc) or $(b,rcb).")
  in
  let preload =
    Arg.(value & opt int 4000 & info [ "preload" ] ~docv:"N" ~doc:"Items loaded before measuring.")
  in
  let ops =
    Arg.(value & opt int 4000 & info [ "ops" ] ~docv:"N" ~doc:"Measured operations.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Latency-attribution profile of one structure/config cell: where each virtual \
          nanosecond went, by cause and by shared resource.")
    Term.(const run $ structure $ config $ preload $ ops)

(* -- bench-diff ------------------------------------------------------------- *)

let bench_diff_cmd =
  let run old_path new_path tolerance =
    let load path =
      try Bench_json.of_file path
      with
      | Sys_error msg ->
          Fmt.epr "asymnvm: cannot read %s: %s@." path msg;
          exit 2
      | Obs.Json.Parse_error msg ->
          Fmt.epr "asymnvm: %s: malformed JSON: %s@." path msg;
          exit 2
    in
    let old_doc = load old_path in
    let new_doc = load new_path in
    match Bench_json.diff ~tolerance ~old_doc ~new_doc () with
    | [] ->
        Fmt.pr "bench-diff: OK — %s and %s agree (tolerance %.0f%%)@." old_path new_path
          (100. *. tolerance)
    | failures ->
        List.iter (fun f -> Fmt.pr "bench-diff: %s@." f) failures;
        Fmt.pr "bench-diff: %d difference(s) between %s and %s@." (List.length failures)
          old_path new_path;
        exit 1
  in
  let old_path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc:"Reference document.")
  in
  let new_path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"Candidate document.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.02
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Relative tolerance for numeric cells (default 0.02 = 2%).")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two asymnvm-bench/1 documents (from bench/main.exe --json) cell by cell; \
          exit non-zero when cells drift beyond tolerance or shape checks flip.")
    Term.(const run $ old_path $ new_path $ tolerance)

let () =
  let info = Cmd.info "asymnvm" ~doc:"AsymNVM framework utility" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ layout_cmd; demo_cmd; drill_cmd; check_cmd; trace_cmd; profile_cmd; bench_diff_cmd ]))
