open Asym_core

let check = Alcotest.check

let entry ?from_op addr s = Log.Mem_entry.make ?from_op ~addr (Bytes.of_string s)

let tx ?(ds = 3) ?(op_hi = 9L) entries = { Log.Tx.ds; op_hi; entries }

let test_tx_roundtrip () =
  let t = tx [ entry 100 "abc"; entry 200 "defghij"; entry 64 "" ] in
  let b = Log.Tx.encode t in
  match Log.Tx.scan b ~pos:0 with
  | Log.Tx.Record (t', consumed) ->
      check Alcotest.int "consumed all" (Bytes.length b) consumed;
      check Alcotest.int "ds" 3 t'.Log.Tx.ds;
      check Alcotest.int64 "op_hi" 9L t'.Log.Tx.op_hi;
      check Alcotest.int "entries" 3 (List.length t'.Log.Tx.entries);
      List.iter2
        (fun a b ->
          check Alcotest.int "addr" a.Log.Mem_entry.addr b.Log.Mem_entry.addr;
          check Alcotest.string "value"
            (Bytes.to_string a.Log.Mem_entry.value)
            (Bytes.to_string b.Log.Mem_entry.value))
        t.Log.Tx.entries t'.Log.Tx.entries
  | _ -> Alcotest.fail "expected record"

let test_tx_empty_at_zero_byte () =
  let b = Bytes.make 64 '\000' in
  check Alcotest.bool "empty" true (Log.Tx.scan b ~pos:0 = Log.Tx.Empty)

let test_tx_wrap_marker () =
  let b = Bytes.make 8 '\000' in
  Bytes.blit Log.Tx.wrap_marker 0 b 0 1;
  check Alcotest.bool "wrap" true (Log.Tx.scan b ~pos:0 = Log.Tx.Wrap)

let test_tx_torn_detected () =
  let t = tx [ entry 100 "some value here" ] in
  let b = Log.Tx.encode t in
  (* Corrupt one payload byte: the CRC must catch it. *)
  Bytes.set b (Bytes.length b - 6) 'X';
  check Alcotest.bool "torn" true (Log.Tx.scan b ~pos:0 = Log.Tx.Torn)

let test_tx_truncated_is_torn () =
  let t = tx [ entry 100 "0123456789abcdef" ] in
  let b = Log.Tx.encode t in
  let cut = Bytes.sub b 0 (Bytes.length b - 5) in
  check Alcotest.bool "truncated torn" true (Log.Tx.scan cut ~pos:0 = Log.Tx.Torn)

let test_tx_sequence_scan () =
  let t1 = tx ~op_hi:1L [ entry 0 "one" ] in
  let t2 = tx ~op_hi:2L [ entry 8 "two" ] in
  let b1 = Log.Tx.encode t1 and b2 = Log.Tx.encode t2 in
  let buf = Bytes.make (Bytes.length b1 + Bytes.length b2 + 32) '\000' in
  Bytes.blit b1 0 buf 0 (Bytes.length b1);
  Bytes.blit b2 0 buf (Bytes.length b1) (Bytes.length b2);
  match Log.Tx.scan buf ~pos:0 with
  | Log.Tx.Record (r1, c1) -> (
      check Alcotest.int64 "first" 1L r1.Log.Tx.op_hi;
      match Log.Tx.scan buf ~pos:c1 with
      | Log.Tx.Record (r2, c2) ->
          check Alcotest.int64 "second" 2L r2.Log.Tx.op_hi;
          check Alcotest.bool "then empty" true (Log.Tx.scan buf ~pos:(c1 + c2) = Log.Tx.Empty)
      | _ -> Alcotest.fail "expected second record")
  | _ -> Alcotest.fail "expected first record"

let test_tx_wire_size_pointer_optimization () =
  let plain = tx [ entry 0 (String.make 64 'v') ] in
  let pointed = tx [ entry ~from_op:5L 0 (String.make 64 'v') ] in
  check Alcotest.bool "pointer form smaller on the wire" true
    (Log.Tx.wire_size pointed < Log.Tx.wire_size plain);
  (* Both encode the value inline for integrity; the pointer frame
     additionally stores the 8-byte op number it points at. *)
  check Alcotest.int "stored frame carries the op number"
    (Bytes.length (Log.Tx.encode plain) + 8)
    (Bytes.length (Log.Tx.encode pointed));
  (* The op number must round-trip — a scan that fabricates it would
     send recovery to the wrong op-log record. *)
  match Log.Tx.scan (Log.Tx.encode pointed) ~pos:0 with
  | Log.Tx.Record (t', _) -> (
      match t'.Log.Tx.entries with
      | [ e ] ->
          check Alcotest.(option int64) "from_op" (Some 5L) e.Log.Mem_entry.from_op;
          check Alcotest.string "value inline" (String.make 64 'v')
            (Bytes.to_string e.Log.Mem_entry.value)
      | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es))
  | _ -> Alcotest.fail "expected record"

let test_op_roundtrip () =
  let op = { Log.Op_entry.ds = 7; opnum = 42L; optype = 3; params = Bytes.of_string "kv" } in
  let b = Log.Op_entry.encode op in
  match Log.Op_entry.scan b ~pos:0 with
  | Log.Op_entry.Record (op', consumed) ->
      check Alcotest.int "consumed" (Bytes.length b) consumed;
      check Alcotest.int "ds" 7 op'.Log.Op_entry.ds;
      check Alcotest.int64 "opnum" 42L op'.Log.Op_entry.opnum;
      check Alcotest.int "optype" 3 op'.Log.Op_entry.optype;
      check Alcotest.string "params" "kv" (Bytes.to_string op'.Log.Op_entry.params)
  | _ -> Alcotest.fail "expected record"

let test_op_torn () =
  let op = { Log.Op_entry.ds = 1; opnum = 1L; optype = 1; params = Bytes.of_string "payload" } in
  let b = Log.Op_entry.encode op in
  Bytes.set b 14 '\255';
  check Alcotest.bool "torn" true (Log.Op_entry.scan b ~pos:0 = Log.Op_entry.Torn)

(* A 1-byte payload is the hardest torn-write case: the tear clips almost
   nothing, so only the checksum can tell. Both log kinds must catch a
   single flipped or clipped byte. *)
let test_tx_one_byte_payload_torn () =
  let t = tx [ entry 100 "x" ] in
  let good = Log.Tx.encode t in
  (match Log.Tx.scan good ~pos:0 with
  | Log.Tx.Record (t', _) ->
      check Alcotest.int "sanity: 1-byte entry round-trips" 1 (List.length t'.Log.Tx.entries)
  | _ -> Alcotest.fail "expected record");
  let cut = Bytes.sub good 0 (Bytes.length good - 1) in
  check Alcotest.bool "clipping the last byte is torn" true (Log.Tx.scan cut ~pos:0 = Log.Tx.Torn);
  let flipped = Bytes.copy good in
  Bytes.set flipped (Bytes.length flipped - 1) '\255';
  check Alcotest.bool "flipping the last byte is torn" true
    (Log.Tx.scan flipped ~pos:0 = Log.Tx.Torn)

let test_op_one_byte_payload_torn () =
  let op = { Log.Op_entry.ds = 1; opnum = 1L; optype = 1; params = Bytes.of_string "p" } in
  let good = Log.Op_entry.encode op in
  (match Log.Op_entry.scan good ~pos:0 with
  | Log.Op_entry.Record (op', _) ->
      check Alcotest.string "sanity: 1-byte params round-trip" "p"
        (Bytes.to_string op'.Log.Op_entry.params)
  | _ -> Alcotest.fail "expected record");
  let cut = Bytes.sub good 0 (Bytes.length good - 1) in
  check Alcotest.bool "clipping the last byte is torn" true
    (Log.Op_entry.scan cut ~pos:0 = Log.Op_entry.Torn);
  let flipped = Bytes.copy good in
  Bytes.set flipped (Bytes.length flipped - 1) '\255';
  check Alcotest.bool "flipping the last byte is torn" true
    (Log.Op_entry.scan flipped ~pos:0 = Log.Op_entry.Torn)

let test_op_empty_and_wrap () =
  let b = Bytes.make 4 '\000' in
  check Alcotest.bool "empty" true (Log.Op_entry.scan b ~pos:0 = Log.Op_entry.Empty);
  Bytes.blit Log.Op_entry.wrap_marker 0 b 0 1;
  check Alcotest.bool "wrap" true (Log.Op_entry.scan b ~pos:0 = Log.Op_entry.Wrap)

let test_tx_empty_entries () =
  (* A header-only transaction (the §8.1 fully-annulled batch) still
     round-trips and advances op coverage. *)
  let t = tx ~op_hi:7L [] in
  match Log.Tx.scan (Log.Tx.encode t) ~pos:0 with
  | Log.Tx.Record (t', _) ->
      check Alcotest.int64 "op_hi" 7L t'.Log.Tx.op_hi;
      check Alcotest.int "no entries" 0 (List.length t'.Log.Tx.entries)
  | _ -> Alcotest.fail "expected record"

let test_tx_scan_at_offset () =
  let b1 = Log.Tx.encode (tx ~op_hi:1L [ entry 0 "x" ]) in
  let buf = Bytes.make (Bytes.length b1 + 10) '\000' in
  Bytes.blit b1 0 buf 5 (Bytes.length b1);
  (* Scanning at the right offset parses; at offset 0 it reports Empty. *)
  check Alcotest.bool "offset 0 empty" true (Log.Tx.scan buf ~pos:0 = Log.Tx.Empty);
  (match Log.Tx.scan buf ~pos:5 with
  | Log.Tx.Record (r, _) -> check Alcotest.int64 "parsed at offset" 1L r.Log.Tx.op_hi
  | _ -> Alcotest.fail "expected record at offset 5");
  check Alcotest.bool "past end empty" true
    (Log.Tx.scan buf ~pos:(Bytes.length buf) = Log.Tx.Empty)

let test_wire_size_matches_encoded_without_pointers () =
  (* With no op-log pointers the wire size equals the encoded size. *)
  let t = tx [ entry 0 "0123456789"; entry 64 "" ] in
  check Alcotest.int "wire = encoded" (Bytes.length (Log.Tx.encode t)) (Log.Tx.wire_size t)

let gen_entry =
  QCheck.Gen.(
    map2
      (fun addr s -> Log.Mem_entry.make ~addr (Bytes.of_string s))
      (int_bound 100000) (string_size (0 -- 80)))

let prop_tx_roundtrip =
  QCheck.Test.make ~count:300 ~name:"tx encode/scan roundtrip"
    (QCheck.make QCheck.Gen.(pair (list_size (1 -- 10) gen_entry) (pair (int_bound 100) ui64)))
    (fun (entries, (ds, op_hi)) ->
      let t = { Log.Tx.ds; op_hi = Int64.logand op_hi Int64.max_int; entries } in
      match Log.Tx.scan (Log.Tx.encode t) ~pos:0 with
      | Log.Tx.Record (t', _) ->
          t'.Log.Tx.ds = t.Log.Tx.ds
          && t'.Log.Tx.op_hi = t.Log.Tx.op_hi
          && List.for_all2
               (fun a b ->
                 a.Log.Mem_entry.addr = b.Log.Mem_entry.addr
                 && Bytes.equal a.Log.Mem_entry.value b.Log.Mem_entry.value)
               t.Log.Tx.entries t'.Log.Tx.entries
      | _ -> false)

let prop_tx_bitflip_never_parses_wrong =
  QCheck.Test.make ~count:300 ~name:"single bit flip -> torn or identical"
    (QCheck.make QCheck.Gen.(triple (list_size (1 -- 4) gen_entry) (int_bound 10000) small_nat))
    (fun (entries, seed, flip) ->
      let t = { Log.Tx.ds = seed mod 7; op_hi = Int64.of_int seed; entries } in
      let b = Log.Tx.encode t in
      let i = flip mod (Bytes.length b * 8) in
      let byte = i / 8 and bit = i mod 8 in
      Bytes.set_uint8 b byte (Bytes.get_uint8 b byte lxor (1 lsl bit));
      match Log.Tx.scan b ~pos:0 with
      | Log.Tx.Record _ -> false (* CRC32 catches all single-bit flips *)
      | Log.Tx.Torn | Log.Tx.Empty | Log.Tx.Wrap -> true)

let () =
  Alcotest.run "log"
    [
      ( "tx",
        [
          Alcotest.test_case "roundtrip" `Quick test_tx_roundtrip;
          Alcotest.test_case "empty" `Quick test_tx_empty_at_zero_byte;
          Alcotest.test_case "wrap marker" `Quick test_tx_wrap_marker;
          Alcotest.test_case "torn detected" `Quick test_tx_torn_detected;
          Alcotest.test_case "truncated torn" `Quick test_tx_truncated_is_torn;
          Alcotest.test_case "1-byte payload torn" `Quick test_tx_one_byte_payload_torn;
          Alcotest.test_case "sequence scan" `Quick test_tx_sequence_scan;
          Alcotest.test_case "pointer wire optimization" `Quick
            test_tx_wire_size_pointer_optimization;
          Alcotest.test_case "empty (annulled) tx" `Quick test_tx_empty_entries;
          Alcotest.test_case "scan at offset" `Quick test_tx_scan_at_offset;
          Alcotest.test_case "wire size without pointers" `Quick
            test_wire_size_matches_encoded_without_pointers;
          QCheck_alcotest.to_alcotest prop_tx_roundtrip;
          QCheck_alcotest.to_alcotest prop_tx_bitflip_never_parses_wrong;
        ] );
      ( "op",
        [
          Alcotest.test_case "roundtrip" `Quick test_op_roundtrip;
          Alcotest.test_case "torn" `Quick test_op_torn;
          Alcotest.test_case "1-byte payload torn" `Quick test_op_one_byte_payload_torn;
          Alcotest.test_case "empty/wrap" `Quick test_op_empty_and_wrap;
        ] );
    ]
