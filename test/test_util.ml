open Asym_util

let check = Alcotest.check

(* -- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_in () =
  let r = Rng.create ~seed:9L in
  for _ = 1 to 1_000 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_unit_interval () =
  let r = Rng.create ~seed:11L in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "out of range: %f" f
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:5L in
  let b = Rng.split a in
  check Alcotest.bool "split differs" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:3L in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 100 (fun i -> i)) sorted

let test_rng_uniformity () =
  let r = Rng.create ~seed:21L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let dev = abs (c - (n / 10)) in
      if dev > n / 50 then Alcotest.failf "bucket deviation too large: %d" c)
    buckets

(* -- Zipf ------------------------------------------------------------- *)

let test_zipf_range () =
  let r = Rng.create ~seed:1L in
  let z = Zipf.create ~theta:0.99 ~n:1000 r in
  for _ = 1 to 10_000 do
    let v = Zipf.next z in
    if v < 0 || v >= 1000 then Alcotest.failf "zipf out of range: %d" v
  done

let test_zipf_skew () =
  (* Rank 0 must be far more frequent than rank 500 under theta=0.99. *)
  let r = Rng.create ~seed:2L in
  let z = Zipf.create ~theta:0.99 ~n:1000 r in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let v = Zipf.next z in
    counts.(v) <- counts.(v) + 1
  done;
  check Alcotest.bool "rank0 hot" true (counts.(0) > 20 * (counts.(500) + 1))

let test_zipf_low_theta_flatter () =
  let r = Rng.create ~seed:3L in
  let hot theta =
    let z = Zipf.create ~theta ~n:1000 (Rng.copy r) in
    let c = ref 0 in
    for _ = 1 to 50_000 do
      if Zipf.next z = 0 then incr c
    done;
    !c
  in
  check Alcotest.bool "theta .99 hotter than .5" true (hot 0.99 > hot 0.5)

let test_zipf_scrambled_range () =
  let r = Rng.create ~seed:4L in
  let z = Zipf.create ~theta:0.9 ~n:12345 r in
  for _ = 1 to 10_000 do
    let v = Zipf.next_scrambled z in
    if v < 0 || v >= 12345 then Alcotest.failf "scrambled out of range: %d" v
  done

let test_zipf_scrambled_spreads () =
  (* Scrambling must move the hottest item away from rank 0 in most seeds. *)
  let r = Rng.create ~seed:5L in
  let z = Zipf.create ~theta:0.99 ~n:1000 r in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let v = Zipf.next_scrambled z in
    counts.(v) <- counts.(v) + 1
  done;
  (* There must still be a clearly hottest key somewhere. *)
  let mx = Array.fold_left max 0 counts in
  check Alcotest.bool "still skewed" true (mx > 1000)

(* -- Crc32 ------------------------------------------------------------ *)

let test_crc32_known_value () =
  (* CRC-32 of "123456789" is 0xCBF43926 (IEEE). *)
  check Alcotest.int32 "check vector" 0xCBF43926l (Crc32.digest_string "123456789")

let test_crc32_empty () = check Alcotest.int32 "empty" 0l (Crc32.digest_string "")

let test_crc32_detects_flip () =
  let b = Bytes.of_string "the quick brown fox" in
  let c1 = Crc32.digest_bytes b in
  Bytes.set b 4 'Q';
  check Alcotest.bool "differs" true (c1 <> Crc32.digest_bytes b)

let test_crc32_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  check Alcotest.int32 "slice" 0xCBF43926l (Crc32.digest b ~pos:2 ~len:9)

(* -- Codec ------------------------------------------------------------ *)

let test_codec_roundtrip_fixed () =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e 0xAB;
  Codec.Enc.u16 e 0xBEEF;
  Codec.Enc.u32 e 0xDEADBEEFl;
  Codec.Enc.u64 e 0x1122334455667788L;
  Codec.Enc.string e "hello";
  let d = Codec.Dec.of_bytes (Codec.Enc.to_bytes e) in
  check Alcotest.int "u8" 0xAB (Codec.Dec.u8 d);
  check Alcotest.int "u16" 0xBEEF (Codec.Dec.u16 d);
  check Alcotest.int32 "u32" 0xDEADBEEFl (Codec.Dec.u32 d);
  check Alcotest.int64 "u64" 0x1122334455667788L (Codec.Dec.u64 d);
  check Alcotest.string "string" "hello" (Codec.Dec.string d);
  check Alcotest.int "fully consumed" 0 (Codec.Dec.remaining d)

let test_codec_bounds_check () =
  let d = Codec.Dec.of_bytes (Bytes.create 3) in
  Alcotest.check_raises "u32 out of bounds"
    (Invalid_argument "Codec.Dec: out of bounds (pos=0 need=4 len=3)") (fun () ->
      ignore (Codec.Dec.u32 d))

let test_codec_u64i_overflow () =
  let e = Codec.Enc.create () in
  Codec.Enc.u64 e Int64.min_int;
  let d = Codec.Dec.of_bytes (Codec.Enc.to_bytes e) in
  Alcotest.check_raises "negative u64i"
    (Invalid_argument "Codec.Dec.u64i: value does not fit in int") (fun () ->
      ignore (Codec.Dec.u64i d))

let prop_string_roundtrip =
  QCheck.Test.make ~count:300 ~name:"enc/dec string+u64 roundtrip"
    QCheck.(pair string (small_list int64))
    (fun (s, xs) ->
      let e = Codec.Enc.create () in
      Codec.Enc.string e s;
      Codec.Enc.u32i e (List.length xs);
      List.iter (Codec.Enc.u64 e) xs;
      let d = Codec.Dec.of_bytes (Codec.Enc.to_bytes e) in
      let s' = Codec.Dec.string d in
      let n = Codec.Dec.u32i d in
      let xs' = List.init n (fun _ -> Codec.Dec.u64 d) in
      s = s' && xs = xs')

let prop_positional_accessors =
  QCheck.Test.make ~count:300 ~name:"positional u64 get/set"
    QCheck.(pair int64 (int_bound 56))
    (fun (v, pos) ->
      let b = Bytes.make 64 '\000' in
      Codec.set_u64 b pos v;
      Codec.get_u64 b pos = v)

(* -- Stats ------------------------------------------------------------- *)

let test_running_stats () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 1.0; 2.0; 3.0; 4.0 ];
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.Running.mean r);
  check Alcotest.int "count" 4 (Stats.Running.count r);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.Running.min r);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.Running.max r);
  check (Alcotest.float 1e-9) "variance" (5.0 /. 3.0) (Stats.Running.variance r)

let test_percentile () =
  let a = Array.init 101 (fun i -> float_of_int i) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile a 50.0);
  check (Alcotest.float 1e-9) "p0" 0.0 (Stats.percentile a 0.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile a 100.0)

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0; 100.0 |] in
  List.iter (Stats.Histogram.add h) [ 0.5; 5.0; 50.0; 500.0; 7.0 ];
  let counts = Array.map snd (Stats.Histogram.counts h) in
  check (Alcotest.array Alcotest.int) "bucket counts" [| 1; 2; 1; 1 |] counts;
  check Alcotest.int "total" 5 (Stats.Histogram.total h)

let test_histogram_percentile () =
  (* Everything in the first bucket: interpolate from the implicit 0 edge. *)
  let h = Stats.Histogram.create ~buckets:[| 10.0; 20.0; 30.0 |] in
  for _ = 1 to 10 do
    Stats.Histogram.add h 5.0
  done;
  check (Alcotest.float 1e-9) "p50 single bucket" 5.0 (Stats.Histogram.percentile h 50.0);
  check (Alcotest.float 1e-9) "p100 single bucket" 10.0 (Stats.Histogram.percentile h 100.0);
  (* Spread across buckets: the rank walks the cumulative counts. *)
  let h = Stats.Histogram.create ~buckets:[| 1.0; 2.0; 4.0 |] in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 3.0; 3.5 ];
  check (Alcotest.float 1e-9) "p25" 1.0 (Stats.Histogram.percentile h 25.0);
  check (Alcotest.float 1e-9) "p50" 2.0 (Stats.Histogram.percentile h 50.0);
  check (Alcotest.float 1e-9) "p99" 3.96 (Stats.Histogram.percentile h 99.0);
  (* The open-ended overflow bucket reports the last finite edge. *)
  let h = Stats.Histogram.create ~buckets:[| 1.0; 2.0; 4.0 |] in
  Stats.Histogram.add h 100.0;
  check (Alcotest.float 1e-9) "overflow clamps" 4.0 (Stats.Histogram.percentile h 100.0)

let test_histogram_percentile_errors () =
  let h = Stats.Histogram.create ~buckets:[| 1.0 |] in
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.Histogram.percentile: empty histogram") (fun () ->
      ignore (Stats.Histogram.percentile h 50.0));
  Stats.Histogram.add h 0.5;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.Histogram.percentile: p out of [0,100]") (fun () ->
      ignore (Stats.Histogram.percentile h 101.0))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "different seeds" `Quick test_rng_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float in [0,1)" `Quick test_rng_float_unit_interval;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle is permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "lower theta flatter" `Quick test_zipf_low_theta_flatter;
          Alcotest.test_case "scrambled range" `Quick test_zipf_scrambled_range;
          Alcotest.test_case "scrambled still skewed" `Quick test_zipf_scrambled_spreads;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc32_known_value;
          Alcotest.test_case "empty" `Quick test_crc32_empty;
          Alcotest.test_case "detects bit flip" `Quick test_crc32_detects_flip;
          Alcotest.test_case "slice" `Quick test_crc32_slice;
        ] );
      ( "codec",
        [
          Alcotest.test_case "fixed roundtrip" `Quick test_codec_roundtrip_fixed;
          Alcotest.test_case "bounds check" `Quick test_codec_bounds_check;
          Alcotest.test_case "u64i overflow" `Quick test_codec_u64i_overflow;
          QCheck_alcotest.to_alcotest prop_string_roundtrip;
          QCheck_alcotest.to_alcotest prop_positional_accessors;
        ] );
      ( "stats",
        [
          Alcotest.test_case "running" `Quick test_running_stats;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "histogram percentile errors" `Quick
            test_histogram_percentile_errors;
        ] );
    ]
