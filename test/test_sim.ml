open Asym_sim

let check = Alcotest.check

(* -- Simtime ----------------------------------------------------------- *)

let test_simtime_units () =
  check Alcotest.int "us" 5_000 (Simtime.us 5);
  check Alcotest.int "ms" 2_000_000 (Simtime.ms 2);
  check Alcotest.int "sec" 1_500_000_000 (Simtime.sec 1.5);
  check (Alcotest.float 1e-12) "to_sec" 0.002 (Simtime.to_sec (Simtime.ms 2));
  check (Alcotest.float 1e-12) "to_us" 3.0 (Simtime.to_us 3_000)

let test_simtime_pp () =
  let s t = Format.asprintf "%a" Simtime.pp t in
  check Alcotest.string "ns" "42ns" (s 42);
  check Alcotest.string "us" "1.500us" (s 1_500);
  check Alcotest.string "ms" "2.000ms" (s 2_000_000);
  check Alcotest.string "s" "3.000s" (s 3_000_000_000)

(* -- Latency ------------------------------------------------------------ *)

let test_latency_lines () =
  check Alcotest.int "0 -> 1 line" 1 (Latency.lines 0);
  check Alcotest.int "1 -> 1 line" 1 (Latency.lines 1);
  check Alcotest.int "64 -> 1 line" 1 (Latency.lines 64);
  check Alcotest.int "65 -> 2 lines" 2 (Latency.lines 65);
  check Alcotest.int "128 -> 2 lines" 2 (Latency.lines 128)

let test_latency_costs () =
  let l = Latency.default in
  check Alcotest.int "nvm read 64B" l.Latency.nvm_read_ns (Latency.nvm_read_cost l 64);
  check Alcotest.int "nvm write 128B" (2 * l.Latency.nvm_write_ns) (Latency.nvm_write_cost l 128);
  check Alcotest.bool "payload grows" true
    (Latency.rdma_payload_ns l 4096 > Latency.rdma_payload_ns l 64)

(* -- Clock -------------------------------------------------------------- *)

let test_clock_advance () =
  let c = Clock.create ~name:"c" () in
  Clock.advance c 100;
  Clock.advance c 50;
  check Alcotest.int "now" 150 (Clock.now c);
  check Alcotest.int "busy" 150 (Clock.busy c)

let test_clock_wait_idle () =
  let c = Clock.create () in
  Clock.advance c 100;
  Clock.wait_until c 500;
  check Alcotest.int "now jumped" 500 (Clock.now c);
  check Alcotest.int "busy unchanged" 100 (Clock.busy c);
  Clock.wait_until c 200;
  check Alcotest.int "no time travel" 500 (Clock.now c)

let test_clock_utilization () =
  let c = Clock.create () in
  Clock.advance c 100;
  Clock.wait_until c 400;
  check (Alcotest.float 1e-9) "25% busy" 0.25 (Clock.utilization c ~since:0 ~busy_since:0)

(* -- Timeline ------------------------------------------------------------ *)

let test_timeline_fifo () =
  let tl = Timeline.create () in
  let s1 = Timeline.acquire tl ~at:0 ~dur:100 in
  let s2 = Timeline.acquire tl ~at:10 ~dur:100 in
  let s3 = Timeline.acquire tl ~at:500 ~dur:10 in
  check Alcotest.int "first starts immediately" 0 s1;
  check Alcotest.int "second queues" 100 s2;
  check Alcotest.int "idle gap respected" 500 s3;
  check Alcotest.int "busy total" 210 (Timeline.busy_total tl)

let test_timeline_backfills_gaps () =
  (* A request arriving (in execution order) after a later booking must
     use the idle gap before it, not queue behind it — this is what keeps
     independent clients from artificially serializing in the co-sim. *)
  let tl = Timeline.create () in
  let s1 = Timeline.acquire tl ~at:1000 ~dur:100 in
  check Alcotest.int "late booking placed" 1000 s1;
  let s2 = Timeline.acquire tl ~at:0 ~dur:100 in
  check Alcotest.int "earlier arrival backfills" 0 s2;
  let s3 = Timeline.acquire tl ~at:0 ~dur:1000 in
  check Alcotest.int "too big for the gap, goes after" 1100 s3

let test_timeline_gap_too_small () =
  let tl = Timeline.create () in
  ignore (Timeline.acquire tl ~at:100 ~dur:50);
  ignore (Timeline.acquire tl ~at:300 ~dur:50);
  (* Gaps: [0,100), [150,300), [350,inf). A 200-long request at 0 only
     fits at 350. *)
  check Alcotest.int "skips both small gaps" 350 (Timeline.acquire tl ~at:0 ~dur:200);
  (* A 100-long request at 0 fits the first gap. *)
  check Alcotest.int "first gap" 0 (Timeline.acquire tl ~at:0 ~dur:100)

let prop_timeline_no_overlap =
  QCheck.Test.make ~count:200 ~name:"timeline slots never overlap"
    QCheck.(small_list (pair (int_bound 5000) (int_range 1 200)))
    (fun reqs ->
      let tl = Timeline.create () in
      let slots = List.map (fun (at, dur) -> (Timeline.acquire tl ~at ~dur, dur)) reqs in
      let sorted = List.sort compare slots in
      let rec ok = function
        | (s1, d1) :: ((s2, _) :: _ as rest) -> s1 + d1 <= s2 && ok rest
        | _ -> true
      in
      ok sorted
      && List.for_all2 (fun (at, _) (start, _) -> start >= at) reqs slots)

let test_timeline_hold_release () =
  let tl = Timeline.create () in
  let s = Timeline.hold tl ~at:50 in
  check Alcotest.int "uncontended hold" 50 s;
  Timeline.release tl ~at:200;
  check Alcotest.int "held until release" 200 (Timeline.hold tl ~at:100);
  check Alcotest.int "free after release" 250 (Timeline.hold tl ~at:250)

(* -- Conflict ------------------------------------------------------------- *)

let test_conflict_overlap () =
  let c = Conflict.create () in
  Conflict.record c ~start_:100 ~stop:200;
  check Alcotest.bool "inside" true (Conflict.overlaps c ~start_:150 ~stop:160);
  check Alcotest.bool "straddles" true (Conflict.overlaps c ~start_:50 ~stop:150);
  check Alcotest.bool "before" false (Conflict.overlaps c ~start_:0 ~stop:100);
  check Alcotest.bool "after" false (Conflict.overlaps c ~start_:200 ~stop:300)

let test_conflict_ring_eviction_conservative () =
  let c = Conflict.create ~capacity:4 () in
  for i = 0 to 9 do
    Conflict.record c ~start_:(i * 100) ~stop:((i * 100) + 10)
  done;
  (* Windows 0..5 were evicted; queries reaching before the evicted
     horizon must conservatively report an overlap. *)
  check Alcotest.bool "old window conservative" true (Conflict.overlaps c ~start_:115 ~stop:118);
  check Alcotest.bool "recent non-overlap precise" false
    (Conflict.overlaps c ~start_:915 ~stop:920);
  check Alcotest.int "count" 10 (Conflict.count c)

(* -- Sched ----------------------------------------------------------------- *)

let test_sched_interleaves_by_time () =
  let log = ref [] in
  let mk name cost n =
    let clk = Clock.create ~name () in
    let left = ref n in
    ( clk,
      Sched.stepper ~clock:clk ~step:(fun () ->
          if !left = 0 then false
          else begin
            decr left;
            log := (name, Clock.now clk) :: !log;
            Clock.advance clk cost;
            true
          end) )
  in
  let _, fast = mk "fast" 10 6 in
  let _, slow = mk "slow" 25 3 in
  Sched.run [ fast; slow ];
  let order = List.rev_map fst !log in
  (* With costs 10 vs 25 the fast client must run more often early on. *)
  check Alcotest.int "all steps ran" 9 (List.length order);
  check Alcotest.string "starts with one of each" "fast"
    (match order with a :: _ -> a | [] -> "none")

let test_sched_deadline () =
  let clk = Clock.create () in
  let steps = ref 0 in
  let c =
    Sched.stepper ~clock:clk ~step:(fun () ->
        incr steps;
        Clock.advance clk 100;
        true)
  in
  Sched.run ~deadline:1000 [ c ];
  check Alcotest.int "stopped at deadline" 10 !steps

let test_sched_makespan () =
  let a = Clock.create () and b = Clock.create () in
  Clock.advance a 100;
  Clock.advance b 250;
  check Alcotest.int "makespan" 250 (Sched.makespan [ a; b ])

let () =
  Alcotest.run "sim"
    [
      ( "simtime",
        [
          Alcotest.test_case "units" `Quick test_simtime_units;
          Alcotest.test_case "pretty printing" `Quick test_simtime_pp;
        ] );
      ( "latency",
        [
          Alcotest.test_case "line rounding" `Quick test_latency_lines;
          Alcotest.test_case "cost functions" `Quick test_latency_costs;
        ] );
      ( "clock",
        [
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "wait is idle" `Quick test_clock_wait_idle;
          Alcotest.test_case "utilization" `Quick test_clock_utilization;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "fifo queueing" `Quick test_timeline_fifo;
          Alcotest.test_case "backfills idle gaps" `Quick test_timeline_backfills_gaps;
          Alcotest.test_case "gap too small" `Quick test_timeline_gap_too_small;
          Alcotest.test_case "hold/release" `Quick test_timeline_hold_release;
          QCheck_alcotest.to_alcotest prop_timeline_no_overlap;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "overlap detection" `Quick test_conflict_overlap;
          Alcotest.test_case "ring eviction conservative" `Quick
            test_conflict_ring_eviction_conservative;
        ] );
      ( "sched",
        [
          Alcotest.test_case "virtual-time interleaving" `Quick test_sched_interleaves_by_time;
          Alcotest.test_case "deadline" `Quick test_sched_deadline;
          Alcotest.test_case "makespan" `Quick test_sched_makespan;
        ] );
    ]
