(* Cache edge cases: the MRU-hit fast path (regression for the [!=]-on-
   boxed-option bug), Hybrid sampling, patches clipped by a short final
   page, and reuse after [clear]. *)

open Asym_core

let check = Alcotest.check
let mk ?(choose_set = 8) ?(cap_pages = 4) policy =
  Cache.create ~choose_set ~policy ~page_size:64
    ~capacity_bytes:(cap_pages * 64)
    (Asym_util.Rng.create ~seed:7L)

let page c = Bytes.make 64 c

let test_mru_hit_does_not_relink () =
  let t = mk Cache.Lru in
  Cache.insert t 0 (page 'a');
  Cache.insert t 1 (page 'b');
  (* Page 1 is MRU. Hitting it repeatedly must leave the recency list
     untouched — the buggy [t.mru != Some n] relinked on every hit. *)
  let before = Cache.relinks t in
  for _ = 1 to 10 do
    ignore (Cache.find t 1)
  done;
  check Alcotest.int "MRU hits do not relink" before (Cache.relinks t);
  (* A hit on a non-MRU page must relink (that is what keeps LRU LRU). *)
  ignore (Cache.find t 0);
  check Alcotest.int "non-MRU hit relinks" (before + 1) (Cache.relinks t);
  check Alcotest.int "all hits counted" 11 (Cache.hits t)

let test_mru_recency_still_correct () =
  (* After a run of MRU hits, eviction order must be unchanged: page 0 is
     still the LRU victim. *)
  let t = mk ~cap_pages:2 Cache.Lru in
  Cache.insert t 0 (page 'a');
  Cache.insert t 1 (page 'b');
  for _ = 1 to 5 do
    ignore (Cache.find t 1)
  done;
  Cache.insert t 2 (page 'c');
  check Alcotest.bool "LRU page 0 evicted" true (Cache.find t 0 = None);
  check Alcotest.bool "MRU page 1 kept" true (Cache.find t 1 <> None)

let test_hybrid_evicts_oldest_of_sample () =
  (* With choose_set >= population the sample is exhaustive, so Hybrid
     must behave exactly like LRU: the globally oldest page goes. *)
  let t = mk ~choose_set:64 ~cap_pages:4 Cache.Hybrid in
  for id = 0 to 3 do
    Cache.insert t id (page 'x')
  done;
  (* Touch 0 and 2; 1 is now the oldest untouched page. *)
  ignore (Cache.find t 0);
  ignore (Cache.find t 2);
  Cache.insert t 4 (page 'y');
  check Alcotest.bool "oldest-of-sample evicted" true (Cache.find t 1 = None);
  List.iter
    (fun id ->
      check Alcotest.bool (Printf.sprintf "page %d survives" id) true (Cache.find t id <> None))
    [ 0; 2; 3; 4 ]

let test_patch_spanning_short_final_page () =
  let t = mk Cache.Lru in
  (* Page 1 holds only 16 bytes (the structure's tail), page 0 is full. *)
  Cache.insert t 0 (page 'a');
  Cache.insert t 1 (Bytes.make 16 'b');
  (* A patch covering [60, 100) crosses into page 1 but extends past its
     short tail: only bytes [64, 80) of it may land. *)
  Cache.patch t ~addr:60 (Bytes.make 40 'Z');
  (match Cache.find t 0 with
  | Some p ->
      check Alcotest.string "page 0 tail patched" "aZZZZ" (Bytes.to_string (Bytes.sub p 59 5))
  | None -> Alcotest.fail "page 0 evicted");
  match Cache.find t 1 with
  | Some p ->
      check Alcotest.int "short page length preserved" 16 (Bytes.length p);
      check Alcotest.string "short page fully patched" (String.make 16 'Z') (Bytes.to_string p)
  | None -> Alcotest.fail "page 1 evicted"

let test_patch_entirely_past_short_page () =
  let t = mk Cache.Lru in
  Cache.insert t 0 (Bytes.make 8 'a');
  (* Addr 32 is inside page 0's range but past its 8 stored bytes: the
     patch must be a no-op, not an out-of-bounds blit. *)
  Cache.patch t ~addr:32 (Bytes.make 8 'Z');
  match Cache.find t 0 with
  | Some p -> check Alcotest.string "untouched" (String.make 8 'a') (Bytes.to_string p)
  | None -> Alcotest.fail "page evicted"

let test_clear_then_reuse () =
  let t = mk ~cap_pages:2 Cache.Hybrid in
  Cache.insert t 0 (page 'a');
  Cache.insert t 1 (page 'b');
  Cache.clear t;
  check Alcotest.int "empty" 0 (Cache.length t);
  check Alcotest.bool "gone" true (Cache.find t 0 = None);
  (* Refill past capacity: eviction and the dense sample array must work
     on the recycled structure. *)
  for id = 10 to 14 do
    Cache.insert t id (page 'c')
  done;
  check Alcotest.int "at capacity" 2 (Cache.length t);
  ignore (Cache.find t 14);
  Cache.insert t 20 (page 'd');
  check Alcotest.int "still at capacity" 2 (Cache.length t)

let () =
  Alcotest.run "cache"
    [
      ( "recency",
        [
          Alcotest.test_case "MRU hit leaves list untouched" `Quick test_mru_hit_does_not_relink;
          Alcotest.test_case "recency order preserved" `Quick test_mru_recency_still_correct;
        ] );
      ( "eviction",
        [ Alcotest.test_case "hybrid oldest of sample" `Quick test_hybrid_evicts_oldest_of_sample ]
      );
      ( "patch",
        [
          Alcotest.test_case "spans short final page" `Quick test_patch_spanning_short_final_page;
          Alcotest.test_case "past short page is no-op" `Quick test_patch_entirely_past_short_page;
        ] );
      ("clear", [ Alcotest.test_case "clear then reuse" `Quick test_clear_then_reuse ]);
    ]
