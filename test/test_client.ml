open Asym_sim
open Asym_core

let check = Alcotest.check
let lat = Latency.default

let mk_backend () =
  Backend.create ~name:"bk" ~max_sessions:6 ~memlog_cap:(256 * 1024) ~oplog_cap:(128 * 1024)
    ~slab_size:1024 ~capacity:(8 * 1024 * 1024) lat

let mk_client ?(cfg = Client.r ()) ?(name = "fe") bk =
  let clk = Clock.create ~name () in
  (Client.connect ~name cfg bk ~clock:clk, clk)

(* -- overlay ---------------------------------------------------------------- *)

let test_overlay_patch () =
  let o = Overlay.create () in
  Overlay.add o ~addr:100 (Bytes.of_string "XY");
  let buf = Bytes.of_string "abcdef" in
  Overlay.patch o ~addr:98 buf;
  check Alcotest.string "patched middle" "abXYef" (Bytes.to_string buf)

let test_overlay_try_read () =
  let o = Overlay.create () in
  check Alcotest.bool "empty" true (Overlay.try_read o ~addr:0 ~len:4 = None);
  Overlay.add o ~addr:10 (Bytes.of_string "abcd");
  check Alcotest.bool "full cover" true
    (Overlay.try_read o ~addr:10 ~len:4 = Some (Bytes.of_string "abcd"));
  check Alcotest.bool "partial cover fails" true (Overlay.try_read o ~addr:9 ~len:4 = None);
  check Alcotest.bool "sub-range ok" true
    (Overlay.try_read o ~addr:11 ~len:2 = Some (Bytes.of_string "bc"))

let test_overlay_spans_blocks () =
  let o = Overlay.create () in
  let v = Bytes.init 200 (fun i -> Char.chr (i mod 256)) in
  Overlay.add o ~addr:60 v;
  (* 60..260 spans four 64-byte blocks. *)
  check Alcotest.bool "spanning read" true (Overlay.try_read o ~addr:60 ~len:200 = Some v);
  Overlay.clear o;
  check Alcotest.bool "cleared" true (Overlay.try_read o ~addr:60 ~len:1 = None)

let test_overlay_last_write_wins () =
  let o = Overlay.create () in
  Overlay.add o ~addr:0 (Bytes.of_string "aaaa");
  Overlay.add o ~addr:2 (Bytes.of_string "BB");
  check Alcotest.bool "overwrite" true (Overlay.try_read o ~addr:0 ~len:4 = Some (Bytes.of_string "aaBB"))

(* -- cache ------------------------------------------------------------------- *)

let mk_cache ?(policy = Cache.Hybrid) ?(pages = 8) () =
  Cache.create ~policy ~page_size:64 ~capacity_bytes:(pages * 64)
    (Asym_util.Rng.create ~seed:1L)

let test_cache_hit_miss () =
  let c = mk_cache () in
  check Alcotest.bool "miss" true (Cache.find c 5 = None);
  Cache.insert c 5 (Bytes.make 64 'x');
  check Alcotest.bool "hit" true (Cache.find c 5 <> None);
  check Alcotest.int "hits" 1 (Cache.hits c);
  check Alcotest.int "misses" 1 (Cache.misses c)

let test_cache_capacity_bounded () =
  let c = mk_cache ~pages:4 () in
  for i = 0 to 99 do
    Cache.insert c i (Bytes.make 64 'x')
  done;
  check Alcotest.int "bounded" 4 (Cache.length c)

let test_cache_lru_evicts_oldest () =
  let c = mk_cache ~policy:Cache.Lru ~pages:3 () in
  Cache.insert c 1 (Bytes.create 64);
  Cache.insert c 2 (Bytes.create 64);
  Cache.insert c 3 (Bytes.create 64);
  ignore (Cache.find c 1);
  (* 2 is now LRU *)
  Cache.insert c 4 (Bytes.create 64);
  check Alcotest.bool "1 kept" true (Cache.find c 1 <> None);
  check Alcotest.bool "2 evicted" true (Cache.find c 2 = None)

let test_cache_patch () =
  let c = mk_cache () in
  Cache.insert c 1 (Bytes.make 64 'a');
  (* page 1 covers addresses 64..127 *)
  Cache.patch c ~addr:70 (Bytes.of_string "ZZZ");
  match Cache.find c 1 with
  | Some b -> check Alcotest.string "patched" "aZZZa" (Bytes.sub_string b 5 5)
  | None -> Alcotest.fail "page lost"

let miss_ratio policy =
  (* Zipfian accesses over 512 pages with a 64-page cache. *)
  let rng = Asym_util.Rng.create ~seed:9L in
  let c = Cache.create ~policy ~page_size:64 ~capacity_bytes:(64 * 64) rng in
  let z = Asym_util.Zipf.create ~theta:0.9 ~n:512 (Asym_util.Rng.create ~seed:5L) in
  for _ = 1 to 30_000 do
    let p = Asym_util.Zipf.next z in
    match Cache.find c p with None -> Cache.insert c p (Bytes.create 64) | Some _ -> ()
  done;
  float_of_int (Cache.misses c) /. float_of_int (Cache.hits c + Cache.misses c)

let test_cache_hybrid_beats_rr () =
  let rr = miss_ratio Cache.Rr in
  let hybrid = miss_ratio Cache.Hybrid in
  let lru = miss_ratio Cache.Lru in
  check Alcotest.bool "hybrid < rr" true (hybrid < rr);
  check Alcotest.bool "hybrid close to lru" true (hybrid < lru +. 0.05)

(* -- two-tier allocator --------------------------------------------------------- *)

let test_front_alloc_local_fast_path () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let a = Client.allocator fe in
  let addrs = List.init 20 (fun _ -> Client.malloc fe 64) in
  check Alcotest.int "20 allocations" 20 (Front_alloc.allocations a);
  (* 1024-byte slabs hold 16 64-byte blocks and slabs are prefetched 8 at
     a time: 20 allocations need a single back-end RPC. *)
  check Alcotest.int "one slab rpc" 1 (Front_alloc.slab_rpcs a);
  let distinct = List.sort_uniq compare addrs in
  check Alcotest.int "all distinct" 20 (List.length distinct)

let test_front_alloc_free_reuse () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let x = Client.malloc fe 100 in
  Client.free fe x ~len:100;
  let y = Client.malloc fe 100 in
  check Alcotest.int "block reused" x y

let test_front_alloc_large_goes_remote () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let a = Client.allocator fe in
  let before = Front_alloc.slab_rpcs a in
  let big = Client.malloc fe 10_000 in
  check Alcotest.int "one rpc" (before + 1) (Front_alloc.slab_rpcs a);
  Client.free fe big ~len:10_000;
  let l = Backend.layout bk in
  check Alcotest.int "slab aligned" 0 ((big - l.Layout.data_base) mod l.Layout.slab_size)

let test_front_alloc_rpc_symmetry () =
  (* Every large alloc is one slab RPC and its free is another: the pair
     must move the counter by exactly two (the free path used to issue
     the free_slabs RPC without counting it). *)
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let a = Client.allocator fe in
  let before = Front_alloc.slab_rpcs a in
  let big = Client.malloc fe 10_000 in
  check Alcotest.int "alloc counted" (before + 1) (Front_alloc.slab_rpcs a);
  Client.free fe big ~len:10_000;
  check Alcotest.int "free counted" (before + 2) (Front_alloc.slab_rpcs a)

let test_front_alloc_misaligned_free_rejected () =
  let bk = mk_backend () in
  let fe, _ = mk_client bk in
  let x = Client.malloc fe 64 in
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Front_alloc.free: misaligned block") (fun () ->
      Client.free fe (x + 3) ~len:64)

(* -- read path ------------------------------------------------------------------- *)

let test_cached_read_cheaper_second_time () =
  let bk = mk_backend () in
  let fe, clk = mk_client ~cfg:(Client.rc ()) bk in
  let h = Client.register_ds fe "kv" in
  ignore h;
  let addr = Client.malloc fe 64 in
  ignore (Client.read fe ~addr ~len:64);
  let t1 = Clock.now clk in
  ignore (Client.read fe ~addr ~len:64);
  let dt = Clock.now clk - t1 in
  check Alcotest.bool "cache hit is sub-rtt" true (dt < lat.Latency.rdma_rtt_ns / 2)

let test_uncached_read_costs_rtt_every_time () =
  let bk = mk_backend () in
  let fe, clk = mk_client ~cfg:(Client.r ()) bk in
  let addr = Client.malloc fe 64 in
  let t0 = Clock.now clk in
  ignore (Client.read fe ~addr ~len:64);
  ignore (Client.read fe ~addr ~len:64);
  check Alcotest.bool "2 rtts" true (Clock.now clk - t0 >= 2 * lat.Latency.rdma_rtt_ns)

let test_cold_hint_bypasses_cache () =
  let bk = mk_backend () in
  let fe, _ = mk_client ~cfg:(Client.rc ()) bk in
  let addr = Client.malloc fe 64 in
  ignore (Client.read ~hint:`Cold fe ~addr ~len:64);
  let hits, misses = Client.cache_stats fe in
  check Alcotest.int "no cache traffic" 0 (hits + misses)

let test_read_own_write_before_flush () =
  let bk = mk_backend () in
  let fe, _ = mk_client ~cfg:(Client.rcb ~batch_size:100 ()) bk in
  let h = Client.register_ds fe "kv" in
  let addr = Client.malloc fe 64 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write fe ~ds:h.Types.id ~addr (Bytes.of_string "pending!");
  check Alcotest.string "overlay serves it" "pending!"
    (Bytes.to_string (Client.read fe ~addr ~len:8));
  Client.op_end fe ~ds:h.Types.id;
  (* Not yet flushed (batch 100): remote data area must NOT have it. *)
  check Alcotest.bool "not yet durable" true
    (Bytes.to_string (Asym_nvm.Device.read (Backend.device bk) ~addr ~len:8) <> "pending!");
  Client.flush fe;
  check Alcotest.string "durable after flush" "pending!"
    (Bytes.to_string (Asym_nvm.Device.read (Backend.device bk) ~addr ~len:8))

(* -- naive (direct) mode ------------------------------------------------------------ *)

let test_direct_mode_writes_in_place () =
  let bk = mk_backend () in
  let fe, _ = mk_client ~cfg:(Client.naive ()) bk in
  let h = Client.register_ds fe "kv" in
  let addr = Client.malloc fe 64 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write fe ~ds:h.Types.id ~addr (Bytes.of_string "immediate");
  (* Durable before op_end: direct RDMA write. *)
  check Alcotest.string "in place" "immediate"
    (Bytes.to_string (Asym_nvm.Device.read (Backend.device bk) ~addr ~len:9));
  Client.op_end fe ~ds:h.Types.id;
  check Alcotest.int "no tx replay in naive mode" 0 (Backend.replayed_txs bk)

let test_naive_slower_than_logged () =
  let run cfg =
    let bk = mk_backend () in
    let fe, clk = mk_client ~cfg bk in
    let h = Client.register_ds fe "kv" in
    let addr = Client.malloc fe 256 in
    let t0 = Clock.now clk in
    for i = 0 to 99 do
      ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
      (* Four small field writes per operation, as a tree insert would do. *)
      for f = 0 to 3 do
        Client.write_u64 fe ~ds:h.Types.id (addr + (8 * f)) (Int64.of_int (i + f))
      done;
      Client.op_end fe ~ds:h.Types.id
    done;
    Clock.now clk - t0
  in
  let naive = run (Client.naive ()) in
  let logged = run (Client.r ()) in
  let batched = run (Client.rcb ~batch_size:64 ()) in
  check Alcotest.bool "R faster than naive" true (logged < naive);
  check Alcotest.bool "RCB faster than R" true (batched < logged)

(* -- op log / pending ops --------------------------------------------------------- *)

let test_pending_ops_visible_until_flush () =
  let bk = mk_backend () in
  let fe, _ = mk_client ~cfg:(Client.rcb ~batch_size:10 ()) bk in
  let h = Client.register_ds fe "stack" in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:7 ~params:(Bytes.of_string "a"));
  Client.op_end fe ~ds:h.Types.id;
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:8 ~params:(Bytes.of_string "b"));
  Client.op_end fe ~ds:h.Types.id;
  let ops = Client.pending_ops fe ~ds:h.Types.id in
  check Alcotest.int "two pending" 2 (List.length ops);
  check (Alcotest.list Alcotest.int) "order and types" [ 7; 8 ]
    (List.map (fun (_, ty, _) -> ty) ops);
  Client.flush fe;
  check Alcotest.int "cleared by flush" 0 (List.length (Client.pending_ops fe ~ds:h.Types.id))

(* -- property tests --------------------------------------------------------- *)

let prop_allocations_never_overlap =
  QCheck.Test.make ~count:50 ~name:"live allocations never overlap"
    QCheck.(small_list (pair (int_range 1 600) bool))
    (fun reqs ->
      let bk = mk_backend () in
      let fe, _ = mk_client bk in
      let live = Hashtbl.create 16 in
      List.iteri
        (fun i (size, free_one) ->
          if free_one && Hashtbl.length live > 0 then begin
            let addr, len = Hashtbl.fold (fun a l _ -> (a, l)) live (0, 0) in
            Hashtbl.remove live addr;
            Client.free fe addr ~len
          end
          else begin
            let addr = Client.malloc fe size in
            Hashtbl.replace live addr size;
            ignore i
          end)
        reqs;
      (* No two live allocations may intersect. *)
      let spans = Hashtbl.fold (fun a l acc -> (a, a + l) :: acc) live [] in
      let sorted = List.sort compare spans in
      let rec disjoint = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
        | _ -> true
      in
      disjoint sorted)

let prop_cache_never_exceeds_capacity =
  QCheck.Test.make ~count:100 ~name:"cache stays within capacity for any policy"
    QCheck.(pair (int_range 1 16) (small_list (int_bound 200)))
    (fun (pages, accesses) ->
      List.for_all
        (fun policy ->
          let c =
            Cache.create ~policy ~page_size:64 ~capacity_bytes:(pages * 64)
              (Asym_util.Rng.create ~seed:3L)
          in
          List.iter
            (fun id ->
              match Cache.find c id with
              | Some _ -> ()
              | None -> Cache.insert c id (Bytes.create 64))
            accesses;
          Cache.length c <= pages)
        [ Cache.Lru; Cache.Rr; Cache.Hybrid ])

let prop_overlay_matches_byte_model =
  QCheck.Test.make ~count:150 ~name:"overlay patch/try_read vs flat byte model"
    QCheck.(small_list (pair (int_bound 200) (string_of_size Gen.(1 -- 24))))
    (fun writes ->
      let o = Overlay.create () in
      let model = Bytes.make 256 '\000' in
      let written = Array.make 256 false in
      List.iter
        (fun (addr, s) ->
          let s = if addr + String.length s > 256 then String.sub s 0 (256 - addr) else s in
          if String.length s > 0 then begin
            Overlay.add o ~addr (Bytes.of_string s);
            Bytes.blit_string s 0 model addr (String.length s);
            for i = addr to addr + String.length s - 1 do
              written.(i) <- true
            done
          end)
        writes;
      (* patch must overlay exactly the written bytes... *)
      let base = Bytes.make 256 '\xff' in
      Overlay.patch o ~addr:0 base;
      let patch_ok = ref true in
      for i = 0 to 255 do
        let expect = if written.(i) then Bytes.get model i else '\xff' in
        if Bytes.get base i <> expect then patch_ok := false
      done;
      (* ...and try_read succeeds exactly on fully-written ranges. *)
      let try_ok = ref true in
      List.iter
        (fun (addr, s) ->
          let len = min (String.length s) (256 - addr) in
          if len > 0 then
            match Overlay.try_read o ~addr ~len with
            | Some b -> if not (Bytes.equal b (Bytes.sub model addr len)) then try_ok := false
            | None -> try_ok := false)
        writes;
      !patch_ok && !try_ok)

let prop_cache_readback =
  QCheck.Test.make ~count:100 ~name:"cache returns the last inserted/patched bytes"
    QCheck.(small_list (pair (int_bound 7) (string_of_size Gen.(return 64))))
    (fun writes ->
      let c = mk_cache ~pages:8 () in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (id, s) ->
          Cache.insert c id (Bytes.of_string s);
          Hashtbl.replace model id s)
        writes;
      Hashtbl.fold
        (fun id s acc ->
          acc
          &&
          match Cache.find c id with
          | Some b -> Bytes.to_string b = s
          | None -> true (* evicted is fine; wrong bytes are not *))
        model true)

let () =
  Alcotest.run "client"
    [
      ( "overlay",
        [
          Alcotest.test_case "patch" `Quick test_overlay_patch;
          Alcotest.test_case "try_read" `Quick test_overlay_try_read;
          Alcotest.test_case "spans blocks" `Quick test_overlay_spans_blocks;
          Alcotest.test_case "last write wins" `Quick test_overlay_last_write_wins;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "capacity bounded" `Quick test_cache_capacity_bounded;
          Alcotest.test_case "lru evicts oldest" `Quick test_cache_lru_evicts_oldest;
          Alcotest.test_case "patch" `Quick test_cache_patch;
          Alcotest.test_case "hybrid between rr and lru" `Slow test_cache_hybrid_beats_rr;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "local fast path" `Quick test_front_alloc_local_fast_path;
          Alcotest.test_case "free/reuse" `Quick test_front_alloc_free_reuse;
          Alcotest.test_case "large goes remote" `Quick test_front_alloc_large_goes_remote;
          Alcotest.test_case "alloc/free rpc symmetry" `Quick test_front_alloc_rpc_symmetry;
          Alcotest.test_case "misaligned free rejected" `Quick
            test_front_alloc_misaligned_free_rejected;
        ] );
      ( "reads",
        [
          Alcotest.test_case "cached read cheaper" `Quick test_cached_read_cheaper_second_time;
          Alcotest.test_case "uncached pays rtt" `Quick test_uncached_read_costs_rtt_every_time;
          Alcotest.test_case "cold hint bypasses cache" `Quick test_cold_hint_bypasses_cache;
          Alcotest.test_case "read own write" `Quick test_read_own_write_before_flush;
        ] );
      ( "modes",
        [
          Alcotest.test_case "direct writes in place" `Quick test_direct_mode_writes_in_place;
          Alcotest.test_case "naive < R < RCB" `Quick test_naive_slower_than_logged;
        ] );
      ( "oplog",
        [
          Alcotest.test_case "pending ops until flush" `Quick test_pending_ops_visible_until_flush;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_allocations_never_overlap;
          QCheck_alcotest.to_alcotest prop_cache_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest prop_cache_readback;
          QCheck_alcotest.to_alcotest prop_overlay_matches_byte_model;
        ] );
    ]
