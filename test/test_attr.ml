(* Latency attribution: the conservation property (every virtual
   nanosecond carries exactly one cause tag, so per-cause sums equal
   elapsed virtual time — zero tolerance), the Timeline queue/service
   split, and the Attr sink's windowing primitives. *)

open Asym_obs
open Asym_sim
module Runner = Asym_harness.Runner
module Breakdown = Asym_harness.Breakdown

let check = Alcotest.check

let with_obs f () =
  set_enabled true;
  reset ();
  Fun.protect f ~finally:(fun () ->
      reset ();
      set_enabled false)

(* -- sink primitives -------------------------------------------------------- *)

let test_gate () =
  set_enabled false;
  reset ();
  Attr.charge Attr.Rdma_rtt 100;
  check Alcotest.int "gate off: charge is a no-op" 0 (Attr.total ());
  set_enabled true;
  Attr.charge Attr.Rdma_rtt 100;
  Attr.charge Attr.Nvm_media 0;
  Attr.charge Attr.Nvm_media (-5);
  check Alcotest.int "non-positive charges ignored" 100 (Attr.total ());
  check Alcotest.int "charged cause" 100 (Attr.get Attr.Rdma_rtt);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "breakdown lists non-zero causes only"
    [ ("rdma_rtt", 100) ]
    (List.map (fun (c, v) -> (Attr.name c, v)) (Attr.breakdown ()))

let test_names_roundtrip () =
  List.iter
    (fun c ->
      check Alcotest.bool (Attr.name c) true (Attr.of_name (Attr.name c) = Some c))
    Attr.all;
  check Alcotest.bool "unknown name" true (Attr.of_name "bogus" = None)

let test_since_reattribute () =
  Attr.charge Attr.Rdma_rtt 50;
  let mark = Attr.snapshot () in
  Attr.charge Attr.Rdma_rtt 20;
  Attr.charge Attr.Lock_wait 30;
  let delta = Attr.since mark in
  check Alcotest.int "since covers all nine causes" (List.length Attr.all)
    (List.length delta);
  check Alcotest.int "rtt delta" 20 (List.assoc Attr.Rdma_rtt delta);
  check Alcotest.int "lock delta" 30 (List.assoc Attr.Lock_wait delta);
  check Alcotest.int "untouched cause delta" 0 (List.assoc Attr.Nvm_media delta);
  (* Re-classify the window: total preserved, window moved to one cause. *)
  Attr.reattribute ~since:mark Attr.Read_retry;
  check Alcotest.int "total preserved" 100 (Attr.total ());
  check Alcotest.int "window now read_retry" 50 (Attr.get Attr.Read_retry);
  check Alcotest.int "pre-window rtt kept" 50 (Attr.get Attr.Rdma_rtt)

let test_flush_to_registry () =
  Attr.charge Attr.Nvm_media 7;
  Attr.charge Attr.Local_compute 3;
  Attr.flush_to_registry ();
  check Alcotest.int "sink cleared" 0 (Attr.total ());
  check Alcotest.int "media counter" 7
    (Registry.counter_value ~labels:[ ("cause", "nvm_media") ] "attr.ns");
  check Alcotest.int "compute counter" 3
    (Registry.counter_value ~labels:[ ("cause", "local_compute") ] "attr.ns")

(* -- clock-level conservation ----------------------------------------------- *)

(* QCheck: any interleaving of tagged advances and wait_untils charges
   exactly the virtual time the clock moved through. *)
let prop_clock_conservation =
  let cause_gen =
    QCheck.Gen.oneofl Attr.all
  in
  let step_gen = QCheck.Gen.(pair cause_gen (int_range 0 5_000)) in
  let arb =
    QCheck.make
      ~print:(fun steps ->
        String.concat ";"
          (List.map (fun (c, d) -> Printf.sprintf "%s+%d" (Attr.name c) d) steps))
      QCheck.Gen.(list_size (int_range 1 200) step_gen)
  in
  QCheck.Test.make ~name:"clock charges == elapsed virtual time" ~count:100 arb
    (fun steps ->
      set_enabled true;
      reset ();
      Fun.protect
        ~finally:(fun () ->
          reset ();
          set_enabled false)
        (fun () ->
          let clk = Clock.create ~name:"prop" () in
          List.iteri
            (fun i (cause, d) ->
              if i mod 3 = 2 then Clock.wait_until ~cause clk (Clock.now clk + d)
              else Clock.advance ~cause clk d)
            steps;
          Attr.total () = Clock.now clk))

(* -- timeline queue/service split ------------------------------------------- *)

let test_timeline_contention () =
  let tl = Timeline.create ~name:"res" () in
  (* Five requests all arriving at t=0 for 100 ns each: request i waits
     i*100 then runs 100. *)
  let finishes =
    List.init 5 (fun _ ->
        let start = Timeline.acquire tl ~at:0 ~dur:100 in
        start + 100)
  in
  check (Alcotest.list Alcotest.int) "FIFO back-to-back grants"
    [ 100; 200; 300; 400; 500 ] finishes;
  check Alcotest.int "queued_total" 1000 (Timeline.queued_total tl);
  let counter n = Registry.counter_value ~labels:[ ("resource", "res") ] n in
  check Alcotest.int "queue_ns counter" 1000 (counter "timeline.queue_ns");
  check Alcotest.int "service_ns counter" 500 (counter "timeline.service_ns");
  (* Per-request conservation: wait + service == completion - request,
     summed over all requests (every request was issued at t=0). *)
  check Alcotest.int "queue + service == sum of sojourn times"
    (List.fold_left (fun acc f -> acc + f) 0 finishes)
    (counter "timeline.queue_ns" + counter "timeline.service_ns")

let test_timeline_hold_release () =
  let tl = Timeline.create ~name:"mtx" () in
  let s0 = Timeline.hold tl ~at:0 in
  check Alcotest.int "uncontended hold starts immediately" 0 s0;
  Timeline.release tl ~at:50;
  let s1 = Timeline.hold tl ~at:20 in
  check Alcotest.int "contended hold waits for release" 50 s1;
  Timeline.release tl ~at:80;
  let counter n = Registry.counter_value ~labels:[ ("resource", "mtx") ] n in
  check Alcotest.int "hold queue time" 30 (counter "timeline.queue_ns");
  check Alcotest.int "held service time" 80 (counter "timeline.service_ns")

(* -- whole-stack conservation ----------------------------------------------- *)

(* The acceptance property: a 1000-op BPT RCB run attributes every
   nanosecond of the measured window — per-cause sums equal elapsed
   virtual time with 0 ns tolerance. *)
let test_conservation_bpt_rcb () =
  let cell =
    Breakdown.run_cell ~put_ratio:0.5
      ~rig:(Runner.make_rig Latency.default)
      ~cfg:(Asym_core.Client.rcb ()) ~preload:1000 ~ops:1000 Runner.Bpt
  in
  check Alcotest.int "ops measured" 1000 cell.Breakdown.res.Runner.ops;
  check Alcotest.int "per-cause ns sum to elapsed (exact)"
    cell.Breakdown.res.Runner.elapsed (Breakdown.attr_total cell)

(* Same invariant across all eight structures (smaller runs), under the
   full RCB stack where every subsystem participates. *)
let test_conservation_all_structures () =
  List.iter
    (fun kind ->
      let put_ratio = if Runner.is_fifo kind then 1.0 else 0.5 in
      let cell =
        Breakdown.run_cell ~put_ratio
          ~rig:(Runner.make_rig Latency.default)
          ~cfg:(Asym_core.Client.rcb ()) ~preload:300 ~ops:300 kind
      in
      check Alcotest.int
        (Printf.sprintf "%s: attributed == elapsed" (Runner.ds_name kind))
        cell.Breakdown.res.Runner.elapsed (Breakdown.attr_total cell))
    Runner.all_ds

let () =
  Alcotest.run "attr"
    [
      ( "sink",
        [
          Alcotest.test_case "gate" `Quick test_gate;
          Alcotest.test_case "names round-trip" `Quick (with_obs (fun () -> test_names_roundtrip ()));
          Alcotest.test_case "since/reattribute" `Quick (with_obs (fun () -> test_since_reattribute ()));
          Alcotest.test_case "flush to registry" `Quick (with_obs (fun () -> test_flush_to_registry ()));
        ] );
      ("clock", [ QCheck_alcotest.to_alcotest prop_clock_conservation ]);
      ( "timeline",
        [
          Alcotest.test_case "queue/service under contention" `Quick
            (with_obs (fun () -> test_timeline_contention ()));
          Alcotest.test_case "hold/release booking" `Quick
            (with_obs (fun () -> test_timeline_hold_release ()));
        ] );
      ( "conservation",
        [
          Alcotest.test_case "1000-op BPT RCB" `Quick test_conservation_bpt_rcb;
          Alcotest.test_case "all eight structures" `Quick test_conservation_all_structures;
        ] );
    ]
