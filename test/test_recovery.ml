(* Crash-consistency and replication tests: the five failure cases of
   paper §7.2, torn-write detection, replay idempotence, lock-ahead
   recovery and mirror promotion. *)

open Asym_sim
open Asym_core
open Asym_structs

let check = Alcotest.check
let lat = Latency.default
let v s = Bytes.of_string s
let bytes_eq = Alcotest.testable (fun fmt b -> Fmt.string fmt (Bytes.to_string b)) Bytes.equal

module Bst = Pbst.Make (Client)
module Hash = Phash.Make (Client)
module Stack = Pstack.Make (Client)

let mk_backend ?(name = "bk") () =
  Backend.create ~name ~max_sessions:8 ~memlog_cap:(512 * 1024) ~oplog_cap:(256 * 1024)
    ~slab_size:4096 ~capacity:(16 * 1024 * 1024) lat

let mk_client ?(cfg = Client.rcb ~batch_size:16 ()) ?(name = "fe") bk =
  Client.connect ~name cfg bk ~clock:(Clock.create ~name ())

(* -- Case 1: front-end reader crash ------------------------------------- *)

let test_case1_reader_crash () =
  let bk = mk_backend () in
  let fe = mk_client bk in
  let t = Bst.attach fe ~name:"bst" in
  for i = 0 to 19 do
    Bst.put t ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  Client.flush fe;
  Client.crash fe;
  let ops = Client.recover fe in
  check Alcotest.int "nothing to replay" 0 (List.length ops);
  (* Resume reads through naming. *)
  let t = Bst.attach fe ~name:"bst" in
  check (Alcotest.option bytes_eq) "data intact" (Some (v "7")) (Bst.find t ~key:7L)

(* -- Case 2: front-end writer crash -------------------------------------- *)

let test_case2a_writer_crash_all_flushed () =
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let t = Bst.attach fe ~name:"bst" in
  for i = 0 to 9 do
    Bst.put t ~key:(Int64.of_int i) ~value:(v "x")
  done;
  (* batch=1: every op flushed synchronously. *)
  Client.crash fe;
  let ops = Client.recover fe in
  check Alcotest.int "no unreplayed ops" 0 (List.length ops);
  let t = Bst.attach fe ~name:"bst" in
  check Alcotest.int "all ten present" 10 (List.length (Bst.to_list t))

let test_case2c_writer_crash_mid_batch () =
  (* Operation logs are durable per op; memory logs of the open batch die
     with the front-end. Recovery returns exactly the uncovered ops and
     re-executing them restores the full state. *)
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:64 ()) bk in
  let t = Bst.attach fe ~name:"bst" in
  for i = 0 to 29 do
    Bst.put t ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  (* batch 64 not reached: nothing flushed since the last attach flush. *)
  Client.crash fe;
  let ops = Client.recover fe in
  check Alcotest.bool "some ops to replay" true (List.length ops = 30);
  let t = Bst.attach fe ~name:"bst" in
  let reg = Registry.create () in
  Registry.register reg ~ds:(Bst.handle t).Types.id (Bst.replay t);
  Registry.replay_all reg ops;
  Client.flush fe;
  let l = Bst.to_list t in
  check Alcotest.int "all thirty restored" 30 (List.length l);
  check (Alcotest.option bytes_eq) "value ok" (Some (v "17")) (Bst.find t ~key:17L)

let test_case2_partial_batch_replay () =
  (* Crash with a batch partially flushed: covered ops must NOT be
     re-executed, uncovered ones must. *)
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:10 ()) bk in
  let t = Stack.attach fe ~name:"st" in
  for i = 0 to 24 do
    Stack.push t (v (string_of_int i))
  done;
  (* 25 pushes: 20 flushed (two batches), 5 pending. *)
  Client.crash fe;
  let ops = Client.recover fe in
  check Alcotest.int "five uncovered" 5 (List.length ops);
  let t = Stack.attach fe ~name:"st" in
  check Alcotest.int "twenty survived" 20 (Stack.size t);
  let reg = Registry.create () in
  Registry.register reg ~ds:(Stack.handle t).Types.id (Stack.replay t);
  Registry.replay_all reg ops;
  Client.flush fe;
  check Alcotest.int "all twenty-five" 25 (Stack.size t);
  check (Alcotest.option bytes_eq) "top is last push" (Some (v "24")) (Stack.peek t)

let test_case2b_torn_memlog_detected () =
  (* A torn transaction in the memory-log ring is detected by checksum on
     restart and reported; the intact prefix is preserved. *)
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let h = Client.register_ds fe "raw" in
  let addr = Client.malloc fe 64 in
  ignore (Client.op_begin fe ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write_u64 fe ~ds:h.Types.id addr 1L;
  Client.op_end fe ~ds:h.Types.id;
  (* Hand-write a transaction into the ring and tear it. *)
  let ring_base, _ = Backend.memlog_ring bk ~session:(Client.session fe) in
  let cursors = Backend.session_cursors bk ~session:(Client.session fe) in
  let tx =
    Log.Tx.encode
      {
        Log.Tx.ds = h.Types.id;
        op_hi = 99L;
        entries = [ Log.Mem_entry.make ~addr (Bytes.of_string "DEADBEEF") ];
      }
  in
  Asym_nvm.Device.write (Backend.device bk) ~addr:(ring_base + cursors.Rpc_msg.memlog_head) tx;
  Backend.crash ~torn_keep:(Bytes.length tx - 3) bk;
  let statuses = Backend.restart bk in
  check Alcotest.bool "torn tail reported" true
    (List.mem (Client.session fe, Backend.Session_torn_tail) statuses);
  (* The committed value survived; the torn record was not applied. *)
  check Alcotest.int64 "prefix intact" 1L (Asym_nvm.Device.read_u64 (Backend.device bk) ~addr)

(* -- Case 3: back-end transient failure ----------------------------------- *)

let test_case3_backend_transient () =
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:8 ()) bk in
  let t = Hash.attach ~nbuckets:64 fe ~name:"h" in
  for i = 0 to 15 do
    Hash.put t ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  (* Backend dies; in-flight ops observe Failure_detected via the RNIC. *)
  Backend.crash bk;
  (try Hash.put t ~key:100L ~value:(v "lost") with Asym_rdma.Verbs.Failure_detected _ -> ());
  Client.abort_tx fe;
  ignore (Backend.restart bk);
  Client.reconnect_after_backend_restart fe;
  let ops = Client.recover fe in
  let reg = Registry.create () in
  Registry.register reg ~ds:(Hash.handle t).Types.id (Hash.replay t);
  Registry.replay_all reg ops;
  Client.flush fe;
  (* Everything acked before the crash must be present. *)
  for i = 0 to 15 do
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "key %d" i)
      (Some (v (string_of_int i)))
      (Hash.get t ~key:(Int64.of_int i))
  done;
  (* And the system accepts new writes. *)
  Hash.put t ~key:500L ~value:(v "after");
  check (Alcotest.option bytes_eq) "new write ok" (Some (v "after")) (Hash.get t ~key:500L)

let test_case3_restart_replay_idempotent () =
  (* Restarting twice (replaying the same LPN region) must not corrupt. *)
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let t = Bst.attach fe ~name:"b" in
  for i = 0 to 9 do
    Bst.put t ~key:(Int64.of_int i) ~value:(v "x")
  done;
  Backend.crash bk;
  ignore (Backend.restart bk);
  Backend.crash bk;
  ignore (Backend.restart bk);
  Client.reconnect_after_backend_restart fe;
  let t = Bst.attach fe ~name:"b" in
  check Alcotest.int "ten keys" 10 (List.length (Bst.to_list t))

(* -- Case 4: back-end permanent failure, mirror promotion ------------------ *)

let mirrored_backend () =
  let bk = mk_backend () in
  let m1 = Mirror.create ~name:"m1" ~kind:Mirror.Nvm_backed ~capacity:(16 * 1024 * 1024) lat in
  let m2 = Mirror.create ~name:"m2" ~kind:Mirror.Ssd_backed ~capacity:(16 * 1024 * 1024) lat in
  Backend.attach_mirror bk m1;
  Backend.attach_mirror bk m2;
  (bk, m1, m2)

let test_mirror_image_tracks_backend () =
  let bk, m1, _ = mirrored_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:4 ()) bk in
  let t = Bst.attach fe ~name:"b" in
  for i = 0 to 31 do
    Bst.put t ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  Client.flush fe;
  (* The replicated regions (everything except transient lock words and
     sequence numbers in the meta heap) must match byte for byte. *)
  let l = Backend.layout bk in
  let a = Asym_nvm.Device.snapshot (Backend.device bk) in
  let b = Asym_nvm.Device.snapshot (Mirror.device m1) in
  let region name lo len =
    check Alcotest.bool (name ^ " replicated") true
      (Bytes.sub a lo len = Bytes.sub b lo len)
  in
  region "naming" l.Layout.naming_base l.Layout.naming_len;
  region "bitmap" l.Layout.bitmap_base l.Layout.bitmap_len;
  region "data" l.Layout.data_base (l.Layout.n_slabs * l.Layout.slab_size)

let test_case4_promote_nvm_mirror () =
  let bk, m1, m2 = mirrored_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:4 ()) bk in
  let t = Bst.attach fe ~name:"b" in
  for i = 0 to 49 do
    Bst.put t ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  Client.flush fe;
  Backend.crash bk;
  (* Vote: the NVM mirror wins over the SSD mirror. *)
  check Alcotest.bool "nvm mirror elected" true
    (match Asym_cluster.Failover.elect [ m2; m1 ] with Some m -> m == m1 | None -> false);
  let bk' = Asym_cluster.Failover.promote m1 lat in
  Client.switch_backend fe bk';
  let t = Bst.attach fe ~name:"b" in
  check Alcotest.int "all keys on new backend" 50 (List.length (Bst.to_list t));
  check (Alcotest.option bytes_eq) "spot check" (Some (v "33")) (Bst.find t ~key:33L);
  (* The promoted back-end accepts new writes. *)
  Bst.put t ~key:1000L ~value:(v "new-era");
  check (Alcotest.option bytes_eq) "post-promotion write" (Some (v "new-era"))
    (Bst.find t ~key:1000L)

let test_case4_promote_ssd_mirror () =
  let bk, m1, m2 = mirrored_backend () in
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let t = Hash.attach ~nbuckets:32 fe ~name:"h" in
  for i = 0 to 19 do
    Hash.put t ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  Backend.crash bk;
  Mirror.crash m1;
  (* Only the SSD mirror survives: rebuild onto a fresh NVM device. *)
  match Asym_cluster.Failover.elect [ m1; m2 ] with
  | Some m when m == m2 ->
      let bk' = Asym_cluster.Failover.promote m2 lat in
      Client.switch_backend fe bk';
      let t = Hash.attach ~nbuckets:32 fe ~name:"h" in
      check (Alcotest.option bytes_eq) "rebuilt" (Some (v "11")) (Hash.get t ~key:11L)
  | _ -> Alcotest.fail "expected ssd mirror election"

let test_case4_failover_helper () =
  let bk, m1, _ = mirrored_backend () in
  let fe = mk_client bk in
  let t = Bst.attach fe ~name:"b" in
  Bst.put t ~key:1L ~value:(v "one");
  Client.flush fe;
  Backend.crash bk;
  match Asym_cluster.Failover.failover ~dead:bk lat with
  | None -> Alcotest.fail "no successor"
  | Some bk' ->
      ignore m1;
      Client.switch_backend fe bk';
      let t = Bst.attach fe ~name:"b" in
      check (Alcotest.option bytes_eq) "survived" (Some (v "one")) (Bst.find t ~key:1L)

(* -- Case 5: mirror crash --------------------------------------------------- *)

let test_case5_mirror_crash_service_continues () =
  let bk, m1, m2 = mirrored_backend () in
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let t = Bst.attach fe ~name:"b" in
  Bst.put t ~key:1L ~value:(v "before");
  Mirror.crash m1;
  (* Replication to the dead mirror is skipped; service continues. *)
  Bst.put t ~key:2L ~value:(v "during");
  check (Alcotest.option bytes_eq) "writes continue" (Some (v "during")) (Bst.find t ~key:2L);
  (* The surviving mirror can still take over. *)
  Backend.crash bk;
  check Alcotest.bool "m2 elected" true
    (match Asym_cluster.Failover.elect [ m1; m2 ] with Some m -> m == m2 | None -> false)

let test_mirror_replication_counters () =
  let bk = mk_backend () in
  let m = Mirror.create ~name:"m" ~kind:Mirror.Nvm_backed ~capacity:(16 * 1024 * 1024) lat in
  Backend.attach_mirror bk m;
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let t = Bst.attach fe ~name:"b" in
  (* Session setup already replicated naming/metadata writes; the data
     operations below must add to the stream. *)
  let w0 = Mirror.writes_replicated m in
  for i = 0 to 9 do
    Bst.put t ~key:(Int64.of_int i) ~value:(v "x")
  done;
  check Alcotest.bool "log stream flowed to the mirror" true (Mirror.writes_replicated m > w0);
  check Alcotest.bool "bytes accounted" true (Mirror.bytes_replicated m > 0)

let test_crashed_mirror_skipped_then_restarted () =
  let bk = mk_backend () in
  let m = Mirror.create ~name:"m" ~kind:Mirror.Nvm_backed ~capacity:(16 * 1024 * 1024) lat in
  Backend.attach_mirror bk m;
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let t = Bst.attach fe ~name:"b" in
  Mirror.crash m;
  let w0 = Mirror.writes_replicated m in
  Bst.put t ~key:1L ~value:(v "lost-to-mirror");
  check Alcotest.int "crashed mirror receives nothing" w0 (Mirror.writes_replicated m);
  Mirror.restart m;
  Bst.put t ~key:2L ~value:(v "replicated-again");
  check Alcotest.bool "restarted mirror receives again" true (Mirror.writes_replicated m > w0)

(* -- keepAlive ---------------------------------------------------------------- *)

let test_keepalive_lease_expiry () =
  let ka = Asym_cluster.Keepalive.create ~lease:(Simtime.ms 10) (Asym_util.Rng.create ~seed:1L) in
  Asym_cluster.Keepalive.register ka "backend" ~now:0;
  Asym_cluster.Keepalive.register ka "fe1" ~now:0;
  check Alcotest.bool "alive after register" true
    (Asym_cluster.Keepalive.alive ka "backend" ~now:(Simtime.ms 5));
  Asym_cluster.Keepalive.renew ka "backend" ~now:(Simtime.ms 8);
  check Alcotest.bool "alive after renew" true
    (Asym_cluster.Keepalive.alive ka "backend" ~now:(Simtime.ms 15));
  check Alcotest.bool "fe1 expired" false
    (Asym_cluster.Keepalive.alive ka "fe1" ~now:(Simtime.ms 15));
  check
    (Alcotest.list Alcotest.string)
    "crashed list" [ "fe1" ]
    (Asym_cluster.Keepalive.crashed ka ~now:(Simtime.ms 15))

let test_keepalive_unknown_node_dead () =
  let ka = Asym_cluster.Keepalive.create (Asym_util.Rng.create ~seed:2L) in
  check Alcotest.bool "unknown is dead" false (Asym_cluster.Keepalive.alive ka "ghost" ~now:0)

let test_keepalive_majority_skew () =
  (* With skew, replicas disagree near the boundary; the majority rule
     still gives a definite verdict. *)
  let ka =
    Asym_cluster.Keepalive.create ~replicas:5 ~lease:(Simtime.ms 1) ~skew:(Simtime.us 200)
      (Asym_util.Rng.create ~seed:3L)
  in
  Asym_cluster.Keepalive.register ka "n" ~now:0;
  check Alcotest.bool "well before expiry" true
    (Asym_cluster.Keepalive.alive ka "n" ~now:(Simtime.us 500));
  check Alcotest.bool "well after expiry" false
    (Asym_cluster.Keepalive.alive ka "n" ~now:(Simtime.ms 3))

let test_keepalive_exact_majority_boundary () =
  (* With an even ensemble a split vote is not a majority: the node is
     declared crashed only when strictly more than half the replicas saw
     its lease expire. Reconstruct the per-replica skews with a twin rng
     to place the probe time between the 2nd and 3rd observation. *)
  let seed = 5L and lease = Simtime.ms 10 and skew = Simtime.ms 4 in
  let ka =
    Asym_cluster.Keepalive.create ~replicas:4 ~lease ~skew (Asym_util.Rng.create ~seed)
  in
  let twin = Asym_util.Rng.create ~seed in
  Asym_cluster.Keepalive.register ka "n" ~now:0;
  let delays = Array.init 4 (fun _ -> Asym_util.Rng.int twin (skew + 1)) in
  Array.sort compare delays;
  Alcotest.(check bool) "seed yields distinct middle skews" true (delays.(1) < delays.(2));
  (* Exactly replicas 0 and 1 (by expiry order) have expired here. *)
  let tie = delays.(2) + lease in
  check Alcotest.bool "2 of 4 expired: tie is not a majority" true
    (Asym_cluster.Keepalive.alive ka "n" ~now:tie);
  check Alcotest.bool "3 of 4 expired: strict majority declares the crash" false
    (Asym_cluster.Keepalive.alive ka "n" ~now:(delays.(2) + lease + 1))

let test_keepalive_renewal_at_exact_expiry () =
  (* Expiry is strict: a renewal (or probe) landing exactly at
     [seen + lease] still counts as alive — the lease covers its own last
     instant. Zero skew makes every replica agree. *)
  let lease = Simtime.ms 10 in
  let ka = Asym_cluster.Keepalive.create ~lease ~skew:0 (Asym_util.Rng.create ~seed:6L) in
  Asym_cluster.Keepalive.register ka "n" ~now:0;
  check Alcotest.bool "alive at the exact last lease instant" true
    (Asym_cluster.Keepalive.alive ka "n" ~now:lease);
  Asym_cluster.Keepalive.renew ka "n" ~now:lease;
  check Alcotest.bool "renewal at expiry extends a full lease" true
    (Asym_cluster.Keepalive.alive ka "n" ~now:(2 * lease));
  check Alcotest.bool "one instant past the renewed lease is dead" false
    (Asym_cluster.Keepalive.alive ka "n" ~now:((2 * lease) + 1))

let test_keepalive_forget_mid_epoch () =
  (* Case 5: a crashed mirror is administratively dropped mid-epoch. It
     must vanish from the group without ever appearing in the crashed
     list, and re-registering starts a fresh lease. *)
  let lease = Simtime.ms 10 in
  let ka = Asym_cluster.Keepalive.create ~lease ~skew:0 (Asym_util.Rng.create ~seed:7L) in
  Asym_cluster.Keepalive.register ka "backend" ~now:0;
  Asym_cluster.Keepalive.register ka "mirror" ~now:0;
  Asym_cluster.Keepalive.renew ka "backend" ~now:(Simtime.ms 5);
  Asym_cluster.Keepalive.forget ka "mirror";
  check
    (Alcotest.list Alcotest.string)
    "only the survivor remains" [ "backend" ]
    (Asym_cluster.Keepalive.members ka);
  check Alcotest.bool "forgotten node is not alive" false
    (Asym_cluster.Keepalive.alive ka "mirror" ~now:(Simtime.ms 6));
  check
    (Alcotest.list Alcotest.string)
    "forgotten node is not reported crashed either" []
    (Asym_cluster.Keepalive.crashed ka ~now:(Simtime.ms 30 + 1)
    |> List.filter (fun n -> n = "mirror"));
  Asym_cluster.Keepalive.register ka "mirror" ~now:(Simtime.ms 20);
  check Alcotest.bool "re-registered with a fresh lease" true
    (Asym_cluster.Keepalive.alive ka "mirror" ~now:(Simtime.ms 25))

(* -- abandoned locks ----------------------------------------------------------- *)

let test_abandoned_lock_released_on_recovery () =
  let bk = mk_backend () in
  let fe1 = mk_client ~cfg:(Client.rcb ~batch_size:8 ()) ~name:"fe1" bk in
  let h = Client.register_ds fe1 "locked-ds" in
  Client.writer_lock fe1 h;
  (* fe1 dies while holding the writer lock. *)
  Client.crash fe1;
  check
    (Alcotest.list Alcotest.int)
    "lock-ahead log identifies the lock" [ h.Types.lock ]
    (Backend.abandoned_locks bk ~session:(Client.session fe1));
  ignore (Client.recover fe1);
  check
    (Alcotest.list Alcotest.int)
    "released after recovery" []
    (Backend.abandoned_locks bk ~session:(Client.session fe1));
  (* Another writer can now take the lock without waiting forever. *)
  let fe2 = mk_client ~cfg:(Client.rcb ~batch_size:8 ()) ~name:"fe2" bk in
  let h2 = Client.register_ds fe2 "locked-ds" in
  Client.writer_lock fe2 h2;
  Client.writer_unlock fe2 h2

(* -- torn op log entry ----------------------------------------------------------- *)

let test_torn_oplog_entry_ignored () =
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:64 ()) bk in
  let t = Stack.attach fe ~name:"s" in
  Stack.push t (v "acked");
  (* A push whose op-log write tears: the client never got the ack, so the
     operation never happened. Simulate by tearing the device's last
     write (the op-log record of a second push). *)
  Stack.push t (v "torn-victim");
  Asym_nvm.Device.tear_last_write (Backend.device bk) ~keep:5;
  Client.crash fe;
  let ops = Client.recover fe in
  (* Only the first push is recoverable. *)
  check Alcotest.int "one replayable op" 1 (List.length ops);
  let t = Stack.attach fe ~name:"s" in
  let reg = Registry.create () in
  Registry.register reg ~ds:(Stack.handle t).Types.id (Stack.replay t);
  Registry.replay_all reg ops;
  Client.flush fe;
  check (Alcotest.option bytes_eq) "acked push survived" (Some (v "acked")) (Stack.peek t);
  check Alcotest.int "exactly one element" 1 (Stack.size t)

(* -- crash + replay for each remaining structure kind --------------------------- *)

module Bpt = Pbptree.Make (Client)
module Skip = Pskiplist.Make (Client)
module Mv = Pmvbst.Make (Client)
module Mvb = Pmvbptree.Make (Client)
module Q = Pqueue.Make (Client)

let crash_replay_roundtrip (type a) ~name
    ~(attach : Client.t -> a)
    ~(put : a -> int64 -> bytes -> unit)
    ~(find : a -> int64 -> bytes option)
    ~(replay : a -> Log.Op_entry.t -> unit)
    ~(ds_of : a -> Types.handle) () =
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:32 ()) bk in
  let t = attach fe in
  (* Shuffled keys so the unbalanced trees stay shallow. *)
  let keys = Array.init 80 (fun i -> Int64.of_int (7 * i)) in
  Asym_util.Rng.shuffle (Asym_util.Rng.create ~seed:5L) keys;
  Array.iter (fun k -> put t k (v (Int64.to_string k))) keys;
  Client.crash fe;
  let ops = Client.recover fe in
  check Alcotest.bool (name ^ ": some ops uncovered") true (List.length ops > 0);
  let t = attach fe in
  let reg = Registry.create () in
  Registry.register reg ~ds:(ds_of t).Types.id (replay t);
  Registry.replay_all reg ops;
  Client.flush fe;
  Array.iter
    (fun k ->
      check (Alcotest.option bytes_eq)
        (Printf.sprintf "%s key %Ld" name k)
        (Some (v (Int64.to_string k)))
        (find t k))
    keys

let test_crash_replay_bptree () =
  crash_replay_roundtrip ~name:"bptree"
    ~attach:(fun fe -> Bpt.attach fe ~name:"bpt")
    ~put:(fun t key value -> Bpt.put t ~key ~value)
    ~find:(fun t key -> Bpt.find t ~key)
    ~replay:Bpt.replay ~ds_of:Bpt.handle ()

let test_crash_replay_skiplist () =
  crash_replay_roundtrip ~name:"skiplist"
    ~attach:(fun fe -> Skip.attach fe ~name:"sl")
    ~put:(fun t key value -> Skip.put t ~key ~value)
    ~find:(fun t key -> Skip.find t ~key)
    ~replay:Skip.replay ~ds_of:Skip.handle ()

let test_crash_replay_mvbst () =
  crash_replay_roundtrip ~name:"mv-bst"
    ~attach:(fun fe -> Mv.attach fe ~name:"mv")
    ~put:(fun t key value -> Mv.put t ~key ~value)
    ~find:(fun t key -> Mv.find t ~key)
    ~replay:Mv.replay ~ds_of:Mv.handle ()

let test_crash_replay_mvbptree () =
  crash_replay_roundtrip ~name:"mv-bpt"
    ~attach:(fun fe -> Mvb.attach fe ~name:"mvb")
    ~put:(fun t key value -> Mvb.put t ~key ~value)
    ~find:(fun t key -> Mvb.find t ~key)
    ~replay:Mvb.replay ~ds_of:Mvb.handle ()

let test_crash_replay_queue_order () =
  (* FIFO order must survive a crash + replay. *)
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:16 ()) bk in
  let q = Q.attach fe ~name:"q" in
  for i = 0 to 39 do
    Q.enqueue q (v (string_of_int i))
  done;
  Client.crash fe;
  let ops = Client.recover fe in
  let q = Q.attach fe ~name:"q" in
  let reg = Registry.create () in
  Registry.register reg ~ds:(Q.handle q).Types.id (Q.replay q);
  Registry.replay_all reg ops;
  Client.flush fe;
  check Alcotest.int "size" 40 (Q.size q);
  for i = 0 to 39 do
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "dequeue %d" i)
      (Some (v (string_of_int i)))
      (Q.dequeue q)
  done

(* -- property: random crash points never lose acked, flushed state ------------- *)

let prop_crash_recover_consistent =
  QCheck.Test.make ~count:25 ~name:"crash at random op: recovery restores all acked ops"
    QCheck.(pair (int_range 1 40) (int_bound 1000))
    (fun (crash_after, seed) ->
      let bk = mk_backend () in
      let fe = mk_client ~cfg:(Client.rcb ~batch_size:7 ()) bk in
      let t = Hash.attach ~nbuckets:32 fe ~name:"h" in
      let rng = Asym_util.Rng.create ~seed:(Int64.of_int seed) in
      let model = Hashtbl.create 16 in
      for i = 0 to crash_after - 1 do
        let key = Int64.of_int (Asym_util.Rng.int rng 20) in
        if Asym_util.Rng.int rng 4 = 0 then begin
          Hashtbl.remove model key;
          ignore (Hash.delete t ~key)
        end
        else begin
          let value = v (string_of_int i) in
          Hashtbl.replace model key value;
          Hash.put t ~key ~value
        end
      done;
      Client.crash fe;
      let ops = Client.recover fe in
      let t = Hash.attach ~nbuckets:32 fe ~name:"h" in
      let reg = Registry.create () in
      Registry.register reg ~ds:(Hash.handle t).Types.id (Hash.replay t);
      Registry.replay_all reg ops;
      Client.flush fe;
      Hashtbl.fold (fun k value acc -> acc && Hash.get t ~key:k = Some value) model true)

let () =
  Alcotest.run "recovery"
    [
      ("case1-reader", [ Alcotest.test_case "reader crash" `Quick test_case1_reader_crash ]);
      ( "case2-writer",
        [
          Alcotest.test_case "all flushed" `Quick test_case2a_writer_crash_all_flushed;
          Alcotest.test_case "mid batch" `Quick test_case2c_writer_crash_mid_batch;
          Alcotest.test_case "partial batch" `Quick test_case2_partial_batch_replay;
          Alcotest.test_case "torn memlog detected" `Quick test_case2b_torn_memlog_detected;
        ] );
      ( "case3-backend-transient",
        [
          Alcotest.test_case "restart and resume" `Quick test_case3_backend_transient;
          Alcotest.test_case "replay idempotent" `Quick test_case3_restart_replay_idempotent;
        ] );
      ( "case4-promotion",
        [
          Alcotest.test_case "mirror tracks backend" `Quick test_mirror_image_tracks_backend;
          Alcotest.test_case "promote nvm mirror" `Quick test_case4_promote_nvm_mirror;
          Alcotest.test_case "promote ssd mirror" `Quick test_case4_promote_ssd_mirror;
          Alcotest.test_case "failover helper" `Quick test_case4_failover_helper;
        ] );
      ( "case5-mirror",
        [
          Alcotest.test_case "service continues" `Quick test_case5_mirror_crash_service_continues;
          Alcotest.test_case "replication counters" `Quick test_mirror_replication_counters;
          Alcotest.test_case "crashed mirror skipped/restarted" `Quick
            test_crashed_mirror_skipped_then_restarted;
        ] );
      ( "keepalive",
        [
          Alcotest.test_case "lease expiry" `Quick test_keepalive_lease_expiry;
          Alcotest.test_case "unknown node" `Quick test_keepalive_unknown_node_dead;
          Alcotest.test_case "majority with skew" `Quick test_keepalive_majority_skew;
          Alcotest.test_case "exact-majority boundary" `Quick
            test_keepalive_exact_majority_boundary;
          Alcotest.test_case "renewal at exact expiry" `Quick
            test_keepalive_renewal_at_exact_expiry;
          Alcotest.test_case "node removal mid-epoch" `Quick test_keepalive_forget_mid_epoch;
        ] );
      ( "locks",
        [ Alcotest.test_case "abandoned lock released" `Quick test_abandoned_lock_released_on_recovery ]
      );
      ("oplog", [ Alcotest.test_case "torn op ignored" `Quick test_torn_oplog_entry_ignored ]);
      ( "crash-replay-per-structure",
        [
          Alcotest.test_case "bptree" `Quick test_crash_replay_bptree;
          Alcotest.test_case "skiplist" `Quick test_crash_replay_skiplist;
          Alcotest.test_case "mv-bst" `Quick test_crash_replay_mvbst;
          Alcotest.test_case "mv-bptree" `Quick test_crash_replay_mvbptree;
          Alcotest.test_case "queue order" `Quick test_crash_replay_queue_order;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_crash_recover_consistent ]);
    ]
