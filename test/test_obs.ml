(* The observability subsystem: registry semantics, span-ring behavior
   under nesting/crash/overflow, exporter well-formedness, and an
   end-to-end rig run asserting spans surface from every layer. *)

open Asym_obs

let check = Alcotest.check

(* Every test drives the global gate; leave the world clean regardless
   of outcome. *)
let with_obs f () =
  set_enabled true;
  reset ();
  Fun.protect f ~finally:(fun () ->
      reset ();
      set_enabled false)

(* -- registry -------------------------------------------------------------- *)

let test_registry_disabled () =
  set_enabled false;
  reset ();
  Registry.inc "c";
  Registry.add "c" 5;
  Registry.set_gauge "g" 1.0;
  Registry.observe "h" 10.0;
  Span.complete ~track:"t" ~ts:0 ~dur:1 "s";
  Span.instant "i";
  check Alcotest.int "counter untouched" 0 (Registry.counter_value "c");
  check Alcotest.bool "gauge untouched" true (Registry.gauge_value "g" = None);
  check Alcotest.bool "histogram untouched" true (Registry.histogram "h" = None);
  check Alcotest.int "no series at all" 0 (Registry.fold_counters (fun _ _ _ n -> n + 1) 0);
  check (Alcotest.list Alcotest.string) "no spans" []
    (List.map (fun (e : Span.event) -> e.Span.name) (Span.events ()))

let test_registry_counters () =
  Registry.inc "ops";
  Registry.add "ops" 4;
  check Alcotest.int "accumulates" 5 (Registry.counter_value "ops");
  (* Labels distinguish series; their order does not. *)
  Registry.inc ~labels:[ ("op", "write"); ("dev", "a") ] "verbs";
  Registry.inc ~labels:[ ("dev", "a"); ("op", "write") ] "verbs";
  Registry.inc ~labels:[ ("op", "read"); ("dev", "a") ] "verbs";
  check Alcotest.int "label order canonical" 2
    (Registry.counter_value ~labels:[ ("dev", "a"); ("op", "write") ] "verbs");
  check Alcotest.int "distinct labels distinct series" 1
    (Registry.counter_value ~labels:[ ("op", "read"); ("dev", "a") ] "verbs");
  check Alcotest.int "absent series reads 0" 0 (Registry.counter_value "nope");
  Alcotest.check_raises "counters are monotonic"
    (Invalid_argument "Obs.Registry.add: counters are monotonic") (fun () ->
      Registry.add "ops" (-1));
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs.Registry: ops is a counter, used as a gauge") (fun () ->
      Registry.set_gauge "ops" 1.0)

let test_registry_reset () =
  Registry.inc "a";
  Registry.set_gauge "b" 2.0;
  Registry.observe "c" 3.0;
  Registry.reset ();
  check Alcotest.int "counter gone" 0 (Registry.counter_value "a");
  check Alcotest.bool "gauge gone" true (Registry.gauge_value "b" = None);
  check Alcotest.bool "histogram gone" true (Registry.histogram "c" = None)

let test_registry_json () =
  Registry.inc ~labels:[ ("op", "write") ] "verbs";
  Registry.set_gauge "fill" 0.5;
  for i = 1 to 100 do
    Registry.observe "lat" (float_of_int i)
  done;
  (* Round-trip through text so the snapshot is known-parseable. *)
  let doc = Json.parse (Json.to_string (Registry.to_json ())) in
  let series key =
    match Json.member key doc with Some j -> Json.to_list j | None -> Alcotest.fail key
  in
  (match series "counters" with
  | [ c ] ->
      check Alcotest.string "counter name" "verbs"
        (Json.to_str (Option.get (Json.member "name" c)));
      check Alcotest.int "counter value" 1 (Json.to_int (Option.get (Json.member "value" c)))
  | l -> Alcotest.failf "expected 1 counter, got %d" (List.length l));
  check Alcotest.int "one gauge" 1 (List.length (series "gauges"));
  match series "histograms" with
  | [ h ] ->
      check Alcotest.int "histogram total" 100
        (Json.to_int (Option.get (Json.member "total" h)));
      let p50 = Json.to_float (Option.get (Json.member "p50" h)) in
      check Alcotest.bool "p50 in a sane bucket" true (p50 >= 32.0 && p50 <= 64.0)
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l)

(* -- span ring ------------------------------------------------------------- *)

let test_span_nesting () =
  let t = ref 0 in
  let now () = !t in
  let out =
    Span.with_span ~track:"clk" ~now "outer" (fun () ->
        t := 10;
        let r =
          Span.with_span ~track:"clk" ~now "inner" (fun () ->
              t := 40;
              "ret")
        in
        check Alcotest.string "result threaded" "ret" r;
        t := 100)
  in
  check Alcotest.unit "unit body" () out;
  match Span.events () with
  | [ inner; outer ] ->
      (* Inner completes (and is recorded) first; both are X spans and the
         inner one lies within the outer. *)
      check Alcotest.string "inner first" "inner" inner.Span.name;
      check Alcotest.string "outer second" "outer" outer.Span.name;
      let range (e : Span.event) =
        match e.Span.kind with
        | Span.Complete d -> (e.Span.ts, e.Span.ts + d)
        | Span.Instant -> Alcotest.fail "expected complete span"
      in
      let i0, i1 = range inner and o0, o1 = range outer in
      check Alcotest.bool "nested" true (o0 <= i0 && i1 <= o1);
      check Alcotest.int "outer spans full interval" 100 (o1 - o0)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_span_balanced_on_crash () =
  let t = ref 0 in
  let now () = !t in
  (try
     Span.with_span ~track:"clk" ~now "doomed" (fun () ->
         t := 7;
         failwith "crash injection")
   with Failure _ -> ());
  match Span.events () with
  | [ e ] ->
      check Alcotest.string "span still recorded" "doomed" e.Span.name;
      check Alcotest.bool "duration up to the crash" true (e.Span.kind = Span.Complete 7)
  | l -> Alcotest.failf "expected exactly 1 event, got %d" (List.length l)

let test_span_ring_cap () =
  Span.set_capacity 4;
  Fun.protect ~finally:(fun () -> Span.set_capacity 65536) @@ fun () ->
  for i = 1 to 6 do
    Span.complete ~track:"t" ~ts:i ~dur:1 (Printf.sprintf "e%d" i)
  done;
  let names = List.map (fun (e : Span.event) -> e.Span.name) (Span.events ()) in
  check (Alcotest.list Alcotest.string) "oldest evicted, order kept"
    [ "e3"; "e4"; "e5"; "e6" ] names;
  check Alcotest.int "dropped counted" 2 (Span.dropped ())

(* -- Chrome exporter ------------------------------------------------------- *)

let test_chrome_export () =
  Span.complete ~cat:"rdma" ~track:"nic" ~ts:1000 ~dur:500 "rdma.write";
  Span.complete ~cat:"core" ~track:"fe" ~ts:0 ~dur:2000 "client.op";
  Span.instant ~cat:"fault" ~track:"fe" ~ts:1800 "client.crash";
  let doc = Json.parse (Export_chrome.to_string ()) in
  let evs = Json.to_list (Option.get (Json.member "traceEvents" doc)) in
  let ph e = Json.to_str (Option.get (Json.member "ph" e)) in
  let named n = List.find (fun e -> Json.member "name" e = Some (Json.String n)) evs in
  let x = named "rdma.write" in
  check Alcotest.string "complete span is X" "X" (ph x);
  check (Alcotest.float 1e-9) "ts in microseconds" 1.0
    (Json.to_float (Option.get (Json.member "ts" x)));
  check (Alcotest.float 1e-9) "dur in microseconds" 0.5
    (Json.to_float (Option.get (Json.member "dur" x)));
  check Alcotest.string "instant is i" "i" (ph (named "client.crash"));
  (* One thread_name metadata record per track, and tracks get distinct tids. *)
  let meta = List.filter (fun e -> ph e = "M") evs in
  check Alcotest.int "two tracks named" 2 (List.length meta);
  let tid e = Json.to_int (Option.get (Json.member "tid" e)) in
  check Alcotest.bool "tracks on distinct lanes" true (tid x <> tid (named "client.op"))

(* -- end-to-end: spans from every layer ------------------------------------ *)

module Bpt = Asym_structs.Pbptree.Make (Asym_core.Client)

let test_three_layers () =
  let open Asym_core in
  let lat = Asym_sim.Latency.default in
  let bk =
    Backend.create ~name:"bk" ~max_sessions:2 ~memlog_cap:(1024 * 1024)
      ~oplog_cap:(512 * 1024) ~capacity:(16 * 1024 * 1024) lat
  in
  let clock = Asym_sim.Clock.create ~name:"fe" () in
  let fe = Client.connect ~name:"fe" (Client.rcb ()) bk ~clock in
  let t = Bpt.attach fe ~name:"obs" in
  for i = 1 to 200 do
    Bpt.put t ~key:(Int64.of_int i) ~value:(Bytes.of_string (string_of_int i))
  done;
  Client.flush fe;
  Client.crash fe;
  ignore (Client.recover fe);
  let names = List.map (fun (e : Span.event) -> e.Span.name) (Span.events ()) in
  let has prefix =
    List.exists (fun n -> String.length n >= String.length prefix
                          && String.sub n 0 (String.length prefix) = prefix) names
  in
  check Alcotest.bool "rdma layer" true (has "rdma.");
  check Alcotest.bool "core layer" true (has "client.op");
  check Alcotest.bool "log layer" true (has "log.replay_tx");
  check Alcotest.bool "verbs counted" true (Registry.counter_value ~labels:[ ("op", "write") ] "rdma.verbs" > 0);
  (* The trace itself must be parseable. *)
  ignore (Json.parse (Export_chrome.to_string ()))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "disabled is inert" `Quick (with_obs test_registry_disabled);
          Alcotest.test_case "counters + labels" `Quick (with_obs test_registry_counters);
          Alcotest.test_case "reset" `Quick (with_obs test_registry_reset);
          Alcotest.test_case "json snapshot" `Quick (with_obs test_registry_json);
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick (with_obs test_span_nesting);
          Alcotest.test_case "balanced on crash" `Quick (with_obs test_span_balanced_on_crash);
          Alcotest.test_case "ring cap" `Quick (with_obs test_span_ring_cap);
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace_event" `Quick (with_obs test_chrome_export) ] );
      ( "end-to-end",
        [ Alcotest.test_case "three layers traced" `Quick (with_obs test_three_layers) ] );
    ]
