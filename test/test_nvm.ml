open Asym_nvm

let check = Alcotest.check
let lat = Asym_sim.Latency.default
let mk ?(cap = 4096) () = Device.create ~name:"t" ~capacity:cap lat

let test_read_write_roundtrip () =
  let d = mk () in
  Device.write d ~addr:100 (Bytes.of_string "hello");
  check Alcotest.string "roundtrip" "hello" (Bytes.to_string (Device.read d ~addr:100 ~len:5))

let test_u64_roundtrip () =
  let d = mk () in
  Device.write_u64 d ~addr:8 0x1234567890ABCDEFL;
  check Alcotest.int64 "u64" 0x1234567890ABCDEFL (Device.read_u64 d ~addr:8)

let test_bounds () =
  let d = mk ~cap:64 () in
  Alcotest.check_raises "oob write"
    (Invalid_argument "Nvm.Device t: access out of bounds (addr=60 len=8 cap=64)") (fun () ->
      Device.write_u64 d ~addr:60 1L);
  Alcotest.check_raises "negative read"
    (Invalid_argument "Nvm.Device t: access out of bounds (addr=-1 len=4 cap=64)") (fun () ->
      ignore (Device.read d ~addr:(-1) ~len:4))

let test_cas () =
  let d = mk () in
  Device.write_u64 d ~addr:0 5L;
  check Alcotest.int64 "cas returns old" 5L
    (Device.compare_and_swap d ~addr:0 ~expected:5L ~desired:9L);
  check Alcotest.int64 "cas applied" 9L (Device.read_u64 d ~addr:0);
  check Alcotest.int64 "failed cas returns current" 9L
    (Device.compare_and_swap d ~addr:0 ~expected:5L ~desired:1L);
  check Alcotest.int64 "failed cas no-op" 9L (Device.read_u64 d ~addr:0)

let test_fetch_add () =
  let d = mk () in
  Device.write_u64 d ~addr:0 10L;
  check Alcotest.int64 "faa old" 10L (Device.fetch_add d ~addr:0 5L);
  check Alcotest.int64 "faa new" 15L (Device.read_u64 d ~addr:0)

let test_torn_write () =
  let d = mk () in
  Device.write d ~addr:0 (Bytes.of_string "AAAAAAAA");
  Device.write d ~addr:0 (Bytes.of_string "BBBBBBBB");
  Device.tear_last_write d ~keep:3;
  check Alcotest.string "prefix new, suffix old" "BBBAAAAA"
    (Bytes.to_string (Device.read d ~addr:0 ~len:8))

let test_torn_write_keep_zero () =
  let d = mk () in
  Device.write d ~addr:10 (Bytes.of_string "xyz");
  Device.write d ~addr:10 (Bytes.of_string "abc");
  Device.tear_last_write d ~keep:0;
  check Alcotest.string "fully reverted" "xyz" (Bytes.to_string (Device.read d ~addr:10 ~len:3))

let test_tear_only_once () =
  let d = mk () in
  Device.write d ~addr:0 (Bytes.of_string "new");
  Device.tear_last_write d ~keep:0;
  (* Second tear is a no-op: bookkeeping was consumed. *)
  Device.tear_last_write d ~keep:0;
  check Alcotest.string "still empty" "\000\000\000" (Bytes.to_string (Device.read d ~addr:0 ~len:3))

let test_torn_write_keep_full () =
  let d = mk () in
  Device.write d ~addr:4 (Bytes.of_string "old!");
  Device.write d ~addr:4 (Bytes.of_string "new!");
  check (Alcotest.option Alcotest.int) "last write is tearable" (Some 4) (Device.last_write_len d);
  (* keep = full length: the boundary case where the "tear" clips nothing. *)
  Device.tear_last_write d ~keep:4;
  check Alcotest.string "write fully intact" "new!" (Bytes.to_string (Device.read d ~addr:4 ~len:4));
  check (Alcotest.option Alcotest.int) "tear bookkeeping still consumed" None
    (Device.last_write_len d);
  (* keep past the write length clamps to a no-op too. *)
  Device.write d ~addr:4 (Bytes.of_string "more");
  Device.tear_last_write d ~keep:99;
  check Alcotest.string "over-long keep clamps" "more"
    (Bytes.to_string (Device.read d ~addr:4 ~len:4))

let test_tear_after_crash_restart () =
  let d = mk () in
  Device.write d ~addr:0 (Bytes.of_string "acked");
  Device.crash_restart d;
  (* A restart fences torn writes: whatever reached the media before the
     crash is either fully there or was already torn at crash time. *)
  check (Alcotest.option Alcotest.int) "nothing tearable after restart" None
    (Device.last_write_len d);
  Device.tear_last_write d ~keep:0;
  check Alcotest.string "pre-crash write not revertible" "acked"
    (Bytes.to_string (Device.read d ~addr:0 ~len:5))

let test_crash_restart_preserves () =
  let d = mk () in
  Device.write d ~addr:0 (Bytes.of_string "durable");
  Device.crash_restart d;
  check Alcotest.string "survives" "durable" (Bytes.to_string (Device.read d ~addr:0 ~len:7));
  (* After a clean restart there is nothing to tear. *)
  Device.tear_last_write d ~keep:0;
  check Alcotest.string "still there" "durable" (Bytes.to_string (Device.read d ~addr:0 ~len:7))

let test_snapshot_load () =
  let d = mk () in
  Device.write d ~addr:5 (Bytes.of_string "state");
  let snap = Device.snapshot d in
  Device.write d ~addr:5 (Bytes.of_string "XXXXX");
  Device.load d snap;
  check Alcotest.string "restored" "state" (Bytes.to_string (Device.read d ~addr:5 ~len:5))

let test_counters () =
  let d = mk () in
  Device.write d ~addr:0 (Bytes.create 10);
  Device.write d ~addr:0 (Bytes.create 6);
  ignore (Device.read d ~addr:0 ~len:4);
  check Alcotest.int "writes" 2 (Device.writes_performed d);
  check Alcotest.int "reads" 1 (Device.reads_performed d);
  check Alcotest.int "bytes written" 16 (Device.bytes_written d)

let test_costs () =
  let d = mk () in
  check Alcotest.int "read cost 1 line" lat.Asym_sim.Latency.nvm_read_ns (Device.read_cost d ~len:64);
  check Alcotest.int "write cost 2 lines" (2 * lat.Asym_sim.Latency.nvm_write_ns)
    (Device.write_cost d ~len:65)

let prop_write_read =
  QCheck.Test.make ~count:300 ~name:"random write/read roundtrip"
    QCheck.(pair (int_bound 1000) (string_of_size Gen.(1 -- 64)))
    (fun (addr, s) ->
      QCheck.assume (String.length s > 0);
      let d = mk () in
      Device.write d ~addr (Bytes.of_string s);
      Bytes.to_string (Device.read d ~addr ~len:(String.length s)) = s)

let prop_tear_is_prefix =
  QCheck.Test.make ~count:300 ~name:"torn write = prefix of new + suffix of old"
    QCheck.(triple (int_bound 100) (string_of_size Gen.(1 -- 32)) small_nat)
    (fun (addr, s, keep) ->
      QCheck.assume (String.length s > 0);
      let d = mk () in
      let old = String.make (String.length s) 'o' in
      Device.write d ~addr (Bytes.of_string old);
      Device.write d ~addr (Bytes.of_string s);
      Device.tear_last_write d ~keep;
      let got = Bytes.to_string (Device.read d ~addr ~len:(String.length s)) in
      let k = min keep (String.length s) in
      got = String.sub s 0 k ^ String.sub old k (String.length s - k))

let () =
  Alcotest.run "nvm"
    [
      ( "device",
        [
          Alcotest.test_case "roundtrip" `Quick test_read_write_roundtrip;
          Alcotest.test_case "u64 roundtrip" `Quick test_u64_roundtrip;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "cas" `Quick test_cas;
          Alcotest.test_case "fetch_add" `Quick test_fetch_add;
          Alcotest.test_case "torn write" `Quick test_torn_write;
          Alcotest.test_case "torn write keep=0" `Quick test_torn_write_keep_zero;
          Alcotest.test_case "tear only once" `Quick test_tear_only_once;
          Alcotest.test_case "torn write keep=len" `Quick test_torn_write_keep_full;
          Alcotest.test_case "tear after crash/restart" `Quick test_tear_after_crash_restart;
          Alcotest.test_case "crash/restart durability" `Quick test_crash_restart_preserves;
          Alcotest.test_case "snapshot/load" `Quick test_snapshot_load;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "costs" `Quick test_costs;
          QCheck_alcotest.to_alcotest prop_write_read;
          QCheck_alcotest.to_alcotest prop_tear_is_prefix;
        ] );
    ]
