(* Transient-fault layer: verb loss/delay injection and timeouts in
   lib/rdma, the client retry/backoff/reconnect policy, grey-period
   tolerance in keepalive, fault_retry attribution conservation, and the
   fault-schedule fuzzer/sweep modes. Everything is seeded: the same
   seed must reproduce the same retry counts exactly. *)

open Asym_sim
open Asym_nvm
open Asym_rdma
open Asym_core
open Asym_cluster

let check = Alcotest.check
let lat = Latency.default

let mk_conn () =
  let dev = Device.create ~name:"backend" ~capacity:65536 lat in
  let nic = Timeline.create ~name:"nic" () in
  let clk = Clock.create ~name:"client" () in
  let conn = Verbs.connect ~client:clk ~remote_nic:nic ~remote_mem:dev lat in
  (dev, clk, conn)

let mk_backend () =
  Backend.create ~name:"bk" ~max_sessions:6 ~memlog_cap:(256 * 1024) ~oplog_cap:(128 * 1024)
    ~slab_size:1024 ~capacity:(8 * 1024 * 1024) lat

let set_drop ?(timeout_ns = 0) ?(seed = 9L) conn p =
  Verbs.set_fault conn (Some (Verbs.Fault.make ~drop_p:p ~timeout_ns ~seed ()))

(* -- verb-level injection ---------------------------------------------------- *)

let test_verb_timeout_raised () =
  let _, clk, conn = mk_conn () in
  set_drop conn 1.0;
  let t0 = Clock.now clk in
  (match Verbs.read conn ~addr:0 ~len:8 with
  | _ -> Alcotest.fail "read must time out under drop_p = 1"
  | exception Verbs.Verb_timeout _ -> ());
  check Alcotest.int "timeout counted" 1 (Verbs.verb_timeouts conn);
  check Alcotest.bool "client waited out the verb timeout" true
    (Clock.now clk - t0 >= lat.Latency.verb_timeout_ns)

let test_fault_timeout_override () =
  let _, clk, conn = mk_conn () in
  set_drop ~timeout_ns:77 conn 1.0;
  let t0 = Clock.now clk in
  (try ignore (Verbs.read conn ~addr:0 ~len:8) with Verbs.Verb_timeout _ -> ());
  check Alcotest.int "fault model's timeout wins" 77 (Clock.now clk - t0)

let test_atomic_loses_request_only () =
  (* A lost CAS must have no remote effect: real RNICs retransmit below
     the verb interface, so an atomic either completes or never reached
     the media — which is what makes retrying it safe. *)
  let dev, _, conn = mk_conn () in
  Device.write_u64 dev ~addr:64 7L;
  set_drop conn 1.0;
  for _ = 1 to 5 do
    try ignore (Verbs.compare_and_swap conn ~addr:64 ~expected:7L ~desired:8L)
    with Verbs.Verb_timeout _ -> ()
  done;
  check Alcotest.int64 "lost CAS never applied" 7L (Device.read_u64 dev ~addr:64)

let test_unsignaled_exempt () =
  let dev, _, conn = mk_conn () in
  set_drop conn 1.0;
  Verbs.write_unsignaled conn ~addr:0 (Bytes.of_string "U");
  check Alcotest.int "no completion, no timeout" 0 (Verbs.verb_timeouts conn);
  check Alcotest.string "posted write applied" "U"
    (Bytes.to_string (Device.read dev ~addr:0 ~len:1))

let test_grey_window () =
  let _, clk, conn = mk_conn () in
  (* No baseline loss; total loss inside the armed window. *)
  Verbs.set_fault conn (Some (Verbs.Fault.make ~drop_p:0. ~grey_drop_p:1.0 ~seed:3L ()));
  Verbs.write conn ~addr:0 (Bytes.of_string "ok");
  let now = Clock.now clk in
  Verbs.arm_grey conn ~from_:now ~until:(now + Simtime.us 100);
  check Alcotest.bool "inside window" true (Verbs.in_grey conn);
  (match Verbs.read conn ~addr:0 ~len:2 with
  | _ -> Alcotest.fail "grey window must lose the verb"
  | exception Verbs.Verb_timeout _ -> ());
  (* Timeouts advance the clock; once past the window verbs flow again. *)
  Clock.wait_until clk (now + Simtime.us 200);
  check Alcotest.bool "window expired" false (Verbs.in_grey conn);
  check Alcotest.string "delivered after grey" "ok"
    (Bytes.to_string (Verbs.read conn ~addr:0 ~len:2))

let test_seeded_injection_reproducible () =
  let run () =
    let _, clk, conn = mk_conn () in
    set_drop ~seed:21L conn 0.4;
    for i = 0 to 49 do
      try Verbs.write conn ~addr:(8 * i) (Bytes.of_string "abcdefgh")
      with Verbs.Verb_timeout _ -> ()
    done;
    (Verbs.verb_timeouts conn, Verbs.injected_delays conn, Clock.now clk)
  in
  let a = run () and b = run () in
  check
    Alcotest.(triple int int int)
    "same seed, same losses, same virtual time" a b;
  let timeouts, _, _ = a in
  check Alcotest.bool "some verbs actually lost" true (timeouts > 0)

(* -- client retry policy ------------------------------------------------------ *)

(* A full faulty client workload: puts then read-back through the B+
   tree, 20% verb loss. The retry layer must make every op succeed. *)
let faulty_workload ?(drop = 0.2) ?(seed = 5L) () =
  let bk = mk_backend () in
  let clk = Clock.create ~name:"fe" () in
  let fe = Client.connect ~name:"fe" (Client.rcb ()) bk ~clock:clk in
  Verbs.set_fault (Client.connection fe)
    (Some (Verbs.Fault.make ~drop_p:drop ~delay_p:0.1 ~delay_ns:2_000 ~seed ()));
  let module Bpt = Asym_structs.Pbptree.Make (Client) in
  let t = Bpt.attach fe ~name:"ft" in
  for i = 0 to 99 do
    Bpt.put t ~key:(Int64.of_int i) ~value:(Bytes.of_string (string_of_int i))
  done;
  Client.flush fe;
  Client.invalidate_cache fe;
  let lost = ref 0 in
  for i = 0 to 99 do
    match Bpt.find t ~key:(Int64.of_int i) with
    | Some v when Bytes.to_string v = string_of_int i -> ()
    | _ -> incr lost
  done;
  (bk, fe, !lost)

let test_client_survives_faults () =
  let bk, fe, lost = faulty_workload () in
  check Alcotest.int "no op lost or corrupted" 0 lost;
  check Alcotest.bool "retries actually happened" true (Client.fault_retries fe > 0);
  (* Positional idempotence: a retried append lands at the same ring
     offset, so the backend never even scans a duplicate frame. *)
  check Alcotest.int "no duplicate frames replayed" 0 (Backend.dup_replays_absorbed bk)

let test_retry_counts_reproducible () =
  let _, fe1, _ = faulty_workload ~seed:13L () in
  let _, fe2, _ = faulty_workload ~seed:13L () in
  check Alcotest.int "same seed, same retry count" (Client.fault_retries fe1)
    (Client.fault_retries fe2);
  check Alcotest.int "same reconnects" (Client.reconnects fe1) (Client.reconnects fe2);
  check Alcotest.int "same virtual end time"
    (Clock.now (Client.clock fe1))
    (Clock.now (Client.clock fe2))

let test_reconnect_after_budget () =
  (* Total loss: the per-verb budget dries up, the client degrades and
     reconnects (with a fresh budget) up to its cap, then re-raises. *)
  let bk = mk_backend () in
  let fe = Client.connect ~name:"fe" (Client.r ()) bk ~clock:(Clock.create ~name:"fe" ()) in
  Verbs.set_fault (Client.connection fe) (Some (Verbs.Fault.make ~drop_p:1.0 ~seed:2L ()));
  check Alcotest.bool "ping fails after exhausting every budget" false (Client.ping fe);
  check Alcotest.bool "degraded reconnects attempted" true (Client.reconnects fe > 0);
  (* Clearing the fault heals the connection. *)
  Verbs.set_fault (Client.connection fe) None;
  check Alcotest.bool "healed" true (Client.ping fe)

let test_fault_retry_conservation () =
  (* Every nanosecond of fault handling — timeout waits, backoff,
     reconnect handshakes, injected delays — carries the fault_retry
     cause, so attribution still sums to elapsed time exactly. *)
  Asym_obs.set_enabled true;
  Asym_obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Asym_obs.reset ();
      Asym_obs.set_enabled false)
    (fun () ->
      let _, fe, lost = faulty_workload () in
      check Alcotest.int "workload intact" 0 lost;
      let clk = Client.clock fe in
      check Alcotest.bool "fault_retry time charged" true
        (Asym_obs.Attr.get Asym_obs.Attr.Fault_retry > 0);
      check Alcotest.int "conservation: attributed == elapsed (0 ns tolerance)"
        (Clock.now clk) (Asym_obs.Attr.total ()))

(* -- keepalive under grey periods --------------------------------------------- *)

let test_keepalive_rides_out_grey_period () =
  let bk = mk_backend () in
  let clk = Clock.create ~name:"fe" () in
  let fe = Client.connect ~name:"fe" (Client.rcb ()) bk ~clock:clk in
  Verbs.set_fault (Client.connection fe)
    (Some (Verbs.Fault.make ~drop_p:0. ~grey_drop_p:1.0 ~seed:4L ()));
  (* Grey for 3 ms, well under the 10 ms lease: renewals ride the faulty
     connection (retried like any verb, so merely delayed) and the node
     must never be declared crashed. *)
  Verbs.arm_grey (Client.connection fe) ~from_:(Simtime.ms 2) ~until:(Simtime.ms 5);
  let ka = Keepalive.create (Asym_util.Rng.create ~seed:1L) in
  Sched.run
    [
      Keepalive.heartbeat
        ~send:(fun () -> Client.ping fe)
        ka ~clock:clk ~node:"fe" ~period:(Simtime.ms 1) ~until:(Simtime.ms 20);
    ];
  check Alcotest.bool "no spurious failover across the grey period" true
    (Keepalive.alive ka "fe" ~now:(Clock.now clk));
  check Alcotest.bool "the grey period did cost retries" true (Client.fault_retries fe > 0)

(* -- fault-schedule checking -------------------------------------------------- *)

let subject () =
  match Asym_check.Subject.find "pbptree" with
  | Some s -> s
  | None -> Alcotest.fail "pbptree subject not registered"

let test_fuzz_with_faults () =
  let o = Asym_check.Fuzz.run ~clients:2 ~drop:0.05 (subject ()) ~steps:120 ~seed:11L in
  check
    Alcotest.(list string)
    (Fmt.str "%a" Asym_check.Fuzz.pp_outcome o)
    [] o.Asym_check.Fuzz.failures;
  check Alcotest.bool "losses happened" true (o.Asym_check.Fuzz.verb_timeouts > 0);
  check Alcotest.bool "retries happened" true (o.Asym_check.Fuzz.fault_retries > 0);
  check Alcotest.bool "grey periods armed" true (o.Asym_check.Fuzz.grey_periods > 0)

let test_fuzz_fault_determinism () =
  let run () = Asym_check.Fuzz.run ~clients:2 ~drop:0.08 (subject ()) ~steps:80 ~seed:9L in
  let a = run () and b = run () in
  check Alcotest.int "same retries" a.Asym_check.Fuzz.fault_retries b.Asym_check.Fuzz.fault_retries;
  check Alcotest.int "same timeouts" a.Asym_check.Fuzz.verb_timeouts b.Asym_check.Fuzz.verb_timeouts;
  check
    Alcotest.(list string)
    "same failures" a.Asym_check.Fuzz.failures b.Asym_check.Fuzz.failures

let test_sweep_with_faults () =
  (* Crash points compounded with transient loss: every recovery must
     still validate against the reference model. *)
  let o = Asym_check.Explorer.sweep ~stride:7 ~tear:false ~drop:0.05 (subject ()) ~ops:12 ~seed:3L in
  check Alcotest.int
    (Fmt.str "%a" Asym_check.Explorer.pp_outcome o)
    0
    (List.length o.Asym_check.Explorer.failures);
  check Alcotest.bool "sweep ran points" true (o.Asym_check.Explorer.points_run > 0)

let () =
  Alcotest.run "fault"
    [
      ( "verbs",
        [
          Alcotest.test_case "timeout raised and charged" `Quick test_verb_timeout_raised;
          Alcotest.test_case "fault timeout override" `Quick test_fault_timeout_override;
          Alcotest.test_case "atomics lose request only" `Quick test_atomic_loses_request_only;
          Alcotest.test_case "unsignaled exempt" `Quick test_unsignaled_exempt;
          Alcotest.test_case "grey window" `Quick test_grey_window;
          Alcotest.test_case "seeded injection reproducible" `Quick
            test_seeded_injection_reproducible;
        ] );
      ( "client-retry",
        [
          Alcotest.test_case "survives 20% loss" `Quick test_client_survives_faults;
          Alcotest.test_case "retry counts reproducible" `Quick test_retry_counts_reproducible;
          Alcotest.test_case "reconnect after budget" `Quick test_reconnect_after_budget;
          Alcotest.test_case "fault_retry conservation" `Quick test_fault_retry_conservation;
        ] );
      ( "keepalive",
        [ Alcotest.test_case "rides out grey period" `Quick test_keepalive_rides_out_grey_period ]
      );
      ( "check",
        [
          Alcotest.test_case "fuzz under faults" `Slow test_fuzz_with_faults;
          Alcotest.test_case "fuzz fault determinism" `Slow test_fuzz_fault_determinism;
          Alcotest.test_case "sweep under faults" `Slow test_sweep_with_faults;
        ] );
    ]
