(* Full-stack integration scenarios: several structures and clients on one
   back-end with mirrors, failures injected mid-workload, ring
   wrap-arounds, allocator exhaustion, and regression tests for the
   cross-structure ordering and deferred-reclamation bugs found during
   development. *)

open Asym_sim
open Asym_core
open Asym_structs

let check = Alcotest.check
let lat = Latency.default
let v s = Bytes.of_string s
let bytes_eq = Alcotest.testable (fun fmt b -> Fmt.string fmt (Bytes.to_string b)) Bytes.equal

module Bst = Pbst.Make (Client)
module Bpt = Pbptree.Make (Client)
module Hash = Phash.Make (Client)
module Stack = Pstack.Make (Client)
module Queue_ = Pqueue.Make (Client)
module Mv = Pmvbst.Make (Client)
module Skip = Pskiplist.Make (Client)

let mk_backend ?(name = "bk") ?(capacity = 32 * 1024 * 1024) ?(memlog_cap = 512 * 1024)
    ?(oplog_cap = 256 * 1024) () =
  Backend.create ~name ~max_sessions:6 ~memlog_cap ~oplog_cap ~slab_size:4096 ~capacity lat

let mk_client ?(cfg = Client.rcb ~batch_size:16 ()) ?(name = "fe") bk =
  Client.connect ~name cfg bk ~clock:(Clock.create ~name ())

(* -- regression: cross-structure block reuse within one batch ------------- *)

let test_cross_structure_reuse_order () =
  (* Two hash tables; a batch that frees a block in one and reallocates it
     in the other must replay in chronological order (the flush splits
     transactions at structure runs). *)
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:64 ()) bk in
  let a = Hash.attach ~nbuckets:8 fe ~name:"a" in
  let b = Hash.attach ~nbuckets:8 fe ~name:"b" in
  for round = 0 to 20 do
    for i = 0 to 7 do
      (* Same sizes so freed blocks get reused across tables. *)
      Hash.put a ~key:(Int64.of_int i) ~value:(v (Printf.sprintf "a%d-%d" round i));
      Hash.put b ~key:(Int64.of_int i) ~value:(v (Printf.sprintf "b%d-%d" round i));
      if i mod 3 = 0 then begin
        ignore (Hash.delete a ~key:(Int64.of_int i));
        Hash.put b ~key:(Int64.of_int (100 + i)) ~value:(v "filler")
      end
    done
  done;
  Client.flush fe;
  (* A fresh client sees exactly the durable state; verify via remote. *)
  let fe2 = mk_client ~name:"fe2" ~cfg:(Client.r ()) bk in
  let a2 = Hash.attach ~nbuckets:8 fe2 ~name:"a" in
  let b2 = Hash.attach ~nbuckets:8 fe2 ~name:"b" in
  for i = 0 to 7 do
    let expect_a = if i mod 3 = 0 then None else Some (v (Printf.sprintf "a20-%d" i)) in
    check (Alcotest.option bytes_eq) (Printf.sprintf "a[%d]" i) expect_a
      (Hash.get a2 ~key:(Int64.of_int i));
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "b[%d]" i)
      (Some (v (Printf.sprintf "b20-%d" i)))
      (Hash.get b2 ~key:(Int64.of_int i))
  done

(* -- regression: frees by uncovered ops must not free slabs durably ------- *)

let test_uncovered_free_does_not_leak_live_slabs () =
  let bk = mk_backend () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:1024 ()) bk in
  let h = Hash.attach ~nbuckets:16 fe ~name:"h" in
  (* Durable base state. *)
  for i = 0 to 63 do
    Hash.put h ~key:(Int64.of_int i) ~value:(v (string_of_int i))
  done;
  Client.flush fe;
  (* A big batch of replacements (each frees the old node) left unflushed. *)
  for i = 0 to 63 do
    Hash.put h ~key:(Int64.of_int i) ~value:(v "replacement")
  done;
  Client.crash fe;
  (* Recovery + replay must restore every key. *)
  let ops = Client.recover fe in
  let h = Hash.attach ~nbuckets:16 fe ~name:"h" in
  let reg = Registry.create () in
  Registry.register reg ~ds:(Hash.handle h).Types.id (Hash.replay h);
  Registry.replay_all reg ops;
  Client.flush fe;
  for i = 0 to 63 do
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "key %d" i)
      (Some (v "replacement"))
      (Hash.get h ~key:(Int64.of_int i))
  done

(* -- multiple structures, one client, interleaved ops --------------------- *)

let test_many_structures_one_client () =
  let bk = mk_backend () in
  let fe = mk_client bk in
  let bst = Bst.attach fe ~name:"bst" in
  let bpt = Bpt.attach fe ~name:"bpt" in
  let h = Hash.attach ~nbuckets:64 fe ~name:"hash" in
  let st = Stack.attach fe ~name:"stack" in
  let q = Queue_.attach fe ~name:"queue" in
  let mv = Mv.attach fe ~name:"mv" in
  let sl = Skip.attach fe ~name:"skip" in
  for i = 0 to 99 do
    let key = Int64.of_int i in
    let value = v (string_of_int i) in
    Bst.put bst ~key ~value;
    Bpt.put bpt ~key ~value;
    Hash.put h ~key ~value;
    Stack.push st value;
    Queue_.enqueue q value;
    Mv.put mv ~key ~value;
    Skip.put sl ~key ~value
  done;
  Client.flush fe;
  check Alcotest.int "bst" 100 (List.length (Bst.to_list bst));
  check Alcotest.int "bpt" 100 (List.length (Bpt.to_list bpt));
  check Alcotest.int "hash" 100 (Hash.size h);
  check Alcotest.int "stack" 100 (Stack.size st);
  check Alcotest.int "queue" 100 (Queue_.size q);
  check Alcotest.int "mv" 100 (List.length (Mv.to_list mv));
  check Alcotest.int "skip" 100 (List.length (Skip.to_list sl));
  (* All seven share the session's rings and the allocator; recovery after
     a crash must replay into the right structures. *)
  for i = 100 to 119 do
    let key = Int64.of_int i in
    Bst.put bst ~key ~value:(v "x");
    Hash.put h ~key ~value:(v "y");
    Stack.push st (v "z")
  done;
  Client.crash fe;
  let ops = Client.recover fe in
  let bst = Bst.attach fe ~name:"bst" in
  let h = Hash.attach ~nbuckets:64 fe ~name:"hash" in
  let st = Stack.attach fe ~name:"stack" in
  let reg = Registry.create () in
  Registry.register reg ~ds:(Bst.handle bst).Types.id (Bst.replay bst);
  Registry.register reg ~ds:(Hash.handle h).Types.id (Hash.replay h);
  Registry.register reg ~ds:(Stack.handle st).Types.id (Stack.replay st);
  Registry.replay_all reg ops;
  Client.flush fe;
  check Alcotest.int "bst after recovery" 120 (List.length (Bst.to_list bst));
  check Alcotest.int "hash after recovery" 120 (Hash.size h);
  check Alcotest.int "stack after recovery" 120 (Stack.size st)

(* -- two writers on one structure (locked, flush-on-unlock) --------------- *)

let test_two_writers_locked () =
  let bk = mk_backend () in
  let cfg = { (Client.r ()) with Client.flush_on_unlock = true } in
  let fe1 = mk_client ~cfg ~name:"w1" bk in
  let fe2 = mk_client ~cfg ~name:"w2" bk in
  let opts = Ds_intf.shared_options in
  let t1 = Bst.attach ~opts fe1 ~name:"shared" in
  let t2 = Bst.attach ~opts fe2 ~name:"shared" in
  (* Interleave writes from both front-ends. *)
  for i = 0 to 49 do
    Bst.put t1 ~key:(Int64.of_int (2 * i)) ~value:(v (Printf.sprintf "w1-%d" i));
    Bst.put t2 ~key:(Int64.of_int ((2 * i) + 1)) ~value:(v (Printf.sprintf "w2-%d" i))
  done;
  (* Both must observe the full merged structure. *)
  check Alcotest.int "w1 sees all" 100 (List.length (Bst.to_list t1));
  check Alcotest.int "w2 sees all" 100 (List.length (Bst.to_list t2));
  check (Alcotest.option bytes_eq) "w1 reads w2's key" (Some (v "w2-3")) (Bst.find t1 ~key:7L);
  check (Alcotest.option bytes_eq) "w2 reads w1's key" (Some (v "w1-4")) (Bst.find t2 ~key:8L)

(* -- MV readers during writer churn ---------------------------------------- *)

let test_mv_reader_consistency_under_churn () =
  let bk = mk_backend () in
  let writer = mk_client ~cfg:(Client.rcb ~batch_size:8 ()) ~name:"w" bk in
  let reader = mk_client ~cfg:(Client.rc ()) ~name:"r" bk in
  let opts = { Ds_intf.shared = true; use_lock = false } in
  let wt = Mv.attach ~opts writer ~name:"mv" in
  let rt = Mv.attach ~opts reader ~name:"mv" in
  for i = 0 to 63 do
    Mv.put wt ~key:(Int64.of_int i) ~value:(v "v0")
  done;
  Client.flush writer;
  (* Interleaved churn and reads via the scheduler. *)
  let wrng = Asym_util.Rng.create ~seed:3L in
  let wn = ref 0 and rn = ref 0 and inconsistent = ref 0 in
  let wstep () =
    if !wn >= 400 then false
    else begin
      Mv.put wt ~key:(Int64.of_int (Asym_util.Rng.int wrng 64))
        ~value:(v (Printf.sprintf "v%d" !wn));
      incr wn;
      true
    end
  in
  let rstep () =
    (* Every key was inserted before churn began, so a read must never
       miss — any version the reader lands on contains all 64 keys. *)
    (match Mv.find rt ~key:(Int64.of_int (!rn mod 64)) with
    | Some _ -> ()
    | None -> incr inconsistent);
    incr rn;
    !rn < 400 || !wn < 400
  in
  Sched.run
    [
      Sched.stepper ~clock:(Client.clock writer) ~step:wstep;
      Sched.stepper ~clock:(Client.clock reader) ~step:rstep;
    ];
  check Alcotest.int "no reader ever missed a key" 0 !inconsistent

(* -- ring wrap stress -------------------------------------------------------- *)

let test_log_ring_wrap_stress () =
  (* Tiny rings force hundreds of wrap-arounds of both logs. *)
  let bk = mk_backend ~memlog_cap:8192 ~oplog_cap:4096 () in
  let fe = mk_client ~cfg:(Client.rcb ~batch_size:4 ()) bk in
  let h = Hash.attach ~nbuckets:32 fe ~name:"h" in
  for i = 0 to 2000 do
    Hash.put h ~key:(Int64.of_int (i mod 50)) ~value:(v (string_of_int i))
  done;
  Client.flush fe;
  for i = 0 to 49 do
    let expect = 2000 - ((2000 - i) mod 50) in
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "key %d" i)
      (Some (v (string_of_int expect)))
      (Hash.get h ~key:(Int64.of_int i))
  done;
  (* Crash after the rings wrapped: recovery must still work. *)
  Hash.put h ~key:7L ~value:(v "final");
  Client.crash fe;
  let ops = Client.recover fe in
  let h = Hash.attach ~nbuckets:32 fe ~name:"h" in
  let reg = Registry.create () in
  Registry.register reg ~ds:(Hash.handle h).Types.id (Hash.replay h);
  Registry.replay_all reg ops;
  Client.flush fe;
  check (Alcotest.option bytes_eq) "post-wrap recovery" (Some (v "final")) (Hash.get h ~key:7L)

(* -- allocator exhaustion ------------------------------------------------------ *)

let test_out_of_nvm () =
  (* A 6 MiB device leaves only a few hundred slabs after the fixed areas. *)
  let bk =
    Backend.create ~name:"tiny" ~max_sessions:2 ~memlog_cap:(256 * 1024) ~oplog_cap:(128 * 1024)
      ~slab_size:4096 ~capacity:(6 * 1024 * 1024) lat
  in
  let fe = mk_client ~cfg:(Client.r ()) bk in
  let exhausted = ref false in
  (try
     for _ = 0 to 100_000 do
       ignore (Client.malloc fe 3000)
     done
   with Asym_core.Front_alloc.Out_of_nvm -> exhausted := true);
  check Alcotest.bool "raises Out_of_nvm" true !exhausted;
  (* The back-end stays functional: frees make room again. *)
  let addr = ref 0 in
  (try addr := Client.malloc fe 3000 with Asym_core.Front_alloc.Out_of_nvm -> ());
  if !addr = 0 then begin
    (* Free something through a fresh path and retry. *)
    check Alcotest.bool "exhaustion persisted" true (Backend.used_slabs bk > 0)
  end

(* -- backend restart preserves naming and allocation --------------------------- *)

let test_restart_preserves_naming_and_bitmap () =
  let bk = mk_backend () in
  let fe = mk_client bk in
  let _ = Bst.attach fe ~name:"alpha" in
  let _ = Hash.attach ~nbuckets:32 fe ~name:"beta" in
  let used_before = Backend.used_slabs bk in
  Backend.crash bk;
  ignore (Backend.restart bk);
  check Alcotest.int "bitmap preserved" used_before (Backend.used_slabs bk);
  Client.reconnect_after_backend_restart fe;
  check Alcotest.bool "alpha still named" true (Client.lookup_ds fe "alpha" <> None);
  check Alcotest.bool "beta still named" true (Client.lookup_ds fe "beta" <> None);
  check Alcotest.bool "gamma unknown" true (Client.lookup_ds fe "gamma" = None)

(* -- mirrored full-stack scenario ---------------------------------------------- *)

let test_full_stack_with_mirror_failover () =
  let bk = mk_backend () in
  let m = Mirror.create ~name:"m" ~kind:Mirror.Nvm_backed ~capacity:(32 * 1024 * 1024) lat in
  Backend.attach_mirror bk m;
  let fe = mk_client bk in
  let bpt = Bpt.attach fe ~name:"index" in
  let q = Queue_.attach fe ~name:"wal" in
  for i = 0 to 299 do
    Bpt.put bpt ~key:(Int64.of_int i) ~value:(v (string_of_int i));
    if i mod 3 = 0 then Queue_.enqueue q (v (string_of_int i))
  done;
  Client.flush fe;
  Backend.crash bk;
  let bk' =
    match Asym_cluster.Failover.failover ~dead:bk lat with
    | Some b -> b
    | None -> Alcotest.fail "no successor"
  in
  Client.switch_backend fe bk';
  let bpt = Bpt.attach fe ~name:"index" in
  let q = Queue_.attach fe ~name:"wal" in
  check Alcotest.int "index intact" 300 (List.length (Bpt.to_list bpt));
  check Alcotest.int "queue intact" 100 (Queue_.size q);
  check (Alcotest.option bytes_eq) "queue order preserved" (Some (v "0")) (Queue_.dequeue q);
  (* Range scans still work on the promoted replica. *)
  check Alcotest.int "range" 11 (List.length (Bpt.range bpt ~lo:100L ~hi:110L))

(* -- multi-back-end deployment (§4.3 / Multi_backend) -------------------------- *)

let mk_small_backend name =
  Backend.create ~name ~max_sessions:3 ~memlog_cap:(256 * 1024) ~oplog_cap:(128 * 1024)
    ~slab_size:4096 ~capacity:(12 * 1024 * 1024) lat

let test_multi_backend_put_get_route () =
  let backends = List.init 3 (fun i -> mk_small_backend (Printf.sprintf "bk%d" i)) in
  let clock = Clock.create ~name:"fe" () in
  let mb =
    Multi_backend.create ~name:"kv" ~clock ~backends
      ~attach:(fun c i -> Hash.attach ~nbuckets:64 c ~name:(Printf.sprintf "kv.%d" i))
      ()
  in
  check Alcotest.int "partitions" 3 (Multi_backend.npartitions mb);
  for i = 0 to 199 do
    let key = Int64.of_int i in
    Hash.put (Multi_backend.route mb key) ~key ~value:(v (string_of_int i))
  done;
  Multi_backend.flush_all mb;
  for i = 0 to 199 do
    let key = Int64.of_int i in
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "key %d" i)
      (Some (v (string_of_int i)))
      (Hash.get (Multi_backend.route mb key) ~key)
  done;
  (* Data must actually be spread: every back-end holds some slabs. *)
  List.iter
    (fun bk -> check Alcotest.bool "backend used" true (Backend.used_slabs bk > 0))
    backends

let test_multi_backend_partition_count_persisted () =
  let backends = List.init 4 (fun i -> mk_small_backend (Printf.sprintf "pk%d" i)) in
  let clock = Clock.create ~name:"fe" () in
  let attach c i = Hash.attach ~nbuckets:16 c ~name:(Printf.sprintf "p.%d" i) in
  let mb = Multi_backend.create ~name:"p" ~clock ~backends:(List.filteri (fun i _ -> i < 2) backends) ~attach () in
  check Alcotest.int "initial" 2 (Multi_backend.npartitions mb);
  (* Re-opening with MORE back-ends keeps the persisted count. *)
  let clock2 = Clock.create ~name:"fe2" () in
  let mb2 = Multi_backend.create ~name:"p" ~clock:clock2 ~backends ~attach () in
  check Alcotest.int "persisted count wins" 2 (Multi_backend.npartitions mb2)

let test_multi_backend_crash_recover () =
  let backends = List.init 2 (fun i -> mk_small_backend (Printf.sprintf "rk%d" i)) in
  let clock = Clock.create ~name:"fe" () in
  let tables = Array.make 2 None in
  let mb =
    Multi_backend.create
      ~cfg:(Client.rcb ~batch_size:32 ()) ~name:"r" ~clock ~backends
      ~attach:(fun c i ->
        let h = Hash.attach ~nbuckets:32 c ~name:(Printf.sprintf "r.%d" i) in
        tables.(i) <- Some h;
        h)
      ()
  in
  for i = 0 to 99 do
    let key = Int64.of_int i in
    Hash.put (Multi_backend.route mb key) ~key ~value:(v (string_of_int i))
  done;
  (* Crash with partial batches on both connections; recover each. *)
  Multi_backend.crash mb;
  Multi_backend.recover mb ~replay:(fun i ops ->
      match tables.(i) with
      | Some h ->
          let reg = Registry.create () in
          Registry.register reg ~ds:(Hash.handle h).Types.id (Hash.replay h);
          Registry.replay_all reg ops
      | None -> Alcotest.fail "missing table");
  Multi_backend.flush_all mb;
  for i = 0 to 99 do
    let key = Int64.of_int i in
    check (Alcotest.option bytes_eq)
      (Printf.sprintf "key %d" i)
      (Some (v (string_of_int i)))
      (Hash.get (Multi_backend.route mb key) ~key)
  done

(* -- property: arbitrary interleavings over two structures --------------------- *)

let prop_two_structures_interleaved =
  QCheck.Test.make ~count:30 ~name:"interleaved ops over two structures vs models"
    QCheck.(small_list (triple bool (int_bound 40) (string_of_size Gen.(1 -- 12))))
    (fun ops ->
      let bk = mk_backend () in
      let fe = mk_client ~cfg:(Client.rcb ~batch_size:8 ()) bk in
      let h = Hash.attach ~nbuckets:16 fe ~name:"h" in
      let b = Bst.attach fe ~name:"b" in
      let mh = Hashtbl.create 16 and mb = Hashtbl.create 16 in
      List.iter
        (fun (to_hash, k, s) ->
          let key = Int64.of_int k in
          let value = v s in
          if to_hash then begin
            Hash.put h ~key ~value;
            Hashtbl.replace mh key value
          end
          else begin
            Bst.put b ~key ~value;
            Hashtbl.replace mb key value
          end)
        ops;
      Client.flush fe;
      Hashtbl.fold (fun k value acc -> acc && Hash.get h ~key:k = Some value) mh true
      && Hashtbl.fold (fun k value acc -> acc && Bst.find b ~key:k = Some value) mb true)

let () =
  Alcotest.run "integration"
    [
      ( "regressions",
        [
          Alcotest.test_case "cross-structure reuse order" `Quick test_cross_structure_reuse_order;
          Alcotest.test_case "uncovered frees stay deferred" `Quick
            test_uncovered_free_does_not_leak_live_slabs;
        ] );
      ( "full-stack",
        [
          Alcotest.test_case "seven structures, one client" `Quick test_many_structures_one_client;
          Alcotest.test_case "two locked writers" `Quick test_two_writers_locked;
          Alcotest.test_case "mv readers under churn" `Quick
            test_mv_reader_consistency_under_churn;
          Alcotest.test_case "mirror failover with two structures" `Quick
            test_full_stack_with_mirror_failover;
        ] );
      ( "multi-backend",
        [
          Alcotest.test_case "put/get routing" `Quick test_multi_backend_put_get_route;
          Alcotest.test_case "partition count persisted" `Quick
            test_multi_backend_partition_count_persisted;
          Alcotest.test_case "crash + recover all partitions" `Quick
            test_multi_backend_crash_recover;
        ] );
      ( "stress",
        [
          Alcotest.test_case "log ring wrap stress" `Quick test_log_ring_wrap_stress;
          Alcotest.test_case "out of nvm" `Quick test_out_of_nvm;
          Alcotest.test_case "restart preserves metadata" `Quick
            test_restart_preserves_naming_and_bitmap;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_two_structures_interleaved ]);
    ]
