(* The verb-granular concurrency engine: determinism (same seed twice ->
   byte-identical results), true within-operation interleaving (a lock
   loser provably waits while the holder works), and attribution
   conservation under mid-operation suspension. *)

open Asym_sim
open Asym_core
module Obs = Asym_obs
module Attr = Asym_obs.Attr
module Runner = Asym_harness.Runner
module Multiclient = Asym_harness.Multiclient
module Bench_json = Asym_harness.Bench_json

let check = Alcotest.check
let lat = Latency.default

let with_obs f () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)

let align clocks =
  let t0 = Sched.makespan clocks in
  List.iter (fun c -> Clock.wait_until c t0) clocks;
  t0

(* -- determinism ------------------------------------------------------------ *)

(* The scheduler picks the next client purely from (virtual time, client
   id): the same seeds must reproduce the same co-simulation exactly —
   same makespan, same throughput, same attribution. *)
let test_deterministic_point () =
  let run () =
    Multiclient.contention_point ~writers:3 ~preload:128 ~duration:(Simtime.ms 3)
  in
  let a = run () and b = run () in
  check (Alcotest.float 0.0) "total kops identical" a.Multiclient.total_kops
    b.Multiclient.total_kops;
  check (Alcotest.float 0.0) "lock-wait share identical" a.Multiclient.lock_wait_share
    b.Multiclient.lock_wait_share;
  check (Alcotest.float 0.0) "avg wait identical" a.Multiclient.avg_lock_wait_ns
    b.Multiclient.avg_lock_wait_ns

(* Same seed twice -> the asymnvm-bench/1 document is byte-identical,
   cells and shape verdicts included (the CI bench-diff contract). *)
let test_deterministic_json () =
  let doc () =
    let r = Multiclient.contention ~preload:64 ~duration:(Simtime.ms 2) in
    Obs.Json.to_string
      (Bench_json.doc ~scale:"test"
         ~experiments:[ ("contention", r) ]
         ~checks:(Bench_json.checks_for "contention" r))
  in
  check Alcotest.string "bench JSON byte-identical across runs" (doc ()) (doc ())

(* The per-clock attribution a run produces is part of the deterministic
   surface too: identical per-cause global deltas across two runs. *)
let test_deterministic_attribution () =
  let run () =
    let mark = Attr.snapshot () in
    ignore
      (Multiclient.contention_point ~writers:2 ~preload:64 ~duration:(Simtime.ms 2));
    List.map (fun (c, v) -> (Attr.name c, v)) (Attr.since mark)
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "attribution deltas identical" (run ()) (run ())

(* -- true within-operation interleaving ------------------------------------- *)

(* Two writers hammer one lock. Under the old engine each operation ran
   to completion before the other client moved, so both clients' lock
   holds started from the same aligned instant and their virtual
   critical sections overlapped. Under the co-simulation the CAS probes
   interleave with the holder's verbs: the loser accumulates nonzero
   lock_wait and every critical section is disjoint in virtual time. *)
let test_lock_interleaving () =
  let rig = Runner.make_rig lat in
  let mk name =
    let c =
      Runner.fresh_client ~name rig
        { (Client.rcb ~batch_size:8 ()) with Client.flush_on_unlock = true }
    in
    (c, Client.register_ds c "obj")
  in
  let c0, h0 = mk "w0" and c1, h1 = mk "w1" in
  let addr = Client.malloc c0 64 in
  ignore (align [ Client.clock c0; Client.clock c1 ]);
  let sections = Array.make 2 [] in
  let body i c (h : Types.handle) =
    let clk = Client.clock c in
    Sched.client ~clock:clk ~run:(fun () ->
        for _ = 1 to 5 do
          Client.writer_lock c h;
          let locked_at = Clock.now clk in
          ignore (Client.op_begin c ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
          Client.write c ~ds:h.Types.id ~addr (Bytes.make 64 'x');
          Client.op_end c ~ds:h.Types.id;
          sections.(i) <- (locked_at, Clock.now clk) :: sections.(i);
          Client.writer_unlock c h
        done)
  in
  Sched.run [ body 0 c0 h0; body 1 c1 h1 ];
  check Alcotest.int "both clients completed" 5 (List.length sections.(0));
  check Alcotest.int "both clients completed" 5 (List.length sections.(1));
  let waited = Client.lock_wait_ns c0 + Client.lock_wait_ns c1 in
  (* Probe cost alone gives each op >= rdma_atomic_ns of Lock_wait; real
     contention makes the losers' spins much larger. *)
  Alcotest.(check bool)
    "losers accumulated lock wait" true
    (waited > 10 * lat.Latency.rdma_atomic_ns);
  (* Critical sections are serialized in virtual time across clients. *)
  List.iter
    (fun (a0, b0) ->
      List.iter
        (fun (a1, b1) ->
          Alcotest.(check bool)
            (Printf.sprintf "sections [%d,%d] and [%d,%d] disjoint" a0 b0 a1 b1)
            true
            (b0 <= a1 || b1 <= a0))
        sections.(1))
    sections.(0)

(* -- conservation under suspension ------------------------------------------ *)

(* Random per-client advance/wait sequences, co-scheduled: every clock's
   local per-cause sums must equal its elapsed virtual time exactly, and
   the global sink must equal the sum of the locals — no nanosecond is
   lost or double-counted when a client suspends mid-sequence. *)
let prop_conservation_under_suspension =
  let gen =
    QCheck.(
      small_list (small_list (pair (int_bound (List.length Attr.all - 1)) (int_bound 1_000))))
  in
  QCheck.Test.make ~count:100 ~name:"per-clock attribution conserved under co-sim" gen
    (fun seqs ->
      Obs.set_enabled true;
      Obs.reset ();
      Fun.protect ~finally:(fun () ->
          Obs.reset ();
          Obs.set_enabled false)
      @@ fun () ->
      let clocks =
        List.mapi (fun i _ -> Clock.create ~name:(Printf.sprintf "c%d" i) ()) seqs
      in
      let clients =
        List.map2
          (fun clk seq ->
            Sched.client ~clock:clk ~run:(fun () ->
                List.iter
                  (fun (ci, d) ->
                    let cause = List.nth Attr.all ci in
                    Clock.advance ~cause clk d)
                  seq))
          clocks seqs
      in
      Sched.run clients;
      List.for_all
        (fun clk -> Attr.local_total (Clock.attr clk) = Clock.now clk)
        clocks
      && Attr.total () = List.fold_left (fun a clk -> a + Clock.now clk) 0 clocks)

(* Client-level version: two real clients co-scheduled; each per-op
   attribution window (taken against the clock-local sink) still sums to
   that client's elapsed time even though ops suspend mid-flight. *)
let test_client_conservation () =
  let rig = Runner.make_rig lat in
  let mk i =
    let c =
      Runner.fresh_client ~name:(Printf.sprintf "cc%d" i) rig (Client.rcb ~batch_size:8 ())
    in
    (c, Runner.client_instance Runner.Bst c ~name:(Printf.sprintf "ds%d" i))
  in
  let pairs = [ mk 0; mk 1 ] in
  let clocks = List.map (fun (c, _) -> Client.clock c) pairs in
  let t0 = align clocks in
  let marks =
    List.map (fun clk -> (clk, Attr.local_snapshot (Clock.attr clk))) clocks
  in
  let clients =
    List.mapi
      (fun i (c, inst) ->
        let clk = Client.clock c in
        let rng = Asym_util.Rng.create ~seed:(Int64.of_int (40 + i)) in
        Sched.client ~clock:clk ~run:(fun () ->
            for _ = 1 to 200 do
              let k = Int64.of_int (Asym_util.Rng.int rng 512) in
              inst.Runner.put k (Runner.value_of k)
            done))
      pairs
  in
  Sched.run clients;
  List.iter
    (fun (clk, mark) ->
      let charged =
        List.fold_left (fun a (_, v) -> a + v) 0 (Attr.local_since (Clock.attr clk) mark)
      in
      check Alcotest.int
        (Printf.sprintf "%s: local charges == elapsed" (Clock.name clk))
        (Clock.now clk - t0) charged)
    marks

(* -- cluster timers --------------------------------------------------------- *)

(* A keepalive heartbeat is just another co-simulated client: its
   renewals land between the worker's verbs at true virtual times, the
   lease stays fresh for exactly as long as the heartbeat runs, and
   lapses once it stops. *)
let test_heartbeat_interleaves () =
  let module Ka = Asym_cluster.Keepalive in
  let rig = Runner.make_rig lat in
  let c = Runner.fresh_client ~name:"hb-fe" rig (Client.rcb ~batch_size:8 ()) in
  let inst = Runner.client_instance Runner.Bst c ~name:"hbds" in
  let clk = Client.clock c in
  let kclk = Clock.create ~name:"ka" () in
  ignore (align [ clk; kclk ]);
  let lease = Simtime.us 500 in
  let stop = Clock.now clk + Simtime.ms 2 in
  let ka = Ka.create ~lease ~skew:Simtime.zero (Asym_util.Rng.create ~seed:9L) in
  let hb = Ka.heartbeat ka ~clock:kclk ~node:"fe" ~period:(Simtime.us 200) ~until:stop in
  let rng = Asym_util.Rng.create ~seed:10L in
  let worker =
    Sched.client ~clock:clk ~run:(fun () ->
        while Clock.now clk < stop do
          let k = Int64.of_int (Asym_util.Rng.int rng 256) in
          inst.Runner.put k (Runner.value_of k)
        done)
  in
  Sched.run [ worker; hb ];
  Alcotest.(check bool) "alive while heartbeating" true (Ka.alive ka "fe" ~now:stop);
  Alcotest.(check bool)
    "lease lapses after the heartbeat ends" false
    (Ka.alive ka "fe" ~now:(stop + (2 * lease) + 1))

let () =
  Alcotest.run "engine"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same point" `Quick (fun () ->
              test_deterministic_point ());
          Alcotest.test_case "same seed, same bench JSON" `Quick (fun () ->
              test_deterministic_json ());
          Alcotest.test_case "same seed, same attribution" `Quick
            (with_obs test_deterministic_attribution);
        ] );
      ( "interleaving",
        [ Alcotest.test_case "lock loser waits, sections disjoint" `Quick (fun () ->
              test_lock_interleaving ()) ] );
      ( "conservation",
        [
          QCheck_alcotest.to_alcotest prop_conservation_under_suspension;
          Alcotest.test_case "client windows under co-sim" `Quick
            (with_obs test_client_conservation);
        ] );
      ( "cluster-timers",
        [ Alcotest.test_case "heartbeat interleaves with verbs" `Quick (fun () ->
              test_heartbeat_interleaves ()) ] );
    ]
