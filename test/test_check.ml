(* Tier-1 suite for lib/check: the crash-point explorer, the reference
   models, and the fault fuzzer, on a bounded op budget so `dune runtest`
   stays fast. The full exhaustive sweep is `make crashsweep`. *)

open Asym_core
module Check = Asym_check
module Model = Check.Model
module Subject = Check.Subject
module Explorer = Check.Explorer
module Fuzz = Check.Fuzz

let check = Alcotest.check

(* ---------------- reference models ---------------- *)

let test_model_map_semantics () =
  let m = Model.empty_map in
  let m = Model.apply m (Model.Put (5L, Bytes.of_string "a")) in
  let m = Model.apply m (Model.Put (1L, Bytes.of_string "b")) in
  let m = Model.apply m (Model.Put (5L, Bytes.of_string "c")) in
  let m = Model.apply m (Model.Delete 9L) in
  check
    Alcotest.(list (pair int64 string))
    "sorted, updated, delete of absent key ignored"
    [ (1L, "b"); (5L, "c") ]
    (List.map (fun (k, v) -> (k, Bytes.to_string v)) (Model.dump m))

let test_model_seq_semantics () =
  let strings m = List.map (fun (_, v) -> Bytes.to_string v) (Model.dump m) in
  let l =
    List.fold_left Model.apply Model.empty_lifo
      [ Model.Push (Bytes.of_string "a"); Model.Push (Bytes.of_string "b"); Model.Pop ]
  in
  check Alcotest.(list string) "lifo pops the newest" [ "a" ] (strings l);
  let f =
    List.fold_left Model.apply Model.empty_fifo
      [ Model.Push (Bytes.of_string "a"); Model.Push (Bytes.of_string "b"); Model.Pop ]
  in
  check Alcotest.(list string) "fifo pops the oldest" [ "b" ] (strings f);
  check Alcotest.(list string) "pop on empty is a no-op" []
    (strings (Model.apply Model.empty_lifo Model.Pop))

let test_model_generate_deterministic () =
  let a = Model.generate ~kind:`Map ~ops:40 ~seed:7L in
  let b = Model.generate ~kind:`Map ~ops:40 ~seed:7L in
  check Alcotest.bool "same seed, same schedule" true (a = b);
  let c = Model.generate ~kind:`Map ~ops:40 ~seed:8L in
  check Alcotest.bool "different seed, different schedule" false (a = c)

(* Satellite 1: every registered structure, driven crash-free through a
   fixed-seed schedule, must agree with its reference model. *)
let test_subject_matches_model (s : Subject.t) () =
  let opl = Model.generate ~kind:s.Subject.kind ~ops:60 ~seed:42L in
  let bk =
    Backend.create ~name:"bk" ~max_sessions:4 ~memlog_cap:(512 * 1024) ~oplog_cap:(256 * 1024)
      ~slab_size:4096
      ~capacity:(16 * 1024 * 1024)
      Asym_sim.Latency.default
  in
  let fe =
    Client.connect ~name:"fe"
      (Client.rcb ~batch_size:8 ())
      bk
      ~clock:(Asym_sim.Clock.create ~name:"fe" ())
  in
  let inst = s.Subject.attach fe in
  let model = List.fold_left Model.apply s.Subject.model0 opl in
  List.iter inst.Subject.apply opl;
  Client.flush fe;
  check Alcotest.bool
    (s.Subject.name ^ " dump = model after 60 ops")
    true
    (inst.Subject.dump () = Model.dump model)

(* ---------------- crash-point census ---------------- *)

let test_census_deterministic () =
  let s = Option.get (Subject.find "pbst") in
  let o1 = Explorer.sweep ~stride:1000 s ~ops:15 ~seed:3L in
  let o2 = Explorer.sweep ~stride:1000 s ~ops:15 ~seed:3L in
  check Alcotest.int "same schedule, same census" o1.Explorer.boundaries o2.Explorer.boundaries;
  check Alcotest.bool "census is non-trivial" true (o1.Explorer.boundaries > 15)

let test_census_sites_gated () =
  (* Only client-initiated verbs count: every site label carries the
     rdma.* context prefix, never a bare backend-local device write. *)
  let s = Option.get (Subject.find "pmvbst") in
  let o = Explorer.sweep ~stride:1000 s ~ops:12 ~seed:1L in
  check Alcotest.bool "has sites" true (o.Explorer.sites <> []);
  List.iter
    (fun (site, _) ->
      check Alcotest.bool (site ^ " is client-initiated") true
        (String.length site >= 5 && String.sub site 0 5 = "rdma."))
    o.Explorer.sites;
  check Alcotest.bool "mv structures expose CAS boundaries" true
    (List.exists (fun (site, _) -> site = "rdma.cas/nvm.cas") o.Explorer.sites)

(* ---------------- the sweep (tentpole acceptance) ---------------- *)

(* One structure exhaustively at every crash point... *)
let test_sweep_exhaustive_pbst () =
  let s = Option.get (Subject.find "pbst") in
  let o = Explorer.sweep s ~ops:25 ~seed:1L in
  check Alcotest.int
    (Fmt.str "pbst exhaustive: %a" Explorer.pp_outcome o)
    0
    (List.length o.Explorer.failures)

(* ...and all eight on a bounded budget (sampled points + torn variants). *)
let test_sweep_all_structures (s : Subject.t) () =
  let o = Explorer.sweep ~stride:3 s ~ops:10 ~seed:2L in
  check Alcotest.int
    (Fmt.str "%a" Explorer.pp_outcome o)
    0
    (List.length o.Explorer.failures);
  check Alcotest.bool "ran at least one point" true (o.Explorer.points_run > 0)

let test_run_point_roundtrip () =
  let s = Option.get (Subject.find "pqueue") in
  let o = Explorer.sweep ~stride:4 s ~ops:12 ~seed:5L in
  check Alcotest.int "sweep clean" 0 (List.length o.Explorer.failures);
  (* Reproducer mode re-runs single points and agrees with the sweep. *)
  check Alcotest.bool "point 1 clean" true
    (Explorer.run_point s ~ops:12 ~seed:5L ~point:1 ~tear:false = None);
  check Alcotest.bool "point 2 torn clean" true
    (Explorer.run_point s ~ops:12 ~seed:5L ~point:2 ~tear:true = None)

(* The checker itself must be falsifiable: disable op-log checksum
   validation and the torn-write sweep has to catch the resulting
   corrupt replay. A sweep that cannot fail checks nothing. *)
let test_sweep_catches_broken_recovery () =
  Fun.protect
    ~finally:(fun () -> Log.crc_check := true)
    (fun () ->
      Log.crc_check := false;
      let s = Option.get (Subject.find "pstack") in
      let o = Explorer.sweep s ~ops:15 ~seed:1L in
      check Alcotest.bool
        (Fmt.str "disabled CRC must surface failures: %a" Explorer.pp_outcome o)
        true
        (o.Explorer.failures <> []);
      (* Every failure names a torn run — the clean variants stay green. *)
      List.iter
        (fun f -> check Alcotest.bool "failure is a torn variant" true (f.Explorer.torn <> None))
        o.Explorer.failures)

(* ---------------- fuzzer ---------------- *)

let test_fuzz_multi_client (s : Subject.t) () =
  let o = Fuzz.run ~clients:2 s ~steps:120 ~seed:11L in
  check
    Alcotest.(list string)
    (Fmt.str "%a" Fuzz.pp_outcome o)
    [] o.Fuzz.failures;
  check Alcotest.bool "applied ops" true (o.Fuzz.ops_applied > 0);
  check Alcotest.bool "validated" true (o.Fuzz.validations > 0)

let test_fuzz_exercises_faults () =
  let s = Option.get (Subject.find "phash") in
  let o = Fuzz.run ~clients:2 s ~steps:200 ~seed:1L in
  check Alcotest.(list string) (Fmt.str "%a" Fuzz.pp_outcome o) [] o.Fuzz.failures;
  check Alcotest.bool "client crashes happened" true (o.Fuzz.client_crashes > 0);
  check Alcotest.bool "backend restarts happened" true (o.Fuzz.backend_restarts > 0);
  check Alcotest.bool "a promotion or mirror crash happened" true
    (o.Fuzz.promotions + o.Fuzz.mirror_crashes > 0)

let test_fuzz_deterministic () =
  let s = Option.get (Subject.find "pstack") in
  let a = Fuzz.run s ~steps:80 ~seed:9L and b = Fuzz.run s ~steps:80 ~seed:9L in
  check Alcotest.int "same ops" a.Fuzz.ops_applied b.Fuzz.ops_applied;
  check Alcotest.int "same promotions" a.Fuzz.promotions b.Fuzz.promotions;
  check Alcotest.(list string) "same failures" a.Fuzz.failures b.Fuzz.failures

let per_subject f = List.map (fun s -> Alcotest.test_case s.Subject.name `Quick (f s)) Subject.all

let () =
  Alcotest.run "check"
    [
      ( "model",
        [
          Alcotest.test_case "map semantics" `Quick test_model_map_semantics;
          Alcotest.test_case "sequence semantics" `Quick test_model_seq_semantics;
          Alcotest.test_case "deterministic schedules" `Quick test_model_generate_deterministic;
        ] );
      ("subject vs model", per_subject (fun s -> test_subject_matches_model s));
      ( "census",
        [
          Alcotest.test_case "deterministic" `Quick test_census_deterministic;
          Alcotest.test_case "client-initiated sites only" `Quick test_census_sites_gated;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "pbst exhaustive" `Quick test_sweep_exhaustive_pbst;
          Alcotest.test_case "single-point reproducer" `Quick test_run_point_roundtrip;
          Alcotest.test_case "catches disabled CRC validation" `Quick
            test_sweep_catches_broken_recovery;
        ] );
      ("sweep all structures", per_subject (fun s -> test_sweep_all_structures s));
      ( "fuzz",
        [
          Alcotest.test_case "faults exercised, no failures" `Quick test_fuzz_exercises_faults;
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
        ] );
      ("fuzz all structures", per_subject (fun s -> test_fuzz_multi_client s));
    ]
