(* A durable work queue shared by a producer and a consumer front-end,
   co-simulated with the virtual-time scheduler. The producer crashes
   mid-burst and recovers; no acknowledged message is lost and the
   consumer drains everything exactly once.

   Run with: dune exec examples/message_queue.exe *)

open Asym_core
open Asym_sim
module Q = Asym_structs.Pqueue.Make (Client)

let messages = 2_000

let () =
  Fmt.pr "== Durable message queue: producer + consumer front-ends ==@.@.";
  let backend = Backend.create ~name:"backend" ~capacity:(64 * 1024 * 1024) Latency.default in
  (* Producer AND consumer mutate the queue, so both are writers: they
     must take the exclusive lock per operation and flush their memory
     logs before releasing it, and neither may cache queue state (the
     paper notes shared queues/stacks forgo the single-writer fast path
     and its batching because of exactly this contention). *)
  let shared_cfg = { (Client.r ()) with Client.flush_on_unlock = true } in
  let opts = Asym_structs.Ds_intf.shared_options in
  let pclock = Clock.create ~name:"producer" () in
  let producer = Client.connect ~name:"producer" shared_cfg backend ~clock:pclock in
  let cclock = Clock.create ~name:"consumer" () in
  let consumer = Client.connect ~name:"consumer" shared_cfg backend ~clock:cclock in
  let pq = Q.attach ~opts producer ~name:"jobs" in
  let cq = Q.attach ~opts consumer ~name:"jobs" in

  let produced = ref 0 in
  let consumed = ref [] in
  let crash_at = messages / 2 in
  let crashed = ref false in

  let producer_step () =
    if !produced >= messages then false
    else begin
      (if !produced = crash_at && not !crashed then begin
         (* Die with a partially flushed batch, then recover. *)
         Fmt.pr "producer crashes after %d sends (virtual t=%a)...@." !produced Simtime.pp
           (Clock.now pclock);
         crashed := true;
         Client.crash producer;
         let ops = Client.recover producer in
         let pq = Q.attach ~opts producer ~name:"jobs" in
         let reg = Asym_structs.Registry.create () in
         Asym_structs.Registry.register reg ~ds:(Q.handle pq).Types.id (Q.replay pq);
         Asym_structs.Registry.replay_all reg ops;
         Client.flush producer;
         Fmt.pr "producer recovered; replayed %d in-flight sends@." (List.length ops)
       end);
      Q.enqueue pq (Bytes.of_string (Printf.sprintf "job-%05d" !produced));
      incr produced;
      true
    end
  in
  let consumer_step () =
    match Q.dequeue cq with
    | Some msg ->
        consumed := Bytes.to_string msg :: !consumed;
        true
    | None ->
        (* Queue momentarily empty: keep polling while the producer runs. *)
        Clock.advance cclock (Simtime.us 10);
        !produced < messages || Q.size cq > 0
  in
  Sched.run
    [
      Sched.stepper ~clock:pclock ~step:producer_step;
      Sched.stepper ~clock:cclock ~step:consumer_step;
    ];
  (* Drain the tail. *)
  let rec drain () =
    match Q.dequeue cq with
    | Some msg ->
        consumed := Bytes.to_string msg :: !consumed;
        drain ()
    | None -> ()
  in
  drain ();

  let got = List.length !consumed in
  let distinct = List.sort_uniq compare !consumed in
  Fmt.pr "@.produced %d messages; consumed %d (%d distinct)@." !produced got
    (List.length distinct);
  Fmt.pr "producer virtual time %a, consumer %a@." Simtime.pp (Clock.now pclock) Simtime.pp
    (Clock.now cclock);
  if got = messages && List.length distinct = messages then Fmt.pr "@.message_queue OK@."
  else begin
    Fmt.pr "@.message_queue FAILED@.";
    exit 1
  end
