type node_id = string

type t = {
  replicas : int;
  lease : Asym_sim.Simtime.t;
  skew : Asym_sim.Simtime.t;
  rng : Asym_util.Rng.t;
  (* per node, per replica: the virtual time each replica last saw a
     renewal *)
  seen : (node_id, Asym_sim.Simtime.t array) Hashtbl.t;
}

let create ?(replicas = 3) ?(lease = Asym_sim.Simtime.ms 10) ?(skew = Asym_sim.Simtime.us 100)
    rng =
  assert (replicas >= 1);
  { replicas; lease; skew; rng; seen = Hashtbl.create 8 }

let observe t node ~now =
  let obs =
    match Hashtbl.find_opt t.seen node with
    | Some a -> a
    | None ->
        let a = Array.make t.replicas 0 in
        Hashtbl.replace t.seen node a;
        a
  in
  for i = 0 to t.replicas - 1 do
    let delay = if t.skew = 0 then 0 else Asym_util.Rng.int t.rng (t.skew + 1) in
    obs.(i) <- max obs.(i) (now + delay)
  done

let register = observe
let renew = observe

let alive t node ~now =
  match Hashtbl.find_opt t.seen node with
  | None -> false
  | Some obs ->
      let expired = Array.fold_left (fun n seen -> if now > seen + t.lease then n + 1 else n) 0 obs in
      (* Crashed only when a majority of replicas saw the lease expire. *)
      expired * 2 <= t.replicas

let crashed t ~now =
  Hashtbl.fold (fun node _ acc -> if alive t node ~now then acc else node :: acc) t.seen []

let forget t node = Hashtbl.remove t.seen node
let members t = Hashtbl.fold (fun node _ acc -> node :: acc) t.seen []

(* A co-simulated heartbeat: registers the node, then renews every
   [period] until [until]. Each wait is a scheduler suspension point, so
   when run alongside front-end clients the renewals land between their
   verbs at true virtual times — lease expiry races verb traffic instead
   of being checked only at operation boundaries.

   [send] models the renewal actually crossing the (possibly faulty)
   fabric: when it returns [false] the renewal for that period is simply
   not observed. The lease absorbs the gap — a grey period shorter than
   the lease minus one period costs nothing, which is what keeps transient
   fabric trouble from masquerading as a dead node. *)
let heartbeat ?(send = fun () -> true) t ~clock ~node ~period ~until =
  Asym_sim.Sched.client ~clock ~run:(fun () ->
      if send () then renew t node ~now:(Asym_sim.Clock.now clock);
      while Asym_sim.Clock.now clock < until do
        let next = min until (Asym_sim.Clock.now clock + period) in
        Asym_sim.Clock.wait_until clock next;
        if send () then renew t node ~now:(Asym_sim.Clock.now clock)
      done)
