(** Lease-based failure detection (the paper's keepAlive service, §7.2).

    The paper delegates failure detection to a replicated ZooKeeper
    ensemble: every node holds a lease and renews it periodically; a node
    whose lease expires is declared crashed. This module reproduces that
    contract over virtual time — including the ensemble: a node is only
    declared crashed once a {e majority} of detector replicas has seen its
    lease expire (replicas may observe renewals with different network
    skews). *)

type node_id = string

type t

val create :
  ?replicas:int -> ?lease:Asym_sim.Simtime.t -> ?skew:Asym_sim.Simtime.t ->
  Asym_util.Rng.t -> t
(** [replicas] defaults to 3, [lease] to 10 ms of virtual time, [skew] to
    the maximum per-replica observation delay (default 100 µs). *)

val register : t -> node_id -> now:Asym_sim.Simtime.t -> unit
val renew : t -> node_id -> now:Asym_sim.Simtime.t -> unit
(** Heartbeat: each detector replica observes the renewal with its own
    skew. Unknown nodes are registered implicitly. *)

val alive : t -> node_id -> now:Asym_sim.Simtime.t -> bool
(** Majority verdict at time [now]. *)

val crashed : t -> now:Asym_sim.Simtime.t -> node_id list
(** All registered nodes a majority considers expired. *)

val forget : t -> node_id -> unit
(** Remove a node from the group (Case 5: crashed mirror is dropped). *)

val members : t -> node_id list

val heartbeat :
  ?send:(unit -> bool) ->
  t ->
  clock:Asym_sim.Clock.t ->
  node:node_id ->
  period:Asym_sim.Simtime.t ->
  until:Asym_sim.Simtime.t ->
  Asym_sim.Sched.client
(** A co-simulation client that registers [node] and then renews its
    lease every [period] of virtual time until [until]. Handed to
    {!Asym_sim.Sched.run} alongside front-end clients, each renewal is a
    suspension point, so lease timers genuinely interleave with RDMA
    verb traffic instead of firing only at operation boundaries.

    [send] (default: always [true]) is called once per period and models
    the renewal surviving the fabric — pass {!Asym_core.Client.ping} (or
    any retried probe) to make renewals ride the same faulty connection
    as the data path. A [false] skips that period's renewal; the lease
    majority absorbs grey periods shorter than [lease - period] without
    declaring the node crashed. *)
