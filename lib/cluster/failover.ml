open Asym_core

let elect mirrors =
  let live = List.filter (fun m -> not (Mirror.is_crashed m)) mirrors in
  match List.find_opt (fun m -> Mirror.kind m = Mirror.Nvm_backed) live with
  | Some m -> Some m
  | None -> ( match live with m :: _ -> Some m | [] -> None)

let promote ?(name = "promoted-backend") m lat =
  Asym_obs.Span.instant ~cat:"fault" ~track:(Mirror.name m) "mirror.promote";
  match Mirror.kind m with
  | Mirror.Nvm_backed -> Backend.of_device ~name (Mirror.device m) lat
  | Mirror.Ssd_backed ->
      let src = Mirror.device m in
      let dev =
        Asym_nvm.Device.create ~name:(name ^ ".nvm")
          ~capacity:(Asym_nvm.Device.capacity src) lat
      in
      Asym_nvm.Device.load dev (Asym_nvm.Device.snapshot src);
      Backend.of_device ~name dev lat

let failover ?name ~dead lat =
  match elect (Backend.mirrors dead) with
  | None -> None
  | Some m -> Some (promote ?name m lat)
