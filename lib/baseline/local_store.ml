(** The best-possible symmetric NVM architecture (paper §9.2 baseline).

    Data structures live in NVM attached to the local memory bus and are
    manipulated with loads/stores plus persist fences; for fault tolerance
    a log of every update is shipped to a remote NVM node {e
    asynchronously} — the paper notes this reaches the symmetric upper
    bound but "will obviously cause inconsistency" on a badly timed crash.

    [Symmetric] ships one unsignaled log post per operation;
    [Symmetric-B] coalesces [batch_size] operations per post.

    Implements {!Asym_core.Store.S}, so the exact same data-structure
    functors run against it. *)

open Asym_sim
open Asym_core

type config = { log_batch : int }

let symmetric = { log_batch = 1 }
let symmetric_b ?(batch = 1024) () = { log_batch = batch }

type t = {
  clk : Clock.t;
  lat : Latency.t;
  dev : Asym_nvm.Device.t;  (* local NVM *)
  remote_log : Asym_rdma.Verbs.conn;  (* asynchronous replication target *)
  remote_log_dev : Asym_nvm.Device.t;
  cfg : config;
  falloc : Front_alloc.t;
  handles : (string, Types.handle) Hashtbl.t;
  mutable meta_cursor : int;
  mutable next_ds : int;
  mutable remote_log_head : int;
  mutable pending_log_bytes : int;
  mutable ops_since_ship : int;
  mutable n_ops : int;
  mutable lines_written : int;
}

(* Local layout: a small meta region for roots/locks/seqnos, then the slab
   pool. *)
let meta_len = 64 * 1024
let slab_size = 4096

let create ?(name = "sym") ?(capacity = 64 * 1024 * 1024) ?(cfg = symmetric) lat ~clock =
  let dev = Asym_nvm.Device.create ~name:(name ^ ".nvm") ~capacity lat in
  let remote_log_dev =
    Asym_nvm.Device.create ~name:(name ^ ".remote-log") ~capacity:(16 * 1024 * 1024) lat
  in
  let remote_nic = Timeline.create ~name:(name ^ ".remote-nic") () in
  let remote_log =
    Asym_rdma.Verbs.connect ~client:clock ~remote_nic ~remote_mem:remote_log_dev lat
  in
  let data_base = meta_len in
  let n_slabs = (capacity - data_base) / slab_size in
  (* Local slab pool with a trivial free-list; each slab alloc/free costs a
     persistent bitmap line write, like the NVML pool allocator. *)
  let free = ref (List.init n_slabs (fun i -> data_base + (i * slab_size))) in
  let t_ref = ref None in
  let charge_alloc () =
    match !t_ref with
    | Some t ->
        Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.clk
          (Latency.nvm_write_cost t.lat 8 + t.lat.Latency.persist_fence_ns)
    | None -> ()
  in
  let falloc =
    Front_alloc.create
      {
        Front_alloc.slab_size;
        alloc_slabs =
          (fun n ->
            charge_alloc ();
            match !free with
            | a :: rest when n = 1 ->
                free := rest;
                a
            | _ -> (
                (* Contiguous run: linear scan of the sorted free list. *)
                let sorted = List.sort compare !free in
                let rec find run = function
                  | [] -> raise Front_alloc.Out_of_nvm
                  | a :: rest -> (
                      match run with
                      | [] -> find [ a ] rest
                      | last :: _ when a = last + slab_size ->
                          let run = a :: run in
                          if List.length run = n then begin
                            let taken = List.rev run in
                            free :=
                              List.filter (fun x -> not (List.mem x taken)) sorted;
                            List.hd taken
                          end
                          else find run rest
                      | _ -> find [ a ] rest)
                in
                find [] sorted));
        free_slabs =
          (fun addr n ->
            charge_alloc ();
            for i = 0 to n - 1 do
              free := (addr + (i * slab_size)) :: !free
            done);
        free_slab_batch =
          (fun addrs ->
            charge_alloc ();
            List.iter (fun a -> free := a :: !free) addrs);
        slab_base_of = (fun addr -> data_base + ((addr - data_base) / slab_size * slab_size));
      }
  in
  let t =
    {
      clk = clock;
      lat;
      dev;
      remote_log;
      remote_log_dev;
      cfg;
      falloc;
      handles = Hashtbl.create 8;
      meta_cursor = 64;
      next_ds = 1;
      remote_log_head = 0;
      pending_log_bytes = 0;
      ops_since_ship = 0;
      n_ops = 0;
      lines_written = 0;
    }
  in
  t_ref := Some t;
  t

let clock t = t.clk
let device t = t.dev
let ops_executed t = t.n_ops

let alloc_meta t len =
  let len = (len + 7) / 8 * 8 in
  let addr = t.meta_cursor in
  t.meta_cursor <- t.meta_cursor + len;
  if t.meta_cursor > meta_len then failwith "Local_store: meta region exhausted";
  addr

let register_ds t name =
  match Hashtbl.find_opt t.handles name with
  | Some h -> h
  | None ->
      let h =
        {
          Types.id = t.next_ds;
          root = alloc_meta t 8;
          lock = alloc_meta t 8;
          sn = alloc_meta t 8;
          ds_name = name;
        }
      in
      t.next_ds <- t.next_ds + 1;
      Hashtbl.replace t.handles name h;
      h

let lookup_ds t name = Hashtbl.find_opt t.handles name

let read ?hint t ~addr ~len =
  ignore hint;
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.clk (Latency.nvm_read_cost t.lat len);
  Asym_nvm.Device.read t.dev ~addr ~len

let read_u64 t ?hint addr =
  ignore hint;
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.clk (Latency.nvm_read_cost t.lat 8);
  Asym_nvm.Device.read_u64 t.dev ~addr

(* Ship the accumulated log to the remote NVM without waiting (Mojim-style
   asynchronous replication: the client only pays the posting cost). *)
let ship_log t =
  if t.pending_log_bytes > 0 then begin
    let len = min t.pending_log_bytes (1 lsl 20) in
    let cap = Asym_nvm.Device.capacity t.remote_log_dev in
    if t.remote_log_head + len > cap then t.remote_log_head <- 0;
    Asym_rdma.Verbs.write_unsignaled t.remote_log ~addr:t.remote_log_head (Bytes.create len);
    t.remote_log_head <- t.remote_log_head + len;
    t.pending_log_bytes <- 0
  end

let write t ~ds ~addr value =
  ignore ds;
  (* Store + clwb per touched line. *)
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.clk
    (Latency.nvm_write_cost t.lat (Bytes.length value));
  Asym_nvm.Device.write t.dev ~addr value;
  t.pending_log_bytes <- t.pending_log_bytes + Bytes.length value + 13;
  t.lines_written <- t.lines_written + Latency.lines (Bytes.length value)

let write_u64 t ~ds addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t ~ds ~addr b

let cas_u64 t ~ds addr ~expected ~desired =
  ignore ds;
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.clk
    (Latency.nvm_write_cost t.lat 8 + t.lat.Latency.persist_fence_ns);
  Asym_nvm.Device.compare_and_swap t.dev ~addr ~expected ~desired

let malloc t size =
  Clock.advance t.clk t.lat.Latency.dram_ns;
  Front_alloc.alloc t.falloc size

let free t addr ~len =
  Clock.advance t.clk t.lat.Latency.dram_ns;
  Front_alloc.free t.falloc addr ~len

let op_begin t ~ds ~optype ~params =
  ignore ds;
  ignore optype;
  (* Mojim-style: the in-place NVM stores below are themselves durable;
     the operation record is only buffered (DRAM) for remote shipping. *)
  Clock.advance t.clk t.lat.Latency.dram_ns;
  t.pending_log_bytes <- t.pending_log_bytes + Bytes.length params + 13;
  0L

let op_end t ~ds =
  ignore ds;
  (* Commit fence for the in-place mutations. *)
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.clk t.lat.Latency.persist_fence_ns;
  Clock.advance t.clk t.lat.Latency.cpu_op_ns;
  t.n_ops <- t.n_ops + 1;
  t.ops_since_ship <- t.ops_since_ship + 1;
  if t.ops_since_ship >= t.cfg.log_batch then begin
    ship_log t;
    t.ops_since_ship <- 0
  end

let pending_ops t ~ds =
  ignore t;
  ignore ds;
  []

let flush t = ship_log t

let writer_lock t (h : Types.handle) =
  (* Local CAS. *)
  Clock.advance t.clk t.lat.Latency.dram_ns;
  ignore (Asym_nvm.Device.compare_and_swap t.dev ~addr:h.Types.lock ~expected:0L ~desired:1L)

let writer_unlock t (h : Types.handle) =
  Clock.advance t.clk t.lat.Latency.dram_ns;
  Asym_nvm.Device.write_u64 t.dev ~addr:h.Types.lock 0L

let read_section ?retry_on t (h : Types.handle) f =
  ignore retry_on;
  ignore h;
  ignore t;
  f ()

let cache_stats t =
  ignore t;
  (0, 0)

let invalidate_cache t = ignore t

let batch_size t = t.cfg.log_batch

let read_retries t =
  ignore t;
  0
