module Obs = Asym_obs

let span_summary ?(top = 15) () =
  let t =
    Report.create ~title:"Observability: top spans by total simulated time"
      ~header:[ "span"; "count"; "total"; "mean"; "max" ]
      ()
  in
  List.iter
    (fun (r : Obs.Summary.span_row) ->
      Report.add_row t
        [
          r.Obs.Summary.sname;
          string_of_int r.Obs.Summary.count;
          Obs.Summary.format_ns r.Obs.Summary.total_ns;
          Obs.Summary.format_ns (int_of_float r.Obs.Summary.mean_ns);
          Obs.Summary.format_ns r.Obs.Summary.max_ns;
        ])
    (Obs.Summary.spans ~top ());
  let dropped = Obs.Span.dropped () in
  if dropped > 0 then
    Report.note t
      (Printf.sprintf "span ring dropped %d event(s); raise Span.set_capacity for full traces"
         dropped);
  t

let counter_summary ?(top = 15) () =
  let t =
    Report.create ~title:"Observability: top counters" ~header:[ "counter"; "value" ] ()
  in
  List.iter
    (fun (r : Obs.Summary.counter_row) ->
      Report.add_row t [ r.Obs.Summary.cname; string_of_int r.Obs.Summary.value ])
    (Obs.Summary.counters ~top ());
  t

(* -- phases -------------------------------------------------------------- *)

let snapshots : (string * Obs.Json.t) list ref = ref []

let phase label f =
  if not (Obs.enabled ()) then f ()
  else begin
    (* Start from a clean registry AND attribution sink, so the snapshot
       is exactly this phase's charges; the sink is folded into
       [attr.ns{cause=...}] counters before snapshotting. *)
    Obs.Registry.reset ();
    Obs.Attr.reset ();
    Fun.protect
      ~finally:(fun () ->
        Obs.Attr.flush_to_registry ();
        snapshots := !snapshots @ [ (label, Obs.Registry.to_json ()) ];
        Obs.Registry.reset ())
      f
  end

let phase_snapshots () = !snapshots
let reset_phases () = snapshots := []

(* Pull one counter total back out of a snapshot document. *)
let counter_total name json =
  match Obs.Json.member "counters" json with
  | Some (Obs.Json.List series) ->
      List.fold_left
        (fun acc s ->
          match (Obs.Json.member "name" s, Obs.Json.member "value" s) with
          | Some (Obs.Json.String n), Some v when n = name -> acc + Obs.Json.to_int v
          | _ -> acc)
        0 series
  | _ -> 0

(* All (labels, value) points of one counter in a snapshot document. *)
let counter_series name json =
  match Obs.Json.member "counters" json with
  | Some (Obs.Json.List series) ->
      List.filter_map
        (fun s ->
          match (Obs.Json.member "name" s, Obs.Json.member "value" s) with
          | Some (Obs.Json.String n), Some v when n = name ->
              let labels =
                match Obs.Json.member "labels" s with
                | Some (Obs.Json.Obj kvs) ->
                    List.map (fun (k, j) -> (k, Obs.Json.to_str j)) kvs
                | _ -> []
              in
              Some (labels, Obs.Json.to_int v)
          | _ -> None)
        series
  | _ -> []

let count_series json =
  [ "counters"; "gauges"; "histograms" ]
  |> List.fold_left
       (fun acc k ->
         match Obs.Json.member k json with
         | Some (Obs.Json.List xs) -> acc + List.length xs
         | _ -> acc)
       0

let phases_report () =
  let t =
    Report.create ~title:"Observability: per-phase snapshots"
      ~header:[ "phase"; "series"; "rdma verbs"; "wire bytes" ]
      ()
  in
  List.iter
    (fun (label, json) ->
      Report.add_row t
        [
          label;
          string_of_int (count_series json);
          string_of_int (counter_total "rdma.verbs" json);
          string_of_int (counter_total "rdma.wire_bytes" json);
        ])
    !snapshots;
  t
