(** Plain-text rendering of the observability subsystem's aggregates
    through {!Report}, plus per-phase metric scoping for multi-phase
    experiments.

    Everything here is cheap and safe to call with observability
    disabled: the reports come out empty and {!phase} only runs its
    body. *)

val span_summary : ?top:int -> unit -> Report.t
(** Top-N spans by total simulated time (count / total / mean / max). *)

val counter_summary : ?top:int -> unit -> Report.t
(** Top-N counters by value, labels rendered inline. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase label f] scopes the metrics registry to [f]: the registry and
    the attribution sink are cleared on entry; on completion the sink is
    folded into [attr.ns{cause=...}] counters, the registry is
    snapshotted under [label] (see {!phase_snapshots}) and reset, so each
    experiment phase starts from zero. The span ring is left alone —
    traces span phases. No-op wrapper while disabled. *)

val phase_snapshots : unit -> (string * Asym_obs.Json.t) list
(** Snapshots collected by {!phase}, oldest first. *)

val counter_total : string -> Asym_obs.Json.t -> int
(** Sum of one counter's points (across labels) in a phase snapshot. *)

val counter_series : string -> Asym_obs.Json.t -> ((string * string) list * int) list
(** All (labels, value) points of one counter in a phase snapshot. *)

val reset_phases : unit -> unit

val phases_report : unit -> Report.t
(** One row per collected phase: counter count and total RDMA verbs, a
    quick cross-phase orientation table. *)
