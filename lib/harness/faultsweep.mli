(** `bench faultsweep`: throughput, retry counts, and a read-back
    consistency check vs per-verb drop rate, driving the
    {!Asym_rdma.Verbs.Fault} transient-loss model through the full
    client retry stack. Loss schedules are seeded, so retry counts
    reproduce run-to-run. *)

type cell = {
  kind : Runner.ds_kind;
  config : string;
  drop : float;  (** per-verb loss probability of this cell *)
  kops : float;
  retries : int;  (** verbs re-posted after a timeout *)
  reconnects : int;  (** degraded-reconnect cycles *)
  timeouts : int;  (** verbs lost by injection *)
  delays : int;  (** delivered verbs that ate an injected delay *)
  bad_reads : int;  (** read-back mismatches — any nonzero is a failure *)
}

val drops : float list
(** The swept drop rates: 0 (faults off) through 0.1. *)

val run_cell :
  preload:int -> ops:int -> drop:float -> cfg:Asym_core.Client.config -> Runner.ds_kind -> cell

val default_cells : ?preload:int -> ?ops:int -> unit -> cell list
(** B+-tree puts under RCB and Naive, one cell per drop rate. *)

val table : cell list -> Report.t

val checks : cell list -> Bench_json.check list
(** Verdicts: zero read-back mismatches at every drop rate, throughput
    degrades monotonically (5% slack), and retries rise from exactly
    zero (faults off) to nonzero at the top drop rate. *)
