(** Latency-attribution profiles: run one Table-3-style cell with
    observability on and read back where its virtual time went, by cause
    (the {!Asym_obs.Attr} taxonomy) and by shared resource (queue wait vs
    service, from the timelines). Behind `bench breakdown` and
    `asymnvm profile`. *)

type cell = {
  kind : Runner.ds_kind;
  config : string;
  res : Runner.result;
  attr : (Asym_obs.Attr.cause * int) list;  (** ns per cause, measured window *)
  round_trips : int;  (** signaled verbs (each pays a full RTT in client latency) *)
  resources : (string * int * int) list;  (** resource, queue ns, service ns *)
}

val run_cell :
  ?shared:bool -> ?put_ratio:float -> ?dist:Asym_workload.Ycsb.distribution ->
  rig:Runner.rig -> cfg:Asym_core.Client.config -> preload:int -> ops:int ->
  Runner.ds_kind -> cell

val attr_ns : cell -> Asym_obs.Attr.cause -> int
val attr_total : cell -> int

val table : cell list -> Report.t
(** us/op, round-trips/op, and per-cause share columns; footnotes the
    conservation arithmetic for the first cell. *)

val resource_table : cell list -> Report.t
(** Queue-wait vs service time per NIC/CPU/lock timeline. *)

val checks : cell list -> Bench_json.check list
(** Conservation plus the two headline expectations: naive BPT dominated
    by [rdma_rtt]; RCB shifting the majority onto
    [local_compute]+[nvm_media]. *)

val default_cells : ?preload:int -> ?ops:int -> unit -> cell list
(** BPT across all four configs, plus HashTable / Queue / MV-BPT
    contrasts — the cells EXPERIMENTS.md discusses. *)
