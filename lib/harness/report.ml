(** Plain-text table rendering for experiment output. *)

type t = {
  title : string;
  header : string list;
  mutable rows : string list list;  (* newest first *)
  mutable notes : string list;
}

let create ~title ~header ?(notes = []) () = { title; header; rows = []; notes }
let add_row t row = t.rows <- row :: t.rows
let note t n = t.notes <- t.notes @ [ n ]
let title t = t.title
let header t = t.header
let rows t = List.rev t.rows
let notes t = t.notes

let kops v = Printf.sprintf "%.1f" v
let mops v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let ratio v = Printf.sprintf "%.2fx" v

let render fmt t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r -> match List.nth_opt r c with Some s -> max m (String.length s) | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line r =
    String.concat "  "
      (List.mapi (fun i w -> pad (match List.nth_opt r i with Some s -> s | None -> "") w) widths)
  in
  Format.fprintf fmt "@.== %s ==@." t.title;
  Format.fprintf fmt "%s@." (line t.header);
  Format.fprintf fmt "%s@." (String.make (String.length (line t.header)) '-');
  List.iter (fun r -> Format.fprintf fmt "%s@." (line r)) rows;
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes

let print t = render Format.std_formatter t
