(** Shared machinery for the experiment harness.

    Builds rigs (a back-end plus optional mirrors), presents the eight
    data structures behind one facade on both architectures, and runs the
    standard preload → warm-up → measure cycle that every table/figure
    cell uses. Throughput is virtual-time throughput: operations divided
    by the simulated nanoseconds they spanned. *)

type ds_kind = Queue | Stack | Hash_table | Skip_list | Bst | Bpt | Mv_bst | Mv_bpt

val ds_name : ds_kind -> string
val all_ds : ds_kind list

val ds_of_name : string -> ds_kind option
(** Case-insensitive, dash-insensitive inverse of {!ds_name}
    (["mv-bpt"], ["MVBPT"] and ["MV-BPT"] all resolve). *)

val is_fifo : ds_kind -> bool

(** Uniform facade over one attached structure instance. Key/value
    structures implement [put]/[get]/[del]; queue/stack implement
    [push]/[pop]; the wrong family raises [Invalid_argument]. *)
type instance = {
  put : int64 -> bytes -> unit;
  get : int64 -> bytes option;
  del : int64 -> bool;
  push : bytes -> unit;
  pop : unit -> bytes option;
  vput : ((int64 * bytes) list -> unit) option;  (** Algorithm 3, trees only *)
  cleanup : unit -> unit;  (** flush logs, drain deferred GC *)
}

(** The functor instantiations, exposed for experiments needing the full
    structure API rather than the facade. *)

module Pc : module type of Asym_structs.Pbptree.Make (Asym_core.Client)
module Bc : module type of Asym_structs.Pbst.Make (Asym_core.Client)

val ds_opts : shared:bool -> ds_kind -> Asym_structs.Ds_intf.options
(** The evaluation's locking discipline: ordered index structures take
    the writer lock; queue/stack/hash run single-writer; the MV trees
    synchronize via root CAS. *)

val client_instance :
  ?shared:bool -> ds_kind -> Asym_core.Client.t -> name:string -> instance

val local_instance : ds_kind -> Asym_baseline.Local_store.t -> name:string -> instance

(** {2 Rigs} *)

type rig = { bk : Asym_core.Backend.t; lat : Asym_sim.Latency.t }

val make_rig :
  ?name:string -> ?capacity:int -> ?max_sessions:int -> ?memlog_cap:int -> ?mirrors:int ->
  Asym_sim.Latency.t -> rig

val fresh_client : ?name:string -> rig -> Asym_core.Client.config -> Asym_core.Client.t
(** A client whose clock starts at the back-end's current horizon so it
    does not queue behind setup traffic. *)

val used_bytes : rig -> int
val with_cache_pct : rig -> Asym_core.Client.config -> float -> Asym_core.Client.config
(** Size the front-end cache as a fraction of the NVM actually in use
    (Table 3 uses 10%). *)

(** {2 Measured runs} *)

val value_of : ?size:int -> int64 -> bytes

val preload_instance : instance -> fifo:bool -> n:int -> value_size:int -> unit
(** Load [n] items: pushes for FIFO structures; for key/value structures,
    keys spread over the whole measurement key space in shuffled order
    (an ordered preload would degenerate the unbalanced trees). *)

type result = {
  kops : float;
  ops : int;
  elapsed : Asym_sim.Simtime.t;
  retries : int;
  cache_hits : int;
  cache_misses : int;
  verbs : int;  (** RDMA verbs posted during the measured window (0 for symmetric runs) *)
  wire_bytes : int;  (** payload bytes those verbs moved *)
  lat_mean_us : float;  (** mean per-operation virtual latency *)
  lat_p50_us : float;
  lat_p99_us : float;
}

val measure : clock:Asym_sim.Clock.t -> ops:int -> (int -> unit) -> float * Asym_sim.Simtime.t

val run_asym :
  ?shared:bool -> ?value_size:int -> ?cache_pct:float -> ?put_ratio:float ->
  ?dist:Asym_workload.Ycsb.distribution -> ?seed:int64 -> ?warmup:int -> rig:rig ->
  cfg:Asym_core.Client.config -> kind:ds_kind -> preload:int -> ops:int -> unit -> result
(** One Table-3-style cell on the AsymNVM architecture: preload through a
    throwaway client, warm the measurement client, measure. *)

val run_asym_trace :
  ?cache_pct:float -> ?seed:int64 -> rig:rig -> cfg:Asym_core.Client.config -> kind:ds_kind ->
  preload:int -> ops:int -> put_ratio:float -> unit -> result
(** Figure-13 variant: the synthetic industry trace (power-law keys,
    64 B – 8 KB values). *)

val run_sym :
  ?value_size:int -> ?put_ratio:float -> ?dist:Asym_workload.Ycsb.distribution -> ?seed:int64 ->
  lat:Asym_sim.Latency.t -> cfg:Asym_baseline.Local_store.config -> kind:ds_kind ->
  preload:int -> ops:int -> unit -> result
(** The same cell on the symmetric baseline. *)
