(** Shared machinery for the experiment harness: rig construction, a
    uniform facade over the eight data structures on both architectures,
    and single-client throughput runs. *)

open Asym_sim
open Asym_core
open Asym_structs

type ds_kind = Queue | Stack | Hash_table | Skip_list | Bst | Bpt | Mv_bst | Mv_bpt

let ds_name = function
  | Queue -> "Queue"
  | Stack -> "Stack"
  | Hash_table -> "HashTable"
  | Skip_list -> "SkipList"
  | Bst -> "BST"
  | Bpt -> "BPT"
  | Mv_bst -> "MV-BST"
  | Mv_bpt -> "MV-BPT"

let all_ds = [ Queue; Stack; Hash_table; Skip_list; Bst; Bpt; Mv_bst; Mv_bpt ]

let ds_of_name s =
  let canon s = String.lowercase_ascii (String.concat "" (String.split_on_char '-' s)) in
  List.find_opt (fun k -> canon (ds_name k) = canon s) all_ds

let is_fifo = function Queue | Stack -> true | _ -> false

(* A uniform facade over one attached structure instance. *)
type instance = {
  put : int64 -> bytes -> unit;
  get : int64 -> bytes option;
  del : int64 -> bool;
  push : bytes -> unit;
  pop : unit -> bytes option;
  vput : ((int64 * bytes) list -> unit) option;
  cleanup : unit -> unit;  (** flush logs, drain deferred GC *)
}

(* -- functor instantiations ------------------------------------------------ *)

module Qc = Pqueue.Make (Client)
module Sc = Pstack.Make (Client)
module Hc = Phash.Make (Client)
module Kc = Pskiplist.Make (Client)
module Bc = Pbst.Make (Client)
module Pc = Pbptree.Make (Client)
module Mc = Pmvbst.Make (Client)
module Nc = Pmvbptree.Make (Client)
module Ql = Pqueue.Make (Asym_baseline.Local_store)
module Sl = Pstack.Make (Asym_baseline.Local_store)
module Hl = Phash.Make (Asym_baseline.Local_store)
module Kl = Pskiplist.Make (Asym_baseline.Local_store)
module Bl = Pbst.Make (Asym_baseline.Local_store)
module Pl = Pbptree.Make (Asym_baseline.Local_store)
module Ml = Pmvbst.Make (Asym_baseline.Local_store)
module Nl = Pmvbptree.Make (Asym_baseline.Local_store)

let no_fifo () = invalid_arg "Runner: not a queue/stack instance"
let no_kv _ = invalid_arg "Runner: not a key/value instance"

(* [locked] selects lock-based operation: in the paper's evaluation the
   ordered index structures (SkipList/BST/BPT and TATP's trees) take the
   exclusive writer lock per operation; queue/stack/hash run single-writer
   without it; the MV structures synchronize via the root CAS. *)
let ds_opts ~shared kind : Ds_intf.options =
  match kind with
  | Skip_list | Bst | Bpt ->
      if shared then Ds_intf.shared_options else Ds_intf.locked_options
  | Queue | Stack | Hash_table | Mv_bst | Mv_bpt ->
      if shared then { Ds_intf.shared = true; use_lock = false } else Ds_intf.default_options

let client_instance ?(shared = false) kind (c : Client.t) ~name : instance =
  let opts = ds_opts ~shared kind in
  let flush () = Client.flush c in
  match kind with
  | Queue ->
      let q = Qc.attach ~opts c ~name in
      {
        put = no_kv;
        get = (fun _ -> no_kv ());
        del = (fun _ -> no_kv ());
        push = Qc.enqueue q;
        pop = (fun () -> Qc.dequeue q);
        vput = None;
        cleanup = flush;
      }
  | Stack ->
      let s = Sc.attach ~opts c ~name in
      {
        put = no_kv;
        get = (fun _ -> no_kv ());
        del = (fun _ -> no_kv ());
        push = Sc.push s;
        pop = (fun () -> Sc.pop s);
        vput = None;
        cleanup = flush;
      }
  | Hash_table ->
      let h = Hc.attach ~opts ~nbuckets:16384 c ~name in
      {
        put = (fun key value -> Hc.put h ~key ~value);
        get = (fun key -> Hc.get h ~key);
        del = (fun key -> Hc.delete h ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup = flush;
      }
  | Skip_list ->
      let k = Kc.attach ~opts c ~name in
      {
        put = (fun key value -> Kc.put k ~key ~value);
        get = (fun key -> Kc.find k ~key);
        del = (fun key -> Kc.delete k ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup = flush;
      }
  | Bst ->
      let b = Bc.attach ~opts c ~name in
      {
        put = (fun key value -> Bc.put b ~key ~value);
        get = (fun key -> Bc.find b ~key);
        del = (fun key -> Bc.delete b ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = Some (Bc.insert_vector b);
        cleanup = flush;
      }
  | Bpt ->
      let b = Pc.attach ~opts c ~name in
      {
        put = (fun key value -> Pc.put b ~key ~value);
        get = (fun key -> Pc.find b ~key);
        del = (fun key -> Pc.delete b ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = Some (Pc.insert_vector b);
        cleanup = flush;
      }
  | Mv_bst ->
      let m = Mc.attach ~opts c ~name in
      {
        put = (fun key value -> Mc.put m ~key ~value);
        get = (fun key -> Mc.find m ~key);
        del = (fun key -> Mc.delete m ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup =
          (fun () ->
            Client.flush c;
            Mc.gc_drain m);
      }
  | Mv_bpt ->
      let m = Nc.attach ~opts c ~name in
      {
        put = (fun key value -> Nc.put m ~key ~value);
        get = (fun key -> Nc.find m ~key);
        del = (fun key -> Nc.delete m ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup =
          (fun () ->
            Client.flush c;
            Nc.gc_drain m);
      }

let local_instance kind (s : Asym_baseline.Local_store.t) ~name : instance =
  let opts = ds_opts ~shared:false kind in
  let flush () = Asym_baseline.Local_store.flush s in
  match kind with
  | Queue ->
      let q = Ql.attach ~opts s ~name in
      {
        put = no_kv;
        get = (fun _ -> no_kv ());
        del = (fun _ -> no_kv ());
        push = Ql.enqueue q;
        pop = (fun () -> Ql.dequeue q);
        vput = None;
        cleanup = flush;
      }
  | Stack ->
      let st = Sl.attach ~opts s ~name in
      {
        put = no_kv;
        get = (fun _ -> no_kv ());
        del = (fun _ -> no_kv ());
        push = Sl.push st;
        pop = (fun () -> Sl.pop st);
        vput = None;
        cleanup = flush;
      }
  | Hash_table ->
      let h = Hl.attach ~opts ~nbuckets:16384 s ~name in
      {
        put = (fun key value -> Hl.put h ~key ~value);
        get = (fun key -> Hl.get h ~key);
        del = (fun key -> Hl.delete h ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup = flush;
      }
  | Skip_list ->
      let k = Kl.attach ~opts s ~name in
      {
        put = (fun key value -> Kl.put k ~key ~value);
        get = (fun key -> Kl.find k ~key);
        del = (fun key -> Kl.delete k ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup = flush;
      }
  | Bst ->
      let b = Bl.attach ~opts s ~name in
      {
        put = (fun key value -> Bl.put b ~key ~value);
        get = (fun key -> Bl.find b ~key);
        del = (fun key -> Bl.delete b ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = Some (Bl.insert_vector b);
        cleanup = flush;
      }
  | Bpt ->
      let b = Pl.attach ~opts s ~name in
      {
        put = (fun key value -> Pl.put b ~key ~value);
        get = (fun key -> Pl.find b ~key);
        del = (fun key -> Pl.delete b ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = Some (Pl.insert_vector b);
        cleanup = flush;
      }
  | Mv_bst ->
      let m = Ml.attach ~opts s ~name in
      {
        put = (fun key value -> Ml.put m ~key ~value);
        get = (fun key -> Ml.find m ~key);
        del = (fun key -> Ml.delete m ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup =
          (fun () ->
            flush ();
            Ml.gc_drain m);
      }
  | Mv_bpt ->
      let m = Nl.attach ~opts s ~name in
      {
        put = (fun key value -> Nl.put m ~key ~value);
        get = (fun key -> Nl.find m ~key);
        del = (fun key -> Nl.delete m ~key);
        push = (fun _ -> no_fifo ());
        pop = (fun () -> no_fifo ());
        vput = None;
        cleanup =
          (fun () ->
            flush ();
            Nl.gc_drain m);
      }

(* -- rig ---------------------------------------------------------------- *)

type rig = { bk : Backend.t; lat : Latency.t }

let make_rig ?(name = "bk") ?(capacity = 192 * 1024 * 1024) ?(max_sessions = 8)
    ?(memlog_cap = 8 * 1024 * 1024) ?(mirrors = 0) lat =
  let bk =
    Backend.create ~name ~max_sessions ~memlog_cap ~oplog_cap:(2 * 1024 * 1024) ~slab_size:4096
      ~capacity lat
  in
  for i = 1 to mirrors do
    Backend.attach_mirror bk
      (Mirror.create
         ~name:(Printf.sprintf "%s.m%d" name i)
         ~kind:(if i = 1 then Mirror.Nvm_backed else Mirror.Ssd_backed)
         ~capacity lat)
  done;
  { bk; lat }

(* A client whose clock starts at the back-end's current horizon, so it
   does not queue behind hours of preload traffic. *)
let fresh_client ?(name = "fe") rig cfg =
  let clk = Clock.create ~name () in
  Clock.wait_until clk (Timeline.free_at (Backend.nic rig.bk));
  Clock.wait_until clk (Timeline.free_at (Backend.cpu rig.bk));
  Client.connect ~name cfg rig.bk ~clock:clk

(* The paper sizes the front-end cache as a fraction of the NVM actually
   used by the structure (10% in Table 3). *)
let used_bytes rig =
  Backend.used_slabs rig.bk * (Backend.layout rig.bk).Layout.slab_size

let with_cache_pct rig (cfg : Client.config) pct =
  if not cfg.Client.use_cache then cfg
  else
    let bytes = max (8 * 1024) (int_of_float (float_of_int (used_bytes rig) *. pct)) in
    { cfg with Client.cache_bytes = bytes }

(* -- preload -------------------------------------------------------------- *)

(* Zero-filled, not [Bytes.create]: uninitialized payload bytes made the
   stored media image (and every CRC over it) differ run to run, so a
   value written and rebuilt for comparison never matched. *)
let value_of ?(size = 64) key =
  let b = Bytes.make size '\000' in
  Bytes.set_int64_le b 0 key;
  b

let preload_instance inst ~fifo ~n ~value_size =
  if fifo then
    for i = 0 to n - 1 do
      inst.push (value_of ~size:value_size (Int64.of_int i))
    done
  else begin
    (* Preload keys spread over the whole measurement key space (stride 4
       over [0, 4n)) and inserted in shuffled order: a dense or ordered
       preload would degenerate the unbalanced BST into a list, and
       measurement-time inserts of fresh keys would all land on one
       spine. *)
    let keys = Array.init n (fun i -> Int64.of_int (4 * i)) in
    Asym_util.Rng.shuffle (Asym_util.Rng.create ~seed:1234L) keys;
    Array.iter (fun key -> inst.put key (value_of ~size:value_size key)) keys
  end;
  inst.cleanup ()

(* -- single-client measured run ------------------------------------------- *)

type result = {
  kops : float;
  ops : int;
  elapsed : Simtime.t;
  retries : int;
  cache_hits : int;
  cache_misses : int;
  verbs : int;  (* RDMA verbs posted during the measured window *)
  wire_bytes : int;  (* payload bytes those verbs moved *)
  lat_mean_us : float;
  lat_p50_us : float;
  lat_p99_us : float;
}

let measure ~clock ~ops f =
  let t0 = Clock.now clock in
  for i = 0 to ops - 1 do
    f i
  done;
  let elapsed = Clock.now clock - t0 in
  let kops =
    if elapsed = 0 then 0.0 else float_of_int ops /. Simtime.to_sec elapsed /. 1000.0
  in
  (kops, elapsed)

(* Like {!measure} but also records each operation's virtual latency. *)
let measure_latencies ~clock ~ops f =
  let lats = Array.make (max 1 ops) 0.0 in
  let t0 = Clock.now clock in
  for i = 0 to ops - 1 do
    let s = Clock.now clock in
    f i;
    lats.(i) <- Simtime.to_us (Clock.now clock - s)
  done;
  let elapsed = Clock.now clock - t0 in
  let kops =
    if elapsed = 0 then 0.0 else float_of_int ops /. Simtime.to_sec elapsed /. 1000.0
  in
  (kops, elapsed, lats)

(* One operation against the facade. For key/value structures [put_ratio]
   selects between insert (PUT) and find (GET); for queue/stack it selects
   between push and pop. *)
let one_op inst ~fifo ~value_size ~put_ratio ~rng gen i =
  if fifo then begin
    if Asym_util.Rng.float rng < put_ratio then
      inst.push (value_of ~size:value_size (Int64.of_int i))
    else ignore (inst.pop ())
  end
  else if Asym_util.Rng.float rng < put_ratio then begin
    let k = Asym_workload.Ycsb.key gen in
    inst.put k (value_of ~size:value_size k)
  end
  else ignore (inst.get (Asym_workload.Ycsb.key gen))

(* Run [ops] operations of the given mix on an already attached instance,
   measuring virtual-time throughput on [clock]. *)
let drive ~clock ~fifo ~value_size ~put_ratio ~dist ~keyspace ~ops ~seed inst =
  let rng = Asym_util.Rng.create ~seed in
  let gen =
    Asym_workload.Ycsb.create ~value_size ~distribution:dist ~keyspace:(max 1 keyspace)
      ~put_ratio rng
  in
  measure_latencies ~clock ~ops (fun i -> one_op inst ~fifo ~value_size ~put_ratio ~rng gen i)

(* One Table-3-style cell on the AsymNVM architecture: preload through a
   throwaway client, then measure on a fresh client with the target
   configuration (cache sized as a fraction of the NVM in use). *)
let run_asym ?(shared = false) ?(value_size = 64) ?(cache_pct = 0.10) ?(put_ratio = 1.0)
    ?(dist = Asym_workload.Ycsb.Uniform) ?(seed = 99L) ?warmup ~rig ~cfg ~kind ~preload ~ops
    () =
  let fifo = is_fifo kind in
  let nm = ds_name kind in
  let pre = fresh_client ~name:(nm ^ ".preload") rig (Client.rcb ~batch_size:256 ()) in
  let pinst = client_instance kind pre ~name:nm in
  preload_instance pinst ~fifo ~n:preload ~value_size;
  let cfg = with_cache_pct rig cfg cache_pct in
  let c = fresh_client ~name:nm rig cfg in
  let inst = client_instance ~shared kind c ~name:nm in
  let clock = Client.clock c in
  (* Warm the cache and the adaptive level threshold before measuring. *)
  let warmup = match warmup with Some w -> w | None -> max 256 (ops / 2) in
  let _ =
    drive ~clock ~fifo ~value_size ~put_ratio ~dist ~keyspace:(preload * 4) ~ops:warmup
      ~seed:(Int64.add seed 1L) inst
  in
  let retries0 = Client.read_retries c in
  let hits0, misses0 = Client.cache_stats c in
  let verbs0 = Client.rdma_ops c and bytes0 = Client.rdma_bytes c in
  let kops, elapsed, lats =
    (* When observability is on, each measured cell becomes one metrics
       phase: snapshot + reset, so counters are per-cell. *)
    Obs_report.phase
      (nm ^ "." ^ Client.config_name cfg)
      (fun () ->
        drive ~clock ~fifo ~value_size ~put_ratio ~dist ~keyspace:(preload * 4) ~ops ~seed inst)
  in
  let hits1, misses1 = Client.cache_stats c in
  {
    kops;
    ops;
    elapsed;
    retries = Client.read_retries c - retries0;
    cache_hits = hits1 - hits0;
    cache_misses = misses1 - misses0;
    verbs = Client.rdma_ops c - verbs0;
    wire_bytes = Client.rdma_bytes c - bytes0;
    lat_mean_us = Asym_util.Stats.mean lats;
    lat_p50_us = Asym_util.Stats.percentile lats 50.0;
    lat_p99_us = Asym_util.Stats.percentile lats 99.0;
  }

(* A Figure-13 style run: the synthetic industry trace (power-law keys,
   64 B - 8 KB values) instead of the fixed-size YCSB generator. *)
let run_asym_trace ?(cache_pct = 0.10) ?(seed = 7L) ~rig ~cfg ~kind ~preload ~ops ~put_ratio ()
    =
  let fifo = is_fifo kind in
  let nm = ds_name kind in
  let pre = fresh_client ~name:(nm ^ ".preload") rig (Client.rcb ~batch_size:256 ()) in
  let pinst = client_instance kind pre ~name:nm in
  preload_instance pinst ~fifo ~n:preload ~value_size:64;
  let cfg = with_cache_pct rig cfg cache_pct in
  let c = fresh_client ~name:nm rig cfg in
  let inst = client_instance kind c ~name:nm in
  let verbs0 = Client.rdma_ops c and bytes0 = Client.rdma_bytes c in
  let rng = Asym_util.Rng.create ~seed in
  let tr =
    Asym_workload.Trace.create
      ~kind:(if fifo then `Fifo put_ratio else `Kv put_ratio)
      rng
  in
  let clock = Client.clock c in
  let kops, elapsed, lats =
    Obs_report.phase
      (nm ^ ".trace." ^ Client.config_name cfg)
      (fun () ->
        measure_latencies ~clock ~ops (fun _ ->
            match Asym_workload.Trace.next tr with
            | Asym_workload.Trace.Push v -> inst.push v
            | Asym_workload.Trace.Pop -> ignore (inst.pop ())
            | Asym_workload.Trace.Put (k, v) -> inst.put k v
            | Asym_workload.Trace.Get k -> ignore (inst.get k)))
  in
  {
    kops;
    ops;
    elapsed;
    retries = 0;
    cache_hits = 0;
    cache_misses = 0;
    verbs = Client.rdma_ops c - verbs0;
    wire_bytes = Client.rdma_bytes c - bytes0;
    lat_mean_us = Asym_util.Stats.mean lats;
    lat_p50_us = Asym_util.Stats.percentile lats 50.0;
    lat_p99_us = Asym_util.Stats.percentile lats 99.0;
  }

(* The same cell on the symmetric baseline. *)
let run_sym ?(value_size = 64) ?(put_ratio = 1.0) ?(dist = Asym_workload.Ycsb.Uniform)
    ?(seed = 99L) ~lat ~cfg ~kind ~preload ~ops () =
  let fifo = is_fifo kind in
  let nm = ds_name kind in
  let clock = Clock.create ~name:("sym." ^ nm) () in
  let s = Asym_baseline.Local_store.create ~cfg lat ~clock in
  let inst = local_instance kind s ~name:nm in
  preload_instance inst ~fifo ~n:preload ~value_size;
  let kops, elapsed, lats =
    Obs_report.phase (nm ^ ".sym") (fun () ->
        drive ~clock ~fifo ~value_size ~put_ratio ~dist ~keyspace:(preload * 4) ~ops ~seed inst)
  in
  {
    kops;
    ops;
    elapsed;
    retries = 0;
    cache_hits = 0;
    cache_misses = 0;
    verbs = 0;
    wire_bytes = 0;
    lat_mean_us = Asym_util.Stats.mean lats;
    lat_p50_us = Asym_util.Stats.percentile lats 50.0;
    lat_p99_us = Asym_util.Stats.percentile lats 99.0;
  }
