(** Plain-text table rendering for experiment output (aligned columns,
    title, footnotes — the format bench/main.exe prints). *)

type t

val create : title:string -> header:string list -> ?notes:string list -> unit -> t
val add_row : t -> string list -> unit

val note : t -> string -> unit
(** Append a footnote. *)

(** Accessors (for the JSON bench pipeline). *)

val title : t -> string

val header : t -> string list

val rows : t -> string list list
(** Display order (oldest first). *)

val notes : t -> string list

(** Cell formatters. *)

val kops : float -> string
val mops : float -> string
val pct : float -> string
(** [pct 0.12] is ["12.0%"]. *)

val ratio : float -> string
(** [ratio 2.0] is ["2.00x"]. *)

val render : Format.formatter -> t -> unit
val print : t -> unit
