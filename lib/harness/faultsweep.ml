(* `bench faultsweep`: throughput and retry behaviour vs per-verb drop
   rate, under the lib/rdma transient-fault model.

   Each cell writes a disjoint key range through a faulty connection and
   then reads every key back (cache invalidated) as a consistency check:
   because log appends land at absolute ring offsets and replay is
   opnum-idempotent, a retried verb must never lose or duplicate an
   update — any read-back mismatch is a retry-layer bug, not an accepted
   outcome. Throughput may only degrade as drop rate rises; retries must
   rise from zero. All loss schedules are seeded, so a rerun reproduces
   the same retry counts exactly. *)

open Asym_sim
open Asym_core

type cell = {
  kind : Runner.ds_kind;
  config : string;
  drop : float;
  kops : float;
  retries : int;
  reconnects : int;
  timeouts : int;
  delays : int;
  bad_reads : int;  (** read-back mismatches — any nonzero is a failure *)
}

let drops = [ 0.0; 0.01; 0.02; 0.05; 0.1 ]
let value_size = 64

(* Keys the sweep writes live above the preload range, so the read-back
   can enumerate exactly what this cell is responsible for. *)
let run_cell ~preload ~ops ~drop ~cfg kind =
  let rig = Runner.make_rig Latency.default in
  let loader = Runner.fresh_client ~name:"fault-loader" rig (Client.rcb ()) in
  let linst = Runner.client_instance kind loader ~name:"faultsweep" in
  Runner.preload_instance linst ~fifo:(Runner.is_fifo kind) ~n:preload ~value_size;
  linst.Runner.cleanup ();
  Client.close loader;
  let fe = Runner.fresh_client ~name:"fault-fe" rig cfg in
  if drop > 0. then
    Asym_rdma.Verbs.set_fault (Client.connection fe)
      (Some
         (Asym_rdma.Verbs.Fault.make ~drop_p:drop ~delay_p:(drop /. 2.) ~delay_ns:3_000
            ~seed:(Int64.logxor 0xFA17L (Int64.of_int (int_of_float (drop *. 1e6))))
            ()));
  let inst = Runner.client_instance kind fe ~name:"faultsweep" in
  let base = Int64.of_int (4 * preload) in
  let kops, _elapsed =
    Runner.measure ~clock:(Client.clock fe) ~ops (fun i ->
        let key = Int64.add base (Int64.of_int i) in
        inst.Runner.put key (Runner.value_of ~size:value_size key))
  in
  inst.Runner.cleanup ();
  (* The fence waits out queued back-end replay: the read-back below goes
     to the media image, not the client's write overlay. *)
  Client.persist_fence fe;
  Client.invalidate_cache fe;
  let bad_reads = ref 0 in
  for i = 0 to ops - 1 do
    let key = Int64.add base (Int64.of_int i) in
    match inst.Runner.get key with
    | Some v when v = Runner.value_of ~size:value_size key -> ()
    | _ -> incr bad_reads
  done;
  {
    kind;
    config = Client.config_name cfg;
    drop;
    kops;
    retries = Client.fault_retries fe;
    reconnects = Client.reconnects fe;
    timeouts = Asym_rdma.Verbs.verb_timeouts (Client.connection fe);
    delays = Asym_rdma.Verbs.injected_delays (Client.connection fe);
    bad_reads = !bad_reads;
  }

let default_cells ?(preload = 1000) ?(ops = 2000) () =
  List.concat_map
    (fun cfg ->
      List.map (fun drop -> run_cell ~preload ~ops ~drop ~cfg Runner.Bpt) drops)
    [ Client.rcb (); Client.naive () ]

(* -- table ------------------------------------------------------------------- *)

let table cells =
  let t =
    Report.create
      ~title:"Fault sweep: B+-tree put throughput vs per-verb drop rate (seeded loss schedule)"
      ~header:
        [ "Config"; "drop"; "KOPS"; "timeouts"; "delays"; "retries"; "reconnects"; "bad reads" ]
      ~notes:
        [
          "every verb lost with p = drop (half also delayed when delivered); retries pay \
           capped exponential backoff, all charged to the fault_retry cause";
          "bad reads: post-sweep read-back mismatches after a cache invalidate — must be 0 \
           (retried appends are opnum-idempotent, so loss never loses or doubles an update)";
        ]
      ()
  in
  List.iter
    (fun c ->
      Report.add_row t
        [
          c.config;
          Printf.sprintf "%.2f" c.drop;
          Report.kops c.kops;
          string_of_int c.timeouts;
          string_of_int c.delays;
          string_of_int c.retries;
          string_of_int c.reconnects;
          string_of_int c.bad_reads;
        ])
    cells;
  t

(* -- verdicts ---------------------------------------------------------------- *)

let checks cells =
  let check cname pass detail = { Bench_json.experiment = "faultsweep"; cname; pass; detail } in
  let consistent =
    match List.find_opt (fun c -> c.bad_reads > 0) cells with
    | None -> check "zero_bad_reads" true "every written key read back intact at every drop rate"
    | Some c ->
        check "zero_bad_reads" false
          (Printf.sprintf "%s drop=%.2f: %d read-back mismatches" c.config c.drop c.bad_reads)
  in
  let configs = List.sort_uniq compare (List.map (fun c -> c.config) cells) in
  let per_config f =
    List.for_all
      (fun cfg ->
        f (List.sort (fun a b -> compare a.drop b.drop)
             (List.filter (fun c -> c.config = cfg) cells)))
      configs
  in
  let monotone =
    (* Throughput may only degrade as loss rises; 5% slack absorbs the
       jitter the loss schedule itself injects into batching decisions. *)
    let ok =
      per_config (fun cs ->
          let rec chain = function
            | a :: (b :: _ as rest) -> b.kops <= a.kops *. 1.05 && chain rest
            | _ -> true
          in
          chain cs)
    in
    check "throughput_degrades_monotonically" ok
      (String.concat "; "
         (List.map
            (fun c -> Printf.sprintf "%s@%.2f=%.1f" c.config c.drop c.kops)
            cells))
  in
  let retries_grow =
    let ok =
      per_config (fun cs ->
          match (cs, List.rev cs) with
          | zero :: _, top :: _ -> zero.retries = 0 && top.retries > 0
          | _ -> false)
    in
    check "retries_track_drop_rate" ok
      "faults off retries nothing; the top drop rate must retry (seeded, so counts reproduce)"
  in
  [ consistent; monotone; retries_grow ]
