(** The machine-readable bench pipeline (DESIGN.md §6).

    [bench/main.exe --json FILE] serializes every table/figure cell it
    printed, plus EXPERIMENTS.md's shape expectations as pass/fail
    verdicts, into one [asymnvm-bench/1] document; [asymnvm bench-diff]
    compares two such documents cell by cell for regression gating
    (bench/baseline.json is the committed quick-scale reference). *)

val schema : string
(** ["asymnvm-bench/1"]. *)

type check = {
  experiment : string;
  cname : string;
  pass : bool;
  detail : string;  (** threshold applied, or the offending row *)
}

val cell_num : string -> float option
(** Numeric value of a display cell: strips ["x"] / ["%"] suffixes;
    [None] for dashes and labels. *)

val checks_for : string -> Report.t -> check list
(** Shape verdicts for one experiment's freshly produced report (table3 /
    latency / sensitivity / contention today; empty for the rest). *)

val doc :
  scale:string -> experiments:(string * Report.t) list -> checks:check list -> Asym_obs.Json.t

val write : path:string -> Asym_obs.Json.t -> unit
val of_file : string -> Asym_obs.Json.t

val diff :
  ?tolerance:float -> old_doc:Asym_obs.Json.t -> new_doc:Asym_obs.Json.t -> unit -> string list
(** Failure lines: numeric cells differing beyond [tolerance] (relative,
    default 2%), non-numeric cells differing at all, missing
    experiments/rows, and shape-check verdict flips. Empty means the
    documents agree. *)
