(** Multi-front-end experiments, co-simulated with {!Asym_sim.Sched} at
    verb granularity: reader scalability (Figure 8), independent
    structures sharing a back-end (Figure 9), partitioning over several
    back-ends (Figure 10), CPU utilization (Figure 11), the §6.3 lock
    ping-point test, and a lock-contention scaling study. *)

type fig8_point = {
  writer_kops : float;
  reader_avg_kops : float;
  retry_ratio : float;  (** failed optimistic reads / attempted reads *)
}

val fig8_point :
  kind:Runner.ds_kind -> readers:int -> preload:int -> duration:Asym_sim.Simtime.t -> fig8_point
(** One writer (100% insert) plus [readers] reader front-ends on one
    shared structure. *)

val fig8 : preload:int -> duration:Asym_sim.Simtime.t -> Report.t

val fig9_point :
  kind:Runner.ds_kind -> n:int -> preload:int -> duration:Asym_sim.Simtime.t -> float
(** Aggregate KOPS of [n] front-ends, each writing its own structure on a
    shared back-end. *)

val fig9 : preload:int -> duration:Asym_sim.Simtime.t -> Report.t

val fig10_point : kind:Runner.ds_kind -> backends:int -> preload:int -> ops:int -> float
(** One front-end, structure key-hash-partitioned over [backends]
    back-end nodes. *)

val fig10 : preload:int -> ops:int -> Report.t

val fig11 : preload:int -> ops:int -> Report.t
(** Front-end vs back-end CPU utilization over windows of a 10% put / 90%
    get BST run. *)

val lock_bench_point :
  write_ratio:float -> readers:int -> duration:Asym_sim.Simtime.t -> float * float * float * float
(** [(reader_avg, readers_total, writer, fail_ratio)] of the §6.3
    ping-point test: 6 readers and 1 writer on a single 64-byte object. *)

val lock_bench : duration:Asym_sim.Simtime.t -> Report.t

type contention_point = {
  total_kops : float;  (** aggregate throughput of all writers *)
  lock_wait_share : float;
      (** summed writer-lock wait / summed elapsed virtual time *)
  avg_lock_wait_ns : float;  (** lock wait per completed operation *)
}

val contention_point :
  writers:int -> preload:int -> duration:Asym_sim.Simtime.t -> contention_point
(** [writers] front-ends all inserting into one shared BST, so every
    operation races for the same §6.1 writer lock. Each CAS probe is a
    co-simulation suspension point, so the lock-wait share measures true
    verb-level contention. *)

val contention : preload:int -> duration:Asym_sim.Simtime.t -> Report.t
