(** Single-client experiments of the paper's evaluation: Tables 2 and 3,
    Figures 6/7/12/13, the §4.4 cache-policy study and the design-choice
    ablations. Each function runs its experiment at the given scale and
    returns a printable report; see EXPERIMENTS.md for paper-vs-measured
    commentary. Multi-client experiments live in {!Multiclient}. *)

type scale = {
  preload : int;  (** keys loaded before measuring *)
  ops : int;  (** measured operations per cell *)
  subscribers : int;  (** TATP population *)
  accounts : int;  (** SmallBank population *)
}

val quick : scale
val full : scale

val run_tatp_asym : ?cache_pct:float -> cfg:Asym_core.Client.config -> sc:scale -> unit -> float
val run_tatp_sym : cfg:Asym_baseline.Local_store.config -> sc:scale -> unit -> float

val run_bank_asym :
  ?cache_pct:float -> ?cust_gen:(unit -> int64) -> cfg:Asym_core.Client.config -> sc:scale ->
  unit -> float

val run_bank_sym : cfg:Asym_baseline.Local_store.config -> sc:scale -> unit -> float

val table1 : scale -> Report.t
(** RDMA wire cost per operation: KOPS, verbs/op and payload bytes/op for
    every asymmetric cell of the Table-3 matrix, from the NIC counters
    ({!Asym_rdma.Verbs.ops_posted} / [bytes_on_wire]). *)

val table2 : scale -> Report.t
(** Allocator comparison: Glibc / Pmem / RPC-only / two-tier at 128 B and
    1024 B slabs (§5.2, Table 2). *)

val table3 : scale -> Report.t
(** Overall performance: 8 structures + TATP + SmallBank across
    Symmetric, Symmetric-B, Naive, R, RC, RCB (Table 3). *)

val fig6 : scale -> Report.t
(** Throughput vs batch size 1…4096; BST/BPT via sorted vector writes. *)

val fig7 : scale -> Report.t
(** Throughput vs cache size (1/5/10/20% of used NVM). *)

val fig12 : scale -> Report.t
(** Uniform vs Zipf(.5/.9/.99) workloads. *)

val fig13 : scale -> Report.t
(** Industry-trace mixes (power-law keys, 64 B – 8 KB values) across
    Naive / R / RC. *)

val latency : scale -> Report.t
(** Extension: per-operation virtual latency (mean/p50/p99) per
    configuration. *)

val ycsb : scale -> Report.t
(** Extension: the standard YCSB core workloads A/B/C/D/F. *)

val sensitivity : scale -> Report.t
(** Extension beyond the paper: sweep the RDMA round trip and the NVM
    media latency, reporting how the RCB/Naive advantage responds. *)

val cache_policy : scale -> Report.t
(** §4.4: LRU vs RR vs the hybrid choose-set policy. *)

val ablation : scale -> Report.t
(** On/off comparisons of individual design choices: §8.1 annulment, the
    §4.3 wire-pointer optimization, §8.3 level caching, §4.2 transaction
    coalescing. *)
