(* Machine-readable bench output: every table/figure cell as structured
   records, EXPERIMENTS.md's shape expectations as pass/fail verdicts,
   and a comparator for regression gating (asymnvm bench-diff). *)

module Obs = Asym_obs

let schema = "asymnvm-bench/1"

type check = { experiment : string; cname : string; pass : bool; detail : string }

(* -- cell parsing ----------------------------------------------------------- *)

(* Cells are display strings ("154", "23.5", "1.95x", "29.2%", "–").
   Strip the unit suffix; dashes and labels are non-numeric. *)
let cell_num s =
  let s = String.trim s in
  let n = String.length s in
  let s =
    if n > 0 && (s.[n - 1] = 'x' || s.[n - 1] = '%') then String.sub s 0 (n - 1) else s
  in
  float_of_string_opt s

(* -- document --------------------------------------------------------------- *)

let strings xs = Obs.Json.List (List.map (fun s -> Obs.Json.String s) xs)

let report_json (name, r) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String name);
      ("title", Obs.Json.String (Report.title r));
      ("header", strings (Report.header r));
      ("rows", Obs.Json.List (List.map strings (Report.rows r)));
      ("notes", strings (Report.notes r));
    ]

let check_json c =
  Obs.Json.Obj
    [
      ("experiment", Obs.Json.String c.experiment);
      ("check", Obs.Json.String c.cname);
      ("pass", Obs.Json.Bool c.pass);
      ("detail", Obs.Json.String c.detail);
    ]

let doc ~scale ~experiments ~checks =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("scale", Obs.Json.String scale);
      ("experiments", Obs.Json.List (List.map report_json experiments));
      ("checks", Obs.Json.List (List.map check_json checks));
    ]

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Obs.Json.parse (really_input_string ic (in_channel_length ic)))

(* -- shape checks ------------------------------------------------------------ *)

(* The expectations EXPERIMENTS.md states in prose, as verdicts computed
   from the freshly produced cells. Thresholds carry slack so quick-scale
   noise does not flap them (see the quick-scale numbers recorded there,
   e.g. HashTable's best/Naive is only ~1.95x). *)

let col header name =
  let rec go i = function
    | [] -> None
    | h :: _ when h = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 header

let cell row i = match List.nth_opt row i with Some s -> cell_num s | None -> None

(* Evaluate [f naive opt] on every row where both columns are numeric;
   fail on the first offending row. *)
let all_rows ~experiment ~cname ~detail t ca cb f =
  let header = Report.header t in
  match (col header ca, col header cb) with
  | Some ia, Some ib ->
      let bad =
        List.find_opt
          (fun row ->
            match (cell row ia, cell row ib) with
            | Some a, Some b -> not (f a b)
            | _ -> false)
          (Report.rows t)
      in
      let pass = bad = None in
      let detail =
        match bad with
        | None -> detail
        | Some row -> Printf.sprintf "%s (fails at %s)" detail (List.hd row)
      in
      { experiment; cname; pass; detail }
  | _ -> { experiment; cname; pass = false; detail = "missing column" }

let best_optimized header row =
  List.filter_map (fun c -> Option.bind (col header c) (cell row)) [ "R"; "RC"; "RCB" ]
  |> List.fold_left max neg_infinity

let table3_checks t =
  let experiment = "table3" in
  let header = Report.header t in
  let speedup =
    (* Some optimized configuration beats Naive by >= 1.5x on every row. *)
    let bad =
      List.find_opt
        (fun row ->
          match Option.bind (col header "Naive") (cell row) with
          | Some naive -> best_optimized header row < 1.5 *. naive
          | None -> false)
        (Report.rows t)
    in
    {
      experiment;
      cname = "optimized_speedup";
      pass = bad = None;
      detail =
        (match bad with
        | None -> "best of R/RC/RCB >= 1.5x Naive on every row"
        | Some row -> Printf.sprintf "best optimized < 1.5x Naive at %s" (List.hd row));
    }
  in
  let crossover =
    (* §6.2: batched multi-versioning is where AsymNVM overtakes the
       symmetric upper bound (quick scale: only the MV-BPT row). *)
    match
      List.find_opt (fun row -> List.hd row = "MV-BPT") (Report.rows t)
    with
    | Some row -> (
        match
          ( Option.bind (col header "Symmetric") (cell row),
            Option.bind (col header "RCB") (cell row) )
        with
        | Some sym, Some rcb ->
            {
              experiment;
              cname = "mv_crossover";
              pass = rcb >= sym;
              detail = Printf.sprintf "MV-BPT RCB %.1f vs Symmetric %.1f" rcb sym;
            }
        | _ -> { experiment; cname = "mv_crossover"; pass = false; detail = "missing cell" })
    | None -> { experiment; cname = "mv_crossover"; pass = false; detail = "missing MV-BPT row" }
  in
  [
    all_rows ~experiment ~cname:"r_at_least_naive"
      ~detail:"log reproducing never loses to Naive (2% slack)" t "Naive" "R"
      (fun naive r -> r >= 0.98 *. naive);
    speedup;
    crossover;
    all_rows ~experiment ~cname:"rc_no_regression"
      ~detail:"the cache never costs more than 15% vs R alone" t "R" "RC"
      (fun r rc -> rc >= 0.85 *. r);
  ]

let latency_checks t =
  let experiment = "latency" in
  let header = Report.header t in
  match (col header "Config", col header "Mean") with
  | Some ic, Some im ->
      (* Group rows by benchmark; RCB's mean must beat Naive's. *)
      let naive = Hashtbl.create 8 in
      List.iter
        (fun row ->
          if List.nth_opt row ic = Some "Naive" then
            Option.iter (Hashtbl.replace naive (List.hd row)) (cell row im))
        (Report.rows t);
      let bad =
        List.find_opt
          (fun row ->
            List.nth_opt row ic = Some "RCB"
            &&
            match (Hashtbl.find_opt naive (List.hd row), cell row im) with
            | Some n, Some rcb -> rcb >= n
            | _ -> false)
          (Report.rows t)
      in
      [
        {
          experiment;
          cname = "rcb_mean_latency";
          pass = bad = None;
          detail =
            (match bad with
            | None -> "RCB mean latency below Naive on every benchmark"
            | Some row -> Printf.sprintf "RCB mean >= Naive at %s" (List.hd row));
        };
      ]
  | _ -> [ { experiment; cname = "rcb_mean_latency"; pass = false; detail = "missing column" } ]

let sensitivity_checks t =
  [
    all_rows ~experiment:"sensitivity" ~cname:"rcb_advantage"
      ~detail:"RCB beats Naive across the whole latency range" t "Naive" "RCB"
      (fun naive rcb -> rcb > naive);
  ]

let contention_checks t =
  let experiment = "contention" in
  let header = Report.header t in
  match (col header "Writers", col header "Total KOPS", col header "Lock-wait share") with
  | Some iw, Some ik, Some is ->
      let share_at n =
        List.find_opt (fun row -> cell row iw = Some (float_of_int n)) (Report.rows t)
        |> Fun.flip Option.bind (fun row -> cell row is)
      in
      let share_grows =
        match (share_at 1, share_at 8) with
        | Some s1, Some s8 ->
            {
              experiment;
              cname = "lock_wait_grows";
              pass = s8 > s1;
              detail =
                Printf.sprintf "lock-wait share %.1f%% at 1 writer -> %.1f%% at 8" s1 s8;
            }
        | _ ->
            { experiment; cname = "lock_wait_grows"; pass = false; detail = "missing row" }
      in
      let throughput_positive =
        let bad =
          List.find_opt
            (fun row -> match cell row ik with Some k -> k <= 0.0 | None -> true)
            (Report.rows t)
        in
        {
          experiment;
          cname = "throughput_positive";
          pass = bad = None;
          detail =
            (match bad with
            | None -> "every writer count makes progress"
            | Some row -> Printf.sprintf "no progress at %s writers" (List.hd row));
        }
      in
      [ share_grows; throughput_positive ]
  | _ -> [ { experiment; cname = "lock_wait_grows"; pass = false; detail = "missing column" } ]

let checks_for name t =
  match name with
  | "table3" -> table3_checks t
  | "latency" -> latency_checks t
  | "sensitivity" -> sensitivity_checks t
  | "contention" -> contention_checks t
  | _ -> []

(* -- diff ------------------------------------------------------------------- *)

let experiment_list json =
  match Obs.Json.member "experiments" json with
  | Some (Obs.Json.List xs) ->
      List.filter_map
        (fun e ->
          match Obs.Json.member "name" e with
          | Some (Obs.Json.String n) -> Some (n, e)
          | _ -> None)
        xs
  | _ -> []

let rows_of e =
  match Obs.Json.member "rows" e with
  | Some (Obs.Json.List rows) ->
      List.map (fun r -> List.map Obs.Json.to_str (Obs.Json.to_list r)) rows
  | _ -> []

let check_list json =
  match Obs.Json.member "checks" json with
  | Some (Obs.Json.List xs) ->
      List.filter_map
        (fun c ->
          match
            (Obs.Json.member "experiment" c, Obs.Json.member "check" c, Obs.Json.member "pass" c)
          with
          | Some (Obs.Json.String e), Some (Obs.Json.String n), Some (Obs.Json.Bool p) ->
              Some ((e, n), p)
          | _ -> None)
        xs
  | _ -> []

let str_member key json =
  match Obs.Json.member key json with Some (Obs.Json.String s) -> Some s | _ -> None

(* Compare two bench documents. Numeric cells must agree within
   [tolerance] (relative); non-numeric cells exactly; shape-check
   verdicts must not flip. Returns human-readable failure lines. *)
let diff ?(tolerance = 0.02) ~old_doc ~new_doc () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (match (str_member "scale" old_doc, str_member "scale" new_doc) with
  | Some a, Some b when a <> b -> fail "scale mismatch: %s vs %s (not comparable)" a b
  | _ -> ());
  let olds = experiment_list old_doc and news = experiment_list new_doc in
  List.iter
    (fun (name, oe) ->
      match List.assoc_opt name news with
      | None -> fail "%s: experiment missing from new document" name
      | Some ne ->
          let orows = rows_of oe and nrows = rows_of ne in
          if List.length orows <> List.length nrows then
            fail "%s: row count %d -> %d" name (List.length orows) (List.length nrows)
          else
            List.iteri
              (fun ri orow ->
                let nrow = List.nth nrows ri in
                let label = match orow with l :: _ -> l | [] -> string_of_int ri in
                List.iteri
                  (fun ci ocell ->
                    match List.nth_opt nrow ci with
                    | None -> fail "%s/%s: column %d disappeared" name label ci
                    | Some ncell -> (
                        match (cell_num ocell, cell_num ncell) with
                        | Some ov, Some nv ->
                            let denom = Float.max (Float.abs ov) 1e-9 in
                            let rel = Float.abs (nv -. ov) /. denom in
                            if rel > tolerance then
                              fail "%s/%s[%d]: %s -> %s (%.1f%% > %.1f%% tolerance)" name
                                label ci ocell ncell (100. *. rel) (100. *. tolerance)
                        | _ ->
                            if ocell <> ncell then
                              fail "%s/%s[%d]: %S -> %S" name label ci ocell ncell))
                  orow)
              orows)
    olds;
  List.iter
    (fun ((e, n), opass) ->
      match List.assoc_opt (e, n) (check_list new_doc) with
      | None -> fail "%s/%s: shape check missing from new document" e n
      | Some npass ->
          if opass && not npass then fail "%s/%s: shape check regressed (pass -> FAIL)" e n
          else if (not opass) && npass then fail "%s/%s: shape check now passes (refresh baseline)" e n)
    (check_list old_doc);
  List.rev !failures
