(** Multi-front-end experiments: reader scalability (Figure 8), multiple
    structures per back-end (Figure 9), partitioning over several
    back-ends (Figure 10), CPU utilization (Figure 11), the §6.3 lock
    ping-point test, and the lock-contention scaling study. Each client
    is a straight-line loop handed to {!Asym_sim.Sched}, which suspends
    it at every clock advance — clients interleave at verb granularity,
    racing inside lock holds and optimistic read sections. *)

open Asym_sim
open Asym_core

let lat = Latency.default

(* Align a set of clocks at a common starting line. *)
let align clocks =
  let t0 = Sched.makespan clocks in
  List.iter (fun c -> Clock.wait_until c t0) clocks;
  t0

let kops_of ops elapsed =
  if elapsed <= 0 then 0.0 else float_of_int ops /. Simtime.to_sec elapsed /. 1000.0

(* ------------------------------------------------------------------ *)
(* Figure 8 — multiple readers, one writer                              *)
(* ------------------------------------------------------------------ *)

type fig8_point = { writer_kops : float; reader_avg_kops : float; retry_ratio : float }

let fig8_point ~kind ~readers ~preload ~duration =
  let rig = Runner.make_rig lat in
  (* Writer preloads, then keeps inserting. *)
  let wcfg = { (Client.rcb ~batch_size:64 ()) with Client.flush_on_unlock = false } in
  let writer = Runner.fresh_client ~name:"writer" rig wcfg in
  let winst = Runner.client_instance ~shared:true kind writer ~name:"shared-ds" in
  Runner.preload_instance winst ~fifo:false ~n:preload ~value_size:64;
  let rclients =
    List.init readers (fun i ->
        Runner.fresh_client ~name:(Printf.sprintf "reader%d" i) rig
          (Runner.with_cache_pct rig (Client.rc ()) 0.10))
  in
  let rinsts =
    List.map (fun c -> (c, Runner.client_instance ~shared:true kind c ~name:"shared-ds")) rclients
  in
  (* Warm every reader's cache and level threshold before the clocks are
     aligned and measurement starts. *)
  List.iteri
    (fun i (_, inst) ->
      let rng = Asym_util.Rng.create ~seed:(Int64.of_int (900 + i)) in
      for _ = 1 to 1024 do
        ignore (inst.Runner.get (Int64.of_int (Asym_util.Rng.int rng preload)))
      done)
    rinsts;
  let clocks = Client.clock writer :: List.map Client.clock rclients in
  let t0 = align clocks in
  let deadline = t0 + duration in
  let wops = ref 0 in
  let wrng = Asym_util.Rng.create ~seed:51L in
  let wclock = Client.clock writer in
  let wclient =
    Sched.client ~clock:wclock ~run:(fun () ->
        while Clock.now wclock < deadline do
          let k = Int64.of_int (Asym_util.Rng.int wrng (preload * 4)) in
          winst.Runner.put k (Runner.value_of k);
          incr wops
        done)
  in
  let rops = Hashtbl.create 8 in
  let rclients_s =
    List.mapi
      (fun i (c, inst) ->
        let rng = Asym_util.Rng.create ~seed:(Int64.of_int (100 + i)) in
        Hashtbl.replace rops i 0;
        let clk = Client.clock c in
        Sched.client ~clock:clk ~run:(fun () ->
            while Clock.now clk < deadline do
              let k = Int64.of_int (Asym_util.Rng.int rng preload) in
              ignore (inst.Runner.get k);
              Hashtbl.replace rops i (Hashtbl.find rops i + 1)
            done))
      rinsts
  in
  Sched.run (wclient :: rclients_s);
  let writer_kops = kops_of !wops (Clock.now (Client.clock writer) - t0) in
  let reader_rates =
    List.mapi
      (fun i c -> kops_of (Hashtbl.find rops i) (Clock.now (Client.clock c) - t0))
      rclients
  in
  let reader_avg_kops =
    if readers = 0 then 0.0
    else List.fold_left ( +. ) 0.0 reader_rates /. float_of_int readers
  in
  let total_reads = Hashtbl.fold (fun _ v a -> a + v) rops 0 in
  let retries = List.fold_left (fun a c -> a + Client.read_retries c) 0 rclients in
  let retry_ratio =
    if total_reads + retries = 0 then 0.0
    else float_of_int retries /. float_of_int (total_reads + retries)
  in
  { writer_kops; reader_avg_kops; retry_ratio }

let fig8 ~preload ~duration =
  let t =
    Report.create ~title:"Figure 8: reader scalability (KOPS), 1 writer + N readers"
      ~header:[ "Benchmark"; "Readers"; "Reader avg"; "Writer"; "Retry ratio" ]
      ~notes:
        [
          "8a lock-free: MV-BST / MV-BPT (no retries by construction)";
          "8b lock-based: BST / BPT / SkipList (optimistic readers retry)";
        ]
      ()
  in
  List.iter
    (fun kind ->
      List.iter
        (fun readers ->
          let p = fig8_point ~kind ~readers ~preload ~duration in
          Report.add_row t
            [
              Runner.ds_name kind;
              string_of_int readers;
              Report.kops p.reader_avg_kops;
              Report.kops p.writer_kops;
              Report.pct p.retry_ratio;
            ])
        [ 1; 2; 3; 4; 5; 6 ])
    [ Runner.Mv_bst; Runner.Mv_bpt; Runner.Bst; Runner.Bpt; Runner.Skip_list ];
  t

(* ------------------------------------------------------------------ *)
(* Figure 9 — multiple structures sharing one back-end                  *)
(* ------------------------------------------------------------------ *)

let fig9_point ~kind ~n ~preload ~duration =
  let rig = Runner.make_rig lat in
  let clients =
    List.init n (fun i ->
        let c =
          Runner.fresh_client ~name:(Printf.sprintf "fe%d" i) rig (Client.rcb ~batch_size:64 ())
        in
        let inst = Runner.client_instance kind c ~name:(Printf.sprintf "ds%d" i) in
        Runner.preload_instance inst ~fifo:false ~n:preload ~value_size:64;
        (c, inst))
  in
  let clocks = List.map (fun (c, _) -> Client.clock c) clients in
  let t0 = align clocks in
  let deadline = t0 + duration in
  let counts = Array.make n 0 in
  let scheds =
    List.mapi
      (fun i (c, inst) ->
        let rng = Asym_util.Rng.create ~seed:(Int64.of_int (200 + i)) in
        let clk = Client.clock c in
        Sched.client ~clock:clk ~run:(fun () ->
            while Clock.now clk < deadline do
              let k = Int64.of_int (Asym_util.Rng.int rng (preload * 4)) in
              inst.Runner.put k (Runner.value_of k);
              counts.(i) <- counts.(i) + 1
            done))
      clients
  in
  Sched.run scheds;
  let total = Array.fold_left ( + ) 0 counts in
  kops_of total duration

let fig9 ~preload ~duration =
  let t =
    Report.create
      ~title:"Figure 9: aggregate throughput (KOPS), N front-ends with independent structures"
      ~header:("Benchmark" :: List.map string_of_int [ 1; 2; 3; 4; 5; 6; 7 ])
      ()
  in
  List.iter
    (fun kind ->
      Report.add_row t
        (Runner.ds_name kind
        :: List.map
             (fun n -> Report.kops (fig9_point ~kind ~n ~preload ~duration))
             [ 1; 2; 3; 4; 5; 6; 7 ]))
    [ Runner.Skip_list; Runner.Bst; Runner.Bpt; Runner.Mv_bst; Runner.Mv_bpt ];
  t

(* ------------------------------------------------------------------ *)
(* Figure 10 — partitioning over multiple back-ends                     *)
(* ------------------------------------------------------------------ *)

let fig10_point ~kind ~backends ~preload ~ops =
  (* One front-end node (one clock) with a connection to each back-end;
     key-hash routing picks the partition (§8.3 / Multi_backend). *)
  let rigs =
    List.init backends (fun i ->
        Runner.make_rig ~name:(Printf.sprintf "bk%d" i) ~capacity:(64 * 1024 * 1024)
          ~max_sessions:3 ~memlog_cap:(4 * 1024 * 1024) lat)
  in
  let clock = Clock.create ~name:"fe" () in
  let mb =
    Asym_structs.Multi_backend.create ~cfg:(Client.rcb ~batch_size:64 ()) ~name:"part" ~clock
      ~backends:(List.map (fun r -> r.Runner.bk) rigs)
      ~attach:(fun c _i -> Runner.client_instance kind c ~name:"part")
      ()
  in
  let route key = Asym_structs.Multi_backend.route mb key in
  (* Preload through the partitions, shuffled and spread over the key
     space (an ordered preload degenerates the unbalanced trees). *)
  let keys = Array.init preload (fun i -> Int64.of_int (4 * i)) in
  Asym_util.Rng.shuffle (Asym_util.Rng.create ~seed:4321L) keys;
  Array.iter (fun k -> (route k).Runner.put k (Runner.value_of k)) keys;
  Asym_structs.Multi_backend.iter_parts mb (fun _ inst -> inst.Runner.cleanup ());
  let rng = Asym_util.Rng.create ~seed:61L in
  let t0 = Clock.now clock in
  for _ = 1 to ops do
    let k = Int64.of_int (Asym_util.Rng.int rng (preload * 4)) in
    (route k).Runner.put k (Runner.value_of k)
  done;
  kops_of ops (Clock.now clock - t0)

let fig10 ~preload ~ops =
  let t =
    Report.create ~title:"Figure 10: throughput (KOPS) with the structure partitioned over N back-ends"
      ~header:("Benchmark" :: List.map string_of_int [ 1; 2; 3; 4; 5; 6; 7 ])
      ()
  in
  List.iter
    (fun kind ->
      Report.add_row t
        (Runner.ds_name kind
        :: List.map
             (fun n -> Report.kops (fig10_point ~kind ~backends:n ~preload ~ops))
             [ 1; 2; 3; 4; 5; 6; 7 ]))
    [ Runner.Skip_list; Runner.Bst; Runner.Bpt; Runner.Mv_bst; Runner.Mv_bpt ];
  t

(* ------------------------------------------------------------------ *)
(* Figure 11 — CPU utilization                                          *)
(* ------------------------------------------------------------------ *)

let fig11 ~preload ~ops =
  let t =
    Report.create ~title:"Figure 11: CPU utilization, BST with 10% put / 90% get"
      ~header:[ "Ops so far"; "Front-end util"; "Back-end util" ]
      ()
  in
  let rig = Runner.make_rig lat in
  let c =
    Runner.fresh_client ~name:"fe" rig
      (Runner.with_cache_pct rig (Client.rcb ~batch_size:64 ()) 0.10)
  in
  let inst = Runner.client_instance Runner.Bst c ~name:"bst" in
  Runner.preload_instance inst ~fifo:false ~n:preload ~value_size:64;
  let clock = Client.clock c in
  let rng = Asym_util.Rng.create ~seed:71L in
  let windows = 10 in
  let per_window = max 1 (ops / windows) in
  let done_ops = ref 0 in
  for _ = 1 to windows do
    let t0 = Clock.now clock in
    let fe_busy0 = Clock.busy clock in
    let be_busy0 = Timeline.busy_total (Backend.cpu rig.Runner.bk) in
    for _ = 1 to per_window do
      let k = Int64.of_int (Asym_util.Rng.int rng (preload * 2)) in
      if Asym_util.Rng.float rng < 0.1 then inst.Runner.put k (Runner.value_of k)
      else ignore (inst.Runner.get k)
    done;
    done_ops := !done_ops + per_window;
    let elapsed = Clock.now clock - t0 in
    let fe = float_of_int (Clock.busy clock - fe_busy0) /. float_of_int (max 1 elapsed) in
    let be =
      float_of_int (Timeline.busy_total (Backend.cpu rig.Runner.bk) - be_busy0)
      /. float_of_int (max 1 elapsed)
    in
    Report.add_row t [ string_of_int !done_ops; Report.pct fe; Report.pct be ]
  done;
  t

(* ------------------------------------------------------------------ *)
(* §6.3 lock ping-point test                                            *)
(* ------------------------------------------------------------------ *)

let lock_bench_point ~write_ratio ~readers ~duration =
  let rig = Runner.make_rig lat in
  (* One shared 64-byte object, registered in the naming space. *)
  let setup = Runner.fresh_client ~name:"setup" rig (Client.r ()) in
  let h = Client.register_ds setup "object" in
  let addr = Client.malloc setup 64 in
  ignore (Client.op_begin setup ~ds:h.Types.id ~optype:1 ~params:Bytes.empty);
  Client.write setup ~ds:h.Types.id ~addr (Bytes.make 64 'i');
  Client.op_end setup ~ds:h.Types.id;
  (* Writer client: mixes writes (under the exclusive lock) with reads so
     that [write_ratio] of its operations are writes. *)
  let wc = Runner.fresh_client ~name:"writer" rig (Client.rcb ~batch_size:8 ()) in
  let wh = Client.register_ds wc "object" in
  let rcs =
    List.init readers (fun i ->
        let c = Runner.fresh_client ~name:(Printf.sprintf "r%d" i) rig (Client.r ()) in
        (c, Client.register_ds c "object"))
  in
  let clocks = Client.clock wc :: List.map (fun (c, _) -> Client.clock c) rcs in
  let t0 = align clocks in
  let deadline = t0 + duration in
  let writes = ref 0 in
  let wrng = Asym_util.Rng.create ~seed:81L in
  let wclk = Client.clock wc in
  let writer =
    Sched.client ~clock:wclk ~run:(fun () ->
        while Clock.now wclk < deadline do
          if Asym_util.Rng.float wrng < write_ratio then begin
            Client.writer_lock wc wh;
            ignore (Client.op_begin wc ~ds:wh.Types.id ~optype:1 ~params:Bytes.empty);
            Client.write wc ~ds:wh.Types.id ~addr (Bytes.make 64 'w');
            Client.op_end wc ~ds:wh.Types.id;
            Client.writer_unlock wc wh
          end
          else ignore (Client.read wc ~addr ~len:64);
          incr writes
        done)
  in
  let reads = Array.make readers 0 in
  let fails = Array.make readers 0 in
  let rsched =
    List.mapi
      (fun i (c, hh) ->
        let clk = Client.clock c in
        Sched.client ~clock:clk ~run:(fun () ->
            while Clock.now clk < deadline do
              let before = Client.read_retries c in
              ignore (Client.read_section c hh (fun () -> Client.read c ~addr ~len:64));
              reads.(i) <- reads.(i) + 1;
              fails.(i) <- fails.(i) + (Client.read_retries c - before)
            done))
      rcs
  in
  Sched.run (writer :: rsched);
  let writer_kops = kops_of !writes (Clock.now (Client.clock wc) - t0) in
  let reader_total = Array.fold_left ( + ) 0 reads in
  let fail_total = Array.fold_left ( + ) 0 fails in
  let per_reader =
    Array.to_list reads
    |> List.mapi (fun i n ->
           kops_of n (Clock.now (Client.clock (fst (List.nth rcs i))) - t0))
  in
  let reader_avg = List.fold_left ( +. ) 0.0 per_reader /. float_of_int readers in
  let fail_ratio =
    if reader_total + fail_total = 0 then 0.0
    else float_of_int fail_total /. float_of_int (reader_total + fail_total)
  in
  (reader_avg, reader_avg *. float_of_int readers, writer_kops, fail_ratio)

let lock_bench ~duration =
  let t =
    Report.create ~title:"Lock ping-point test (§6.3): 6 readers + 1 writer on one object"
      ~header:[ "Write ratio"; "Reader avg"; "Readers total"; "Writer"; "Reader fail ratio" ]
      ~notes:
        [ "paper: 10% write -> 260 KOPS/reader, 539 KOPS writer, 3% fails; 50% write -> 165 \
           KOPS/reader, 510 KOPS writer, 26% fails" ]
      ()
  in
  List.iter
    (fun ratio ->
      let avg, total, writer, fails = lock_bench_point ~write_ratio:ratio ~readers:6 ~duration in
      Report.add_row t
        [
          Report.pct ratio; Report.kops avg; Report.kops total; Report.kops writer;
          Report.pct fails;
        ])
    [ 0.1; 0.5 ];
  t

(* ------------------------------------------------------------------ *)
(* Lock-contention scaling: N writers on one shared structure           *)
(* ------------------------------------------------------------------ *)

type contention_point = {
  total_kops : float;
  lock_wait_share : float;
  avg_lock_wait_ns : float;
}

let contention_point ~writers ~preload ~duration =
  let rig = Runner.make_rig lat in
  (* flush_on_unlock: several front-ends write the same structure, so the
     holder must make its writes visible before the next CAS winner reads
     the tree — the config the paper requires for shared writers. *)
  let cfg = { (Client.rcb ~batch_size:16 ()) with Client.flush_on_unlock = true } in
  let setup = Runner.fresh_client ~name:"setup" rig cfg in
  let sinst = Runner.client_instance ~shared:true Runner.Bst setup ~name:"contended-ds" in
  Runner.preload_instance sinst ~fifo:false ~n:preload ~value_size:64;
  Client.close setup;
  let wcs =
    List.init writers (fun i ->
        let c = Runner.fresh_client ~name:(Printf.sprintf "w%d" i) rig cfg in
        (c, Runner.client_instance ~shared:true Runner.Bst c ~name:"contended-ds"))
  in
  let clocks = List.map (fun (c, _) -> Client.clock c) wcs in
  let t0 = align clocks in
  let deadline = t0 + duration in
  let counts = Array.make writers 0 in
  let scheds =
    List.mapi
      (fun i (c, inst) ->
        let rng = Asym_util.Rng.create ~seed:(Int64.of_int (300 + i)) in
        let clk = Client.clock c in
        Sched.client ~clock:clk ~run:(fun () ->
            while Clock.now clk < deadline do
              let k = Int64.of_int (Asym_util.Rng.int rng (preload * 4)) in
              inst.Runner.put k (Runner.value_of k);
              counts.(i) <- counts.(i) + 1
            done))
      wcs
  in
  Sched.run scheds;
  let total = Array.fold_left ( + ) 0 counts in
  let elapsed =
    List.fold_left (fun a (c, _) -> a + (Clock.now (Client.clock c) - t0)) 0 wcs
  in
  let waited = List.fold_left (fun a (c, _) -> a + Client.lock_wait_ns c) 0 wcs in
  {
    total_kops = kops_of total duration;
    lock_wait_share =
      (if elapsed <= 0 then 0.0 else float_of_int waited /. float_of_int elapsed);
    avg_lock_wait_ns =
      (if total = 0 then 0.0 else float_of_int waited /. float_of_int total);
  }

let contention ~preload ~duration =
  let t =
    Report.create
      ~title:"Lock contention: N writers racing for one shared BST's writer lock"
      ~header:[ "Writers"; "Total KOPS"; "Lock-wait share"; "Avg lock wait (ns/op)" ]
      ~notes:
        [
          "lock-wait share = sum of per-writer lock wait / sum of per-writer elapsed time";
          "each CAS probe is a suspension point: spinning interleaves with the holder's verbs";
        ]
      ()
  in
  List.iter
    (fun n ->
      let p = contention_point ~writers:n ~preload ~duration in
      Report.add_row t
        [
          string_of_int n;
          Report.kops p.total_kops;
          Report.pct p.lock_wait_share;
          Printf.sprintf "%.0f" p.avg_lock_wait_ns;
        ])
    [ 1; 2; 3; 4; 6; 8 ];
  t
