(* Where the time goes: per-configuration latency attribution tables
   built from the cause sink the simulation charges on every clock
   advance, plus per-resource queue-wait/service splits from the
   timelines. Powers `bench breakdown` and `asymnvm profile`. *)

module Obs = Asym_obs
open Asym_sim

type cell = {
  kind : Runner.ds_kind;
  config : string;
  res : Runner.result;
  attr : (Obs.Attr.cause * int) list;  (** ns per cause over the measured window *)
  round_trips : int;  (** signaled verbs posted (each pays a full RTT) *)
  resources : (string * int * int) list;  (** resource, queue ns, service ns *)
}

let attr_ns cell cause = match List.assoc_opt cause cell.attr with Some v -> v | None -> 0
let attr_total cell = List.fold_left (fun acc (_, v) -> acc + v) 0 cell.attr

(* One Table-3-style cell with observability forced on; the measured
   window's registry snapshot (Runner wraps it in Obs_report.phase) is
   parsed back into the cell. *)
let run_cell ?(shared = false) ?put_ratio ?dist ~rig ~cfg ~preload ~ops kind =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      Obs_report.reset_phases ();
      Obs.reset ();
      let res = Runner.run_asym ~shared ?put_ratio ?dist ~rig ~cfg ~kind ~preload ~ops () in
      let snap =
        match List.rev (Obs_report.phase_snapshots ()) with
        | (_, json) :: _ -> json
        | [] -> Obs.Json.Obj []
      in
      let attr =
        List.filter_map
          (fun (labels, v) ->
            Option.bind (List.assoc_opt "cause" labels) Obs.Attr.of_name
            |> Option.map (fun c -> (c, v)))
          (Obs_report.counter_series "attr.ns" snap)
      in
      let round_trips =
        List.fold_left
          (fun acc (labels, v) ->
            if List.assoc_opt "op" labels = Some "write_unsignaled" then acc else acc + v)
          0
          (Obs_report.counter_series "rdma.verbs" snap)
      in
      let resources =
        let get name =
          List.filter_map
            (fun (labels, v) ->
              Option.map (fun r -> (r, v)) (List.assoc_opt "resource" labels))
            (Obs_report.counter_series name snap)
        in
        let queue = get "timeline.queue_ns" and service = get "timeline.service_ns" in
        let names =
          List.sort_uniq compare (List.map fst queue @ List.map fst service)
        in
        List.map
          (fun r ->
            let v xs = match List.assoc_opt r xs with Some v -> v | None -> 0 in
            (r, v queue, v service))
          names
      in
      { kind; config = Asym_core.Client.config_name cfg; res; attr; round_trips; resources })

(* -- tables ------------------------------------------------------------------ *)

let per_op cell ns = float_of_int ns /. float_of_int (max 1 cell.res.Runner.ops)

let table cells =
  let causes =
    (* Only columns some cell actually charged. *)
    List.filter (fun c -> List.exists (fun cl -> attr_ns cl c > 0) cells) Obs.Attr.all
  in
  let t =
    Report.create
      ~title:"Breakdown: where the simulated time goes (us/op and share), YCSB-A mix"
      ~header:
        ([ "Benchmark"; "Config"; "KOPS"; "us/op"; "rt/op" ]
        @ List.map Obs.Attr.name causes)
      ~notes:
        [
          "rt/op counts signaled verbs (round trips paid in client latency); \
           unsignaled posts ride for free";
          "cause columns: share of the operation's virtual time, summing to 100%";
        ]
      ()
  in
  List.iter
    (fun cl ->
      let total = attr_total cl in
      Report.add_row t
        ([
           Runner.ds_name cl.kind;
           cl.config;
           Report.kops cl.res.Runner.kops;
           Printf.sprintf "%.2f" (per_op cl total /. 1e3);
           Printf.sprintf "%.1f" (per_op cl cl.round_trips);
         ]
        @ List.map
            (fun c -> Report.pct (float_of_int (attr_ns cl c) /. float_of_int (max 1 total)))
            causes))
    cells;
  (match cells with
  | cl :: _ ->
      let covered = attr_total cl and elapsed = cl.res.Runner.elapsed in
      Report.note t
        (Printf.sprintf "conservation (first cell): %d ns attributed of %d ns elapsed (%s)"
           covered elapsed
           (if covered = elapsed then "exact" else "MISMATCH"))
  | [] -> ());
  t

let resource_table cells =
  let t =
    Report.create ~title:"Breakdown: queue wait vs service per shared resource"
      ~header:[ "Benchmark"; "Config"; "Resource"; "queue us"; "service us"; "queue share" ]
      ~notes:
        [
          "queue = time requests sat waiting for the resource; service = time it worked. \
           A hot back-end NIC shows up here before it shows up in throughput.";
        ]
      ()
  in
  List.iter
    (fun cl ->
      List.iter
        (fun (r, q, s) ->
          Report.add_row t
            [
              Runner.ds_name cl.kind;
              cl.config;
              r;
              Printf.sprintf "%.1f" (float_of_int q /. 1e3);
              Printf.sprintf "%.1f" (float_of_int s /. 1e3);
              Report.pct (float_of_int q /. float_of_int (max 1 (q + s)));
            ])
        cl.resources)
    cells;
  t

(* -- verdicts ---------------------------------------------------------------- *)

let find cells kind config =
  List.find_opt (fun cl -> cl.kind = kind && cl.config = config) cells

let checks cells =
  let check cname pass detail =
    { Bench_json.experiment = "breakdown"; cname; pass; detail }
  in
  let conservation =
    match
      List.find_opt (fun cl -> attr_total cl <> cl.res.Runner.elapsed) cells
    with
    | None -> check "conservation" true "per-cause ns sum to elapsed virtual time in every cell"
    | Some cl ->
        check "conservation" false
          (Printf.sprintf "%s/%s: %d ns attributed vs %d elapsed" (Runner.ds_name cl.kind)
             cl.config (attr_total cl) cl.res.Runner.elapsed)
  in
  let naive_rtt =
    match find cells Runner.Bpt "Naive" with
    | Some cl ->
        let rtt = attr_ns cl Obs.Attr.Rdma_rtt in
        let dominant =
          List.for_all (fun (c, v) -> c = Obs.Attr.Rdma_rtt || v <= rtt) cl.attr
        in
        check "naive_rtt_dominant" dominant
          (Printf.sprintf "naive BPT: rdma_rtt %.0f%% of op time"
             (100. *. float_of_int rtt /. float_of_int (max 1 (attr_total cl))))
    | None -> check "naive_rtt_dominant" false "no naive BPT cell"
  in
  let rcb_shift =
    (* The batched multi-version B+ tree is the paper's batching winner
       (§6.2): the op log amortizes across the vput batch, so the
       majority of its time lands on local compute + media. *)
    match find cells Runner.Mv_bpt "RCB" with
    | Some cl ->
        let local = attr_ns cl Obs.Attr.Local_compute + attr_ns cl Obs.Attr.Nvm_media in
        let rtt = attr_ns cl Obs.Attr.Rdma_rtt in
        check "rcb_local_shift" (local > rtt)
          (Printf.sprintf "RCB MV-BPT: local_compute+nvm_media %d ns vs rdma_rtt %d ns" local
             rtt)
    | None -> check "rcb_local_shift" false "no RCB MV-BPT cell"
  in
  let rtt_collapse =
    (* Plain BPT keeps ~1 round trip per op under RCB (the signaled
       op-log append and below-threshold leaf reads), but the absolute
       RTT cost per op must still collapse several-fold vs Naive. *)
    match (find cells Runner.Bpt "Naive", find cells Runner.Bpt "RCB") with
    | Some n, Some r ->
        let per cl = per_op cl (attr_ns cl Obs.Attr.Rdma_rtt) in
        check "bpt_rtt_collapse"
          (per r < per n /. 3.)
          (Printf.sprintf "BPT rdma_rtt %.0f ns/op Naive -> %.0f ns/op RCB" (per n) (per r))
    | _ -> check "bpt_rtt_collapse" false "missing BPT cells"
  in
  [ conservation; naive_rtt; rcb_shift; rtt_collapse ]

(* The default `bench breakdown` cast: the structures whose Table 3
   movements EXPERIMENTS.md explains by hand today. *)
let default_cells ?(preload = 4000) ?(ops = 4000) () =
  let lat = Latency.default in
  let fifo_rcb =
    { (Asym_core.Client.rcb ()) with Asym_core.Client.oplog_signaled = false }
  in
  (* YCSB-A (50/50, zipf .99) for the key/value structures: the profile a
     structure serves in steady state, and the one EXPERIMENTS.md's drift
     discussion needs — cached reads are where the cache converts round
     trips into local time, writes are where the log batching does. FIFO
     structures keep the 100%-push drive (they have no read mix). *)
  let cell ?shared cfg kind =
    let put_ratio = if Runner.is_fifo kind then 1.0 else 0.5 in
    run_cell ?shared ~put_ratio ~dist:(Asym_workload.Ycsb.Zipfian 0.99)
      ~rig:(Runner.make_rig lat) ~cfg ~preload ~ops kind
  in
  let open Asym_core in
  [
    cell (Client.naive ()) Runner.Bpt;
    cell (Client.r ()) Runner.Bpt;
    cell (Client.rc ()) Runner.Bpt;
    cell (Client.rcb ()) Runner.Bpt;
    cell (Client.naive ()) Runner.Hash_table;
    cell (Client.rc ()) Runner.Hash_table;
    cell (Client.naive ()) Runner.Queue;
    cell fifo_rcb Runner.Queue;
    cell (Client.naive ()) Runner.Mv_bpt;
    cell (Client.rcb ()) Runner.Mv_bpt;
  ]
