(** Single-client experiments: Table 2, Table 3, Figures 6/7/12/13, the
    §4.4 cache-policy study and the design-choice ablations. Multi-client
    experiments (Figures 8–11, the §6.3 lock test) live in
    {!Multiclient}. *)

open Asym_sim
open Asym_core

type scale = {
  preload : int;
  ops : int;
  subscribers : int;  (* TATP *)
  accounts : int;  (* SmallBank *)
}

let quick = { preload = 4000; ops = 4000; subscribers = 600; accounts = 2000 }
let full = { preload = 20000; ops = 20000; subscribers = 3000; accounts = 10000 }

let lat = Latency.default

(* One fresh rig per cell keeps experiments independent. *)
let rig () = Runner.make_rig lat

module Tatp_c = Asym_apps.Tatp.Make (Client)
module Tatp_l = Asym_apps.Tatp.Make (Asym_baseline.Local_store)
module Bank_c = Asym_apps.Smallbank.Make (Client)
module Bank_l = Asym_apps.Smallbank.Make (Asym_baseline.Local_store)

(* ------------------------------------------------------------------ *)
(* Application runners                                                  *)
(* ------------------------------------------------------------------ *)

let tatp_opts = Asym_structs.Ds_intf.locked_options

let run_tatp_asym ?(cache_pct = 0.10) ~cfg ~sc () =
  let r = rig () in
  let pre = Runner.fresh_client ~name:"tatp.preload" r (Client.rcb ~batch_size:256 ()) in
  let app = Tatp_c.attach ~opts:tatp_opts pre ~name:"tatp" in
  Tatp_c.populate app (Asym_util.Rng.create ~seed:3L) ~subscribers:sc.subscribers;
  Client.flush pre;
  let cfg = Runner.with_cache_pct r cfg cache_pct in
  let c = Runner.fresh_client ~name:"tatp" r cfg in
  let app = Tatp_c.attach ~opts:tatp_opts c ~name:"tatp" in
  let rng = Asym_util.Rng.create ~seed:4L in
  let kops, _ =
    Runner.measure ~clock:(Client.clock c) ~ops:sc.ops (fun _ ->
        Tatp_c.run_random app rng ~subscribers:sc.subscribers ~mix:Asym_apps.Tatp.default_mix)
  in
  kops

let run_tatp_sym ~cfg ~sc () =
  let clock = Clock.create ~name:"sym.tatp" () in
  let s = Asym_baseline.Local_store.create ~cfg lat ~clock in
  let app = Tatp_l.attach ~opts:tatp_opts s ~name:"tatp" in
  Tatp_l.populate app (Asym_util.Rng.create ~seed:3L) ~subscribers:sc.subscribers;
  let rng = Asym_util.Rng.create ~seed:4L in
  let kops, _ =
    Runner.measure ~clock ~ops:sc.ops (fun _ ->
        Tatp_l.run_random app rng ~subscribers:sc.subscribers ~mix:Asym_apps.Tatp.default_mix)
  in
  kops

let run_bank_asym ?(cache_pct = 0.10) ?cust_gen ~cfg ~sc () =
  let r = rig () in
  let pre = Runner.fresh_client ~name:"bank.preload" r (Client.rcb ~batch_size:256 ()) in
  let _ = Bank_c.create pre ~name:"bank" ~accounts:sc.accounts ~initial_balance:1000L in
  Client.flush pre;
  let cfg = Runner.with_cache_pct r cfg cache_pct in
  let c = Runner.fresh_client ~name:"bank" r cfg in
  let app = Bank_c.attach c ~name:"bank" in
  let rng = Asym_util.Rng.create ~seed:5L in
  let kops, _ =
    Runner.measure ~clock:(Client.clock c) ~ops:sc.ops (fun _ ->
        Bank_c.run_random ?cust_gen app rng ~accounts:sc.accounts
          ~mix:Asym_apps.Smallbank.default_mix)
  in
  kops

let run_bank_sym ~cfg ~sc () =
  let clock = Clock.create ~name:"sym.bank" () in
  let s = Asym_baseline.Local_store.create ~cfg lat ~clock in
  let app = Bank_l.create s ~name:"bank" ~accounts:sc.accounts ~initial_balance:1000L in
  let rng = Asym_util.Rng.create ~seed:5L in
  let kops, _ =
    Runner.measure ~clock ~ops:sc.ops (fun _ ->
        Bank_l.run_random app rng ~accounts:sc.accounts ~mix:Asym_apps.Smallbank.default_mix)
  in
  kops

(* ------------------------------------------------------------------ *)
(* Table 2 — allocator comparison                                       *)
(* ------------------------------------------------------------------ *)

(* Allocation sizes "32 bytes to 128 bytes" (§5.2). *)
let alloc_sizes = [| 32; 48; 64; 96; 128 |]

let mops n elapsed = if elapsed = 0 then 0.0 else float_of_int n /. Simtime.to_sec elapsed /. 1e6

(* Volatile DRAM allocator (the Glibc row): pure local latency. *)
let table2_glibc n =
  let clk = Clock.create () in
  let t0 = Clock.now clk in
  for _ = 1 to n do
    Clock.advance clk lat.Latency.dram_ns
  done;
  let alloc = mops n (Clock.now clk - t0) in
  let t1 = Clock.now clk in
  for _ = 1 to n do
    Clock.advance clk (lat.Latency.dram_ns / 3)
  done;
  (alloc, mops n (Clock.now clk - t1))

(* Single-node persistent allocator (the Pmem/NVML row): every alloc and
   free persists a bitmap line and fences. *)
let table2_pmem n =
  let clk = Clock.create () in
  let cost = Latency.nvm_write_cost lat 8 + lat.Latency.persist_fence_ns in
  let t0 = Clock.now clk in
  for _ = 1 to n do
    Clock.advance clk cost
  done;
  let alloc = mops n (Clock.now clk - t0) in
  let t1 = Clock.now clk in
  for _ = 1 to n do
    Clock.advance clk cost
  done;
  (alloc, mops n (Clock.now clk - t1))

(* Remote allocation through the management RPC only: every alloc/free is
   one RFP round on a raw connection. *)
let table2_rpc n =
  let bk =
    Backend.create ~name:"alloc-bk" ~max_sessions:2 ~memlog_cap:(1024 * 1024)
      ~oplog_cap:(512 * 1024) ~slab_size:128 ~capacity:(64 * 1024 * 1024) lat
  in
  let clk = Clock.create ~name:"alloc" () in
  let conn =
    Asym_rdma.Verbs.connect ~client:clk ~remote_nic:(Backend.nic bk)
      ~remote_mem:(Backend.device bk) lat
  in
  let addrs = Array.make n 0 in
  let t0 = Clock.now clk in
  for i = 0 to n - 1 do
    match Backend.rpc bk ~conn ~session:None (Rpc_msg.Malloc { slabs = 1 }) with
    | Rpc_msg.R_addr a -> addrs.(i) <- a
    | _ -> failwith "table2: rpc alloc failed"
  done;
  let alloc = mops n (Clock.now clk - t0) in
  let t1 = Clock.now clk in
  for i = 0 to n - 1 do
    ignore (Backend.rpc bk ~conn ~session:None (Rpc_msg.Free { addr = addrs.(i); slabs = 1 }))
  done;
  (alloc, mops n (Clock.now clk - t1))

let table2 sc =
  let n = max 2000 (sc.ops / 2) in
  let t = Report.create ~title:"Table 2: allocator comparison (MOPS)"
      ~header:[ "Allocator"; "Alloc"; "Free" ]
      ~notes:
        [
          "paper: Glibc 21.0/57.0, Pmem 1.42/1.38, RPC 0.33/0.88, two-tier(128B) 1.33/2.41, \
           two-tier(1024B) 6.42/13.90";
        ]
      ()
  in
  let ga, gf = table2_glibc n in
  Report.add_row t [ "Glibc (volatile DRAM)"; Report.mops ga; Report.mops gf ];
  let pa, pf = table2_pmem n in
  Report.add_row t [ "Pmem (local persistent)"; Report.mops pa; Report.mops pf ];
  let ra, rf = table2_rpc n in
  Report.add_row t [ "RPC allocator"; Report.mops ra; Report.mops rf ];
  (* Two-tier allocator at the two slab sizes of the paper. *)
  let two_tier slab_size =
    let bk =
      Backend.create ~name:"alloc-bk" ~max_sessions:4 ~memlog_cap:(1024 * 1024)
        ~oplog_cap:(512 * 1024) ~slab_size ~capacity:(64 * 1024 * 1024) lat
    in
    let clk = Clock.create ~name:"alloc" () in
    let c = Client.connect ~name:"alloc" (Client.r ()) bk ~clock:clk in
    let rng = Asym_util.Rng.create ~seed:2L in
    let sizes = Array.init n (fun _ -> Asym_util.Rng.choose rng alloc_sizes) in
    let addrs = Array.make n 0 in
    let t0 = Clock.now clk in
    for i = 0 to n - 1 do
      addrs.(i) <- Client.malloc c sizes.(i)
    done;
    let alloc = mops n (Clock.now clk - t0) in
    let t1 = Clock.now clk in
    for i = 0 to n - 1 do
      Client.free c addrs.(i) ~len:sizes.(i)
    done;
    (alloc, mops n (Clock.now clk - t1))
  in
  let a128, f128 = two_tier 128 in
  Report.add_row t [ "Two-tier (slab 128B)"; Report.mops a128; Report.mops f128 ];
  let a1k, f1k = two_tier 1024 in
  Report.add_row t [ "Two-tier (slab 1024B)"; Report.mops a1k; Report.mops f1k ];
  t

(* ------------------------------------------------------------------ *)
(* Table 3 — overall performance                                        *)
(* ------------------------------------------------------------------ *)

let cell_kops v = Report.kops v
let dash = "-"

let table3 sc =
  let t =
    Report.create ~title:"Table 3: performance comparison (KOPS), 100% write, 1 FE : 1 BE"
      ~header:[ "Benchmark"; "Symmetric"; "Symmetric-B"; "Naive"; "R"; "RC"; "RCB" ]
      ~notes:
        [
          "R: log reproducing; C: cache sized to 10% of used NVM; B: batch 1024";
          "missing cells follow the paper: O(1) structures take no benefit from batching; \
           queue/stack combine batch+cache";
        ]
      ()
  in
  let asym cfg kind = (Runner.run_asym ~rig:(rig ()) ~cfg ~kind ~preload:sc.preload ~ops:sc.ops ()).Runner.kops in
  let sym cfg kind = (Runner.run_sym ~lat ~cfg ~kind ~preload:sc.preload ~ops:sc.ops ()).Runner.kops in
  let fifo_rcb () =
    { (Client.rcb ()) with Client.oplog_signaled = false }
  in
  (* SmallBank *)
  Report.add_row t
    [
      "TX(SmallBank)";
      cell_kops (run_bank_sym ~cfg:Asym_baseline.Local_store.symmetric ~sc ());
      dash;
      cell_kops (run_bank_asym ~cfg:(Client.naive ()) ~sc ());
      cell_kops (run_bank_asym ~cfg:(Client.r ()) ~sc ());
      cell_kops (run_bank_asym ~cfg:(Client.rc ()) ~sc ());
      dash;
    ];
  (* TATP *)
  Report.add_row t
    [
      "TX(TATP)";
      cell_kops (run_tatp_sym ~cfg:Asym_baseline.Local_store.symmetric ~sc ());
      cell_kops (run_tatp_sym ~cfg:(Asym_baseline.Local_store.symmetric_b ()) ~sc ());
      cell_kops (run_tatp_asym ~cfg:(Client.naive ()) ~sc ());
      cell_kops (run_tatp_asym ~cfg:(Client.r ()) ~sc ());
      cell_kops (run_tatp_asym ~cfg:(Client.rc ()) ~sc ());
      cell_kops (run_tatp_asym ~cfg:(Client.rcb ()) ~sc ());
    ];
  (* Queue / Stack *)
  List.iter
    (fun kind ->
      Report.add_row t
        [
          Runner.ds_name kind;
          cell_kops (sym Asym_baseline.Local_store.symmetric kind);
          cell_kops (sym (Asym_baseline.Local_store.symmetric_b ()) kind);
          cell_kops (asym (Client.naive ()) kind);
          cell_kops (asym (Client.r ()) kind);
          dash;
          cell_kops (asym (fifo_rcb ()) kind);
        ])
    [ Runner.Queue; Runner.Stack ];
  (* HashTable *)
  Report.add_row t
    [
      "HashTable";
      cell_kops (sym Asym_baseline.Local_store.symmetric Runner.Hash_table);
      dash;
      cell_kops (asym (Client.naive ()) Runner.Hash_table);
      cell_kops (asym (Client.r ()) Runner.Hash_table);
      cell_kops (asym (Client.rc ()) Runner.Hash_table);
      dash;
    ];
  (* Ordered structures *)
  List.iter
    (fun kind ->
      Report.add_row t
        [
          Runner.ds_name kind;
          cell_kops (sym Asym_baseline.Local_store.symmetric kind);
          cell_kops (sym (Asym_baseline.Local_store.symmetric_b ()) kind);
          cell_kops (asym (Client.naive ()) kind);
          cell_kops (asym (Client.r ()) kind);
          cell_kops (asym (Client.rc ()) kind);
          cell_kops (asym (Client.rcb ()) kind);
        ])
    [ Runner.Skip_list; Runner.Bst; Runner.Bpt; Runner.Mv_bst; Runner.Mv_bpt ];
  t

(* ------------------------------------------------------------------ *)
(* Table 1 — RDMA wire cost per operation                               *)
(* ------------------------------------------------------------------ *)

(* Paper Table 1 counts network round trips per operation; here every
   asymmetric cell of the Table-3 matrix gets its measured verbs/op and
   payload bytes/op, from the Verbs counters surfaced through
   {!Runner.result}. The Table-3 support matrix applies (no cache column
   for queue/stack, no batching for the O(1) hash table). *)
let table1 sc =
  let t =
    Report.create ~title:"Table 1: RDMA wire cost per operation (100% write)"
      ~header:[ "Benchmark"; "Config"; "KOPS"; "verbs/op"; "bytes/op" ]
      ~notes:
        [
          "verbs/op counts posted verbs including unsignaled writes and atomics";
          "bytes/op is payload on the wire (headers excluded), per measured operation";
        ]
      ()
  in
  let per_op n r = float_of_int n /. float_of_int r.Runner.ops in
  let cell kind cfg =
    let r = Runner.run_asym ~rig:(rig ()) ~cfg ~kind ~preload:sc.preload ~ops:sc.ops () in
    Report.add_row t
      [
        Runner.ds_name kind;
        Client.config_name cfg;
        cell_kops r.Runner.kops;
        Printf.sprintf "%.2f" (per_op r.Runner.verbs r);
        Printf.sprintf "%.1f" (per_op r.Runner.wire_bytes r);
      ]
  in
  let fifo_rcb () = { (Client.rcb ()) with Client.oplog_signaled = false } in
  List.iter
    (fun kind ->
      let cfgs =
        if Runner.is_fifo kind then [ Client.naive (); Client.r (); fifo_rcb () ]
        else if kind = Runner.Hash_table then [ Client.naive (); Client.r (); Client.rc () ]
        else [ Client.naive (); Client.r (); Client.rc (); Client.rcb () ]
      in
      List.iter (cell kind) cfgs)
    Runner.all_ds;
  t

(* ------------------------------------------------------------------ *)
(* Figure 6 — batching sweep                                            *)
(* ------------------------------------------------------------------ *)

let batch_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let fig6 sc =
  let header = "Batch" :: List.map string_of_int batch_sizes in
  ignore header;
  let t =
    Report.create ~title:"Figure 6: throughput (KOPS) vs batch size"
      ~header:("Benchmark" :: List.map string_of_int batch_sizes)
      ~notes:
        [
          "6a (lock-free): MV-BST, MV-BPT, SkipList; 6b (lock-based): BST, BPT, TATP";
          "BST/BPT use sorted vector writes (Algorithm 3) at the batch size";
        ]
      ()
  in
  let batched_cfg b = if b <= 1 then Client.rc () else Client.rcb ~batch_size:b () in
  let plain kind b =
    (Runner.run_asym ~rig:(rig ()) ~cfg:(batched_cfg b) ~kind ~preload:sc.preload ~ops:sc.ops ())
      .Runner.kops
  in
  let vector kind b =
    if b = 1 then plain kind 1
    else begin
      let r = rig () in
      let nm = Runner.ds_name kind in
      let pre = Runner.fresh_client ~name:"pre" r (Client.rcb ~batch_size:256 ()) in
      Runner.preload_instance
        (Runner.client_instance kind pre ~name:nm)
        ~fifo:false ~n:sc.preload ~value_size:64;
      let cfg = Runner.with_cache_pct r (Client.rcb ~batch_size:2 ()) 0.10 in
      let c = Runner.fresh_client ~name:nm r cfg in
      let inst = Runner.client_instance kind c ~name:nm in
      let vput = match inst.Runner.vput with Some f -> f | None -> assert false in
      let rng = Asym_util.Rng.create ~seed:11L in
      let chunks = sc.ops / b in
      let clock = Client.clock c in
      (* Warm the cache and the adaptive level threshold. *)
      for _ = 1 to sc.ops / 2 do
        let k = Int64.of_int (Asym_util.Rng.int rng (sc.preload * 4)) in
        inst.Runner.put k (Runner.value_of k)
      done;
      Client.flush c;
      let t0 = Clock.now clock in
      for _ = 1 to max 1 chunks do
        let pairs =
          List.init b (fun _ ->
              let k = Int64.of_int (Asym_util.Rng.int rng (sc.preload * 4)) in
              (k, Runner.value_of k))
        in
        vput pairs
      done;
      let ops = max 1 chunks * b in
      let el = Clock.now clock - t0 in
      if el = 0 then 0.0 else float_of_int ops /. Simtime.to_sec el /. 1000.0
    end
  in
  let tatp b = run_tatp_asym ~cfg:(batched_cfg b) ~sc () in
  let row name f = Report.add_row t (name :: List.map (fun b -> Report.kops (f b)) batch_sizes) in
  row "MV-BST" (plain Runner.Mv_bst);
  row "MV-BPT" (plain Runner.Mv_bpt);
  row "SkipList" (plain Runner.Skip_list);
  row "BST (vector)" (vector Runner.Bst);
  row "BPT (vector)" (vector Runner.Bpt);
  row "TATP" tatp;
  t

(* ------------------------------------------------------------------ *)
(* Figure 7 — cache-size sweep                                          *)
(* ------------------------------------------------------------------ *)

let cache_pcts = [ 0.01; 0.05; 0.10; 0.20 ]

let fig7 sc =
  let t =
    Report.create ~title:"Figure 7: throughput (KOPS) vs cache size (% of used NVM)"
      ~header:[ "Benchmark"; "1%"; "5%"; "10%"; "20%" ]
      ()
  in
  let ds kind =
    Report.add_row t
      (Runner.ds_name kind
      :: List.map
           (fun pct ->
             Report.kops
               (Runner.run_asym ~cache_pct:pct ~rig:(rig ()) ~cfg:(Client.rcb ())
                  ~kind ~preload:sc.preload ~ops:sc.ops ())
                 .Runner.kops)
           cache_pcts)
  in
  List.iter ds [ Runner.Bpt; Runner.Bst; Runner.Skip_list; Runner.Mv_bpt; Runner.Mv_bst ];
  Report.add_row t
    ("TATP"
    :: List.map
         (fun pct -> Report.kops (run_tatp_asym ~cache_pct:pct ~cfg:(Client.rcb ()) ~sc ()))
         cache_pcts);
  Report.add_row t
    ("HashTable"
    :: List.map
         (fun pct ->
           Report.kops
             (Runner.run_asym ~cache_pct:pct ~rig:(rig ()) ~cfg:(Client.rc ())
                ~kind:Runner.Hash_table ~preload:sc.preload ~ops:sc.ops ())
               .Runner.kops)
         cache_pcts);
  Report.add_row t
    ("SmallBank"
    :: List.map
         (fun pct -> Report.kops (run_bank_asym ~cache_pct:pct ~cfg:(Client.rc ()) ~sc ()))
         cache_pcts);
  t

(* ------------------------------------------------------------------ *)
(* Figure 12 — skewed workloads                                         *)
(* ------------------------------------------------------------------ *)

let fig12 sc =
  let dists =
    [
      ("Uniform", Asym_workload.Ycsb.Uniform);
      ("Zipf .5", Asym_workload.Ycsb.Zipfian 0.5);
      ("Zipf .9", Asym_workload.Ycsb.Zipfian 0.9);
      ("Zipf .99", Asym_workload.Ycsb.Zipfian 0.99);
    ]
  in
  let t =
    Report.create ~title:"Figure 12: throughput (KOPS) under skewed workloads (50% put / 50% get)"
      ~header:("Benchmark" :: List.map fst dists)
      ()
  in
  let ds kind =
    Report.add_row t
      (Runner.ds_name kind
      :: List.map
           (fun (_, dist) ->
             Report.kops
               (Runner.run_asym ~dist ~put_ratio:0.5 ~rig:(rig ()) ~cfg:(Client.rcb ())
                  ~kind ~preload:sc.preload ~ops:sc.ops ())
                 .Runner.kops)
           dists)
  in
  List.iter ds [ Runner.Bpt; Runner.Bst; Runner.Skip_list; Runner.Mv_bpt; Runner.Mv_bst; Runner.Hash_table ];
  Report.add_row t
    ("SmallBank"
    :: List.map
         (fun (_, dist) ->
           let rng = Asym_util.Rng.create ~seed:21L in
           let cust_gen =
             match dist with
             | Asym_workload.Ycsb.Uniform -> None
             | Asym_workload.Ycsb.Zipfian theta ->
                 let z = Asym_util.Zipf.create ~theta ~n:sc.accounts rng in
                 Some (fun () -> Int64.of_int (Asym_util.Zipf.next_scrambled z))
           in
           Report.kops (run_bank_asym ?cust_gen ~cfg:(Client.rc ()) ~sc ()))
         dists);
  t

(* ------------------------------------------------------------------ *)
(* Figure 13 — industry-trace workload mixes                            *)
(* ------------------------------------------------------------------ *)

let fig13 sc =
  let kv_mixes = [ ("100%put", 1.0); ("50/50", 0.5); ("75%put", 0.75); ("10%put", 0.1); ("100%get", 0.0) ] in
  let fifo_mixes = [ ("100%push", 1.0); ("50/50", 0.5); ("100%pop", 0.0) ] in
  let t =
    Report.create
      ~title:"Figure 13: throughput (KOPS) on the industry trace (power-law keys, 64B-8KB values)"
      ~header:[ "Benchmark"; "Mix"; "Naive"; "R"; "RC" ]
      ~notes:[ "queue/stack configs: Naive / R / R+B (batch+cache combine for FIFO structures)" ]
      ()
  in
  let run kind cfg ratio =
    (Runner.run_asym_trace ~rig:(rig ()) ~cfg ~kind
       ~preload:(if Runner.is_fifo kind then max sc.preload sc.ops else sc.preload)
       ~ops:sc.ops ~put_ratio:ratio ())
      .Runner.kops
  in
  let kv kind =
    List.iter
      (fun (label, ratio) ->
        Report.add_row t
          [
            Runner.ds_name kind;
            label;
            Report.kops (run kind (Client.naive ()) ratio);
            Report.kops (run kind (Client.r ()) ratio);
            Report.kops (run kind (Client.rc ()) ratio);
          ])
      kv_mixes
  in
  let fifo kind =
    List.iter
      (fun (label, ratio) ->
        Report.add_row t
          [
            Runner.ds_name kind;
            label;
            Report.kops (run kind (Client.naive ()) ratio);
            Report.kops (run kind (Client.r ()) ratio);
            Report.kops
              (run kind { (Client.rcb ()) with Client.oplog_signaled = false } ratio);
          ])
      fifo_mixes
  in
  List.iter kv [ Runner.Bst; Runner.Mv_bst; Runner.Bpt; Runner.Mv_bpt; Runner.Skip_list; Runner.Hash_table ];
  List.iter fifo [ Runner.Queue; Runner.Stack ];
  t

(* ------------------------------------------------------------------ *)
(* Operation latency (extension beyond the paper)                       *)
(* ------------------------------------------------------------------ *)

(* The paper reports throughput only; the simulation also exposes per-
   operation virtual latency, which shows where each configuration's
   time goes (network round trips vs cache hits vs batched flushes). *)
let latency sc =
  let t =
    Report.create ~title:"Per-operation latency (us, virtual), 100% write (extension)"
      ~header:[ "Benchmark"; "Config"; "Mean"; "p50"; "p99" ]
      ~notes:[ "p99 spikes under RCB are the batched rnvm_tx_write flushes" ]
      ()
  in
  List.iter
    (fun kind ->
      List.iter
        (fun cfg ->
          let r =
            Runner.run_asym ~rig:(rig ()) ~cfg ~kind ~preload:sc.preload ~ops:sc.ops ()
          in
          Report.add_row t
            [
              Runner.ds_name kind;
              Client.config_name cfg;
              Printf.sprintf "%.2f" r.Runner.lat_mean_us;
              Printf.sprintf "%.2f" r.Runner.lat_p50_us;
              Printf.sprintf "%.2f" r.Runner.lat_p99_us;
            ])
        [ Client.naive (); Client.r (); Client.rc (); Client.rcb () ])
    [ Runner.Hash_table; Runner.Bpt; Runner.Queue ];
  t

(* ------------------------------------------------------------------ *)
(* YCSB core workloads (extension beyond the paper)                     *)
(* ------------------------------------------------------------------ *)

let ycsb sc =
  let t =
    Report.create ~title:"YCSB core workloads A/B/C/D/F (KOPS, AsymNVM-RC) (extension)"
      ~header:[ "Benchmark"; "A 50/50 zipf"; "B 5/95 zipf"; "C read zipf"; "D 5/95 unif"; "F 50/50 zipf" ]
      ()
  in
  let cell kind preset =
    let dist, put_ratio =
      match preset with
      | Asym_workload.Ycsb.A | Asym_workload.Ycsb.F -> (Asym_workload.Ycsb.Zipfian 0.99, 0.5)
      | Asym_workload.Ycsb.B -> (Asym_workload.Ycsb.Zipfian 0.99, 0.05)
      | Asym_workload.Ycsb.C -> (Asym_workload.Ycsb.Zipfian 0.99, 0.0)
      | Asym_workload.Ycsb.D -> (Asym_workload.Ycsb.Uniform, 0.05)
    in
    (Runner.run_asym ~dist ~put_ratio ~rig:(rig ()) ~cfg:(Client.rc ()) ~kind
       ~preload:sc.preload ~ops:sc.ops ())
      .Runner.kops
  in
  List.iter
    (fun kind ->
      Report.add_row t
        (Runner.ds_name kind
        :: List.map
             (fun p -> Report.kops (cell kind p))
             Asym_workload.Ycsb.[ A; B; C; D; F ]))
    [ Runner.Hash_table; Runner.Bpt; Runner.Skip_list ];
  t

(* ------------------------------------------------------------------ *)
(* Sensitivity analysis (extension beyond the paper)                    *)
(* ------------------------------------------------------------------ *)

(* The paper frames the whole design around the RDMA-RTT-to-NVM-latency
   gap (Â§3.2). Sweep both and watch how naive direct access and the full
   optimization stack respond. *)
let sensitivity sc =
  let t =
    Report.create
      ~title:"Sensitivity: BPT throughput (KOPS) vs hardware latency (extension)"
      ~header:[ "Hardware"; "Naive"; "RCB"; "RCB/Naive" ]
      ~notes:
        [
          "RCB holds a ~2.6-2.8x advantage across the whole RTT range (both configurations \
           keep some per-operation round trips) and widens it as the NVM media slows, \
           because cached reads skip the media entirely";
        ]
      ()
  in
  let cell lat' label =
    let run cfg =
      (Runner.run_asym ~rig:(Runner.make_rig lat') ~cfg ~kind:Runner.Bpt ~preload:sc.preload
         ~ops:sc.ops ())
        .Runner.kops
    in
    let naive = run (Client.naive ()) in
    let rcb = run (Client.rcb ()) in
    Report.add_row t
      [ label; Report.kops naive; Report.kops rcb; Report.ratio (rcb /. naive) ]
  in
  List.iter
    (fun rtt_us ->
      cell
        { lat with Latency.rdma_rtt_ns = rtt_us * 1000; rdma_atomic_ns = (rtt_us * 1000) + 100 }
        (Printf.sprintf "RDMA RTT %d us" rtt_us))
    [ 1; 2; 3; 5; 10 ];
  List.iter
    (fun (r, w) ->
      cell
        { lat with Latency.nvm_read_ns = r; nvm_write_ns = w }
        (Printf.sprintf "NVM %d/%d ns" r w))
    [ (100, 50); (300, 100); (600, 200); (1200, 400) ];
  t

(* ------------------------------------------------------------------ *)
(* §4.4 — cache replacement policy study                                *)
(* ------------------------------------------------------------------ *)

let cache_policy sc =
  let t =
    Report.create ~title:"Cache policy study (§4.4): Zipf(.99) reads, choose-set 32"
      ~header:[ "Policy"; "Miss ratio"; "Throughput (KOPS)" ]
      ~notes:[ "paper: RR 62.7% miss, Hybrid 29.2%, Hybrid ~ LRU miss with ~27.5% higher tput" ]
      ()
  in
  List.iter
    (fun policy ->
      (* 64-byte pages: key/value items are the caching granularity for
         the hash table (§8.2). *)
      let cfg = { (Client.rc ()) with Client.cache_policy = policy; Client.page_size = 64 } in
      let res =
        Runner.run_asym ~dist:(Asym_workload.Ycsb.Zipfian 0.99) ~put_ratio:0.0
          ~cache_pct:0.02 ~rig:(rig ()) ~cfg ~kind:Runner.Hash_table ~preload:sc.preload
          ~ops:(2 * sc.ops) ()
      in
      let total = res.Runner.cache_hits + res.Runner.cache_misses in
      let miss = if total = 0 then 0.0 else float_of_int res.Runner.cache_misses /. float_of_int total in
      Report.add_row t
        [ Cache.policy_name policy; Report.pct miss; Report.kops res.Runner.kops ])
    [ Cache.Rr; Cache.Lru; Cache.Hybrid ];
  t

(* ------------------------------------------------------------------ *)
(* Ablations of DESIGN.md design choices                                *)
(* ------------------------------------------------------------------ *)

let ablation sc =
  let t =
    Report.create ~title:"Ablations: individual design choices"
      ~header:[ "Ablation"; "Off (KOPS)"; "On (KOPS)"; "Speedup" ]
      ~notes:
        [
          "level caching shows parity here: with choose-set eviction the hot upper levels \
           survive cold-page traffic, and caching a cold page costs no extra virtual time - \
           the paper's 38% native-LRU penalty comes from eviction/bookkeeping costs this \
           model deliberately keeps small (see EXPERIMENTS.md)";
        ]
      ()
  in
  (* 1. §8.1 annulment: pop-after-push served from the write overlay. *)
  let annulment batch =
    let r = rig () in
    let cfg = { (Client.rcb ~batch_size:batch ()) with Client.oplog_signaled = false } in
    let c = Runner.fresh_client ~name:"st" r cfg in
    let inst = Runner.client_instance Runner.Stack c ~name:"st" in
    let clock = Client.clock c in
    let kops, _ =
      Runner.measure ~clock ~ops:sc.ops (fun i ->
          if i land 1 = 0 then inst.Runner.push (Runner.value_of (Int64.of_int i))
          else ignore (inst.Runner.pop ()))
    in
    kops
  in
  let off = annulment 1 and on_ = annulment 256 in
  Report.add_row t
    [ "stack push/pop annulment (batching)"; Report.kops off; Report.kops on_; Report.ratio (on_ /. off) ];
  (* 2. §4.3 op-log pointer on the wire. *)
  let wire opt =
    let cfg = { (Client.rcb ()) with Client.pointer_wire_opt = opt } in
    (Runner.run_asym ~rig:(rig ()) ~cfg ~kind:Runner.Bpt ~preload:sc.preload ~ops:sc.ops ())
      .Runner.kops
  in
  let woff = wire false and won = wire true in
  Report.add_row t
    [ "op-log pointer wire optimization"; Report.kops woff; Report.kops won; Report.ratio (won /. woff) ];
  (* 3. §8.3 level-based caching vs caching every node ("native LRU").
     Measured on the BST — deep enough that a small cache cannot hold the
     lower levels, so pulling every node through it evicts the hot upper
     levels. *)
  let levels all =
    let r = rig () in
    let pre = Runner.fresh_client ~name:"pre" r (Client.rcb ~batch_size:256 ()) in
    (* A deep tree and a cache that holds the upper levels but not the
       leaves: that is where the level hint pays. *)
    Runner.preload_instance
      (Runner.client_instance Runner.Bst pre ~name:"bst")
      ~fifo:false ~n:(sc.preload * 4) ~value_size:64;
    let cfg = Runner.with_cache_pct r (Client.rcb ()) 0.03 in
    let c = Runner.fresh_client ~name:"bst" r cfg in
    let module P = Runner.Bc in
    let b = P.attach ~cache_all_levels:all c ~name:"bst" in
    let rng = Asym_util.Rng.create ~seed:31L in
    (* Warm, then measure. *)
    for _ = 1 to sc.ops / 2 do
      let k = Int64.of_int (Asym_util.Rng.int rng (sc.preload * 16)) in
      ignore (P.find b ~key:k)
    done;
    let kops, _ =
      Runner.measure ~clock:(Client.clock c) ~ops:sc.ops (fun _ ->
          let k = Int64.of_int (Asym_util.Rng.int rng (sc.preload * 16)) in
          P.put b ~key:k ~value:(Runner.value_of k))
    in
    kops
  in
  let loff = levels true and lon = levels false in
  Report.add_row t
    [ "adaptive level caching (vs cache-all)"; Report.kops loff; Report.kops lon; Report.ratio (lon /. loff) ];
  (* 4. §4.2 transaction coalescing: R vs naive per-store writes, on the
     write-dominated queue where the effect is purest. *)
  let n = (Runner.run_asym ~rig:(rig ()) ~cfg:(Client.naive ()) ~kind:Runner.Queue ~preload:sc.preload ~ops:sc.ops ()).Runner.kops in
  let rr = (Runner.run_asym ~rig:(rig ()) ~cfg:(Client.r ()) ~kind:Runner.Queue ~preload:sc.preload ~ops:sc.ops ()).Runner.kops in
  Report.add_row t
    [ "memory-log tx coalescing (Queue: naive vs R)"; Report.kops n; Report.kops rr; Report.ratio (rr /. n) ];
  t
