open Asym_core
open Asym_structs

type instance = {
  apply : Model.op -> unit;
  register : Registry.t -> unit;
  dump : unit -> (int64 * bytes) list;
}

type t = {
  name : string;
  kind : [ `Map | `Seq ];
  model0 : Model.t;
  multi_writer : bool;
  attach : ?shared:bool -> ?name:string -> Client.t -> instance;
}

module Bst = Pbst.Make (Client)
module Bpt = Pbptree.Make (Client)
module Hash = Phash.Make (Client)
module Skip = Pskiplist.Make (Client)
module Mv = Pmvbst.Make (Client)
module Mvb = Pmvbptree.Make (Client)
module Stack = Pstack.Make (Client)
module Queue = Pqueue.Make (Client)

let opts ~shared = if shared then Ds_intf.shared_options else Ds_intf.default_options

let by_key l = List.sort (fun (a, _) (b, _) -> Int64.compare a b) l
let indexed l = List.mapi (fun i v -> (Int64.of_int i, v)) l

let map_apply ~name ~put ~delete = function
  | Model.Put (k, v) -> put k v
  | Model.Delete k -> delete k
  | op -> Fmt.invalid_arg "%s: sequence op %a on a map structure" name Model.pp_op op

let seq_apply ~name ~push ~pop = function
  | Model.Push v -> push v
  | Model.Pop -> pop ()
  | op -> Fmt.invalid_arg "%s: map op %a on a sequence structure" name Model.pp_op op

let map_subject name attach =
  { name; kind = `Map; model0 = Model.empty_map; multi_writer = true; attach }

let pbst =
  map_subject "pbst" (fun ?(shared = false) ?(name = "chk") fe ->
      let t = Bst.attach ~opts:(opts ~shared) fe ~name in
      {
        apply =
          map_apply ~name:"pbst"
            ~put:(fun key value -> Bst.put t ~key ~value)
            ~delete:(fun key -> ignore (Bst.delete t ~key));
        register = (fun reg -> Registry.register reg ~ds:(Bst.handle t).Types.id (Bst.replay t));
        dump = (fun () -> by_key (Bst.to_list t));
      })

let pbptree =
  map_subject "pbptree" (fun ?(shared = false) ?(name = "chk") fe ->
      let t = Bpt.attach ~opts:(opts ~shared) fe ~name in
      {
        apply =
          map_apply ~name:"pbptree"
            ~put:(fun key value -> Bpt.put t ~key ~value)
            ~delete:(fun key -> ignore (Bpt.delete t ~key));
        register = (fun reg -> Registry.register reg ~ds:(Bpt.handle t).Types.id (Bpt.replay t));
        dump = (fun () -> by_key (Bpt.to_list t));
      })

let phash =
  map_subject "phash" (fun ?(shared = false) ?(name = "chk") fe ->
      let t = Hash.attach ~opts:(opts ~shared) ~nbuckets:64 fe ~name in
      {
        apply =
          map_apply ~name:"phash"
            ~put:(fun key value -> Hash.put t ~key ~value)
            ~delete:(fun key -> ignore (Hash.delete t ~key));
        register =
          (fun reg -> Registry.register reg ~ds:(Hash.handle t).Types.id (Hash.replay t));
        dump =
          (fun () ->
            let acc = ref [] in
            Hash.iter t (fun k v -> acc := (k, v) :: !acc);
            by_key !acc);
      })

let pskiplist =
  map_subject "pskiplist" (fun ?(shared = false) ?(name = "chk") fe ->
      (* Explicit generator: re-runs of one schedule must draw the same
         tower heights for the census and every replay to agree. *)
      let rng = Asym_util.Rng.create ~seed:77L in
      let t = Skip.attach ~opts:(opts ~shared) ~rng fe ~name in
      {
        apply =
          map_apply ~name:"pskiplist"
            ~put:(fun key value -> Skip.put t ~key ~value)
            ~delete:(fun key -> ignore (Skip.delete t ~key));
        register =
          (fun reg -> Registry.register reg ~ds:(Skip.handle t).Types.id (Skip.replay t));
        dump = (fun () -> by_key (Skip.to_list t));
      })

let pmvbst =
  {
    name = "pmvbst";
    kind = `Map;
    model0 = Model.empty_map;
    multi_writer = false;
    attach =
      (fun ?(shared = false) ?(name = "chk") fe ->
        let t = Mv.attach ~opts:(opts ~shared) fe ~name in
        {
          apply =
            map_apply ~name:"pmvbst"
              ~put:(fun key value -> Mv.put t ~key ~value)
              ~delete:(fun key -> ignore (Mv.delete t ~key));
          register = (fun reg -> Registry.register reg ~ds:(Mv.handle t).Types.id (Mv.replay t));
          dump = (fun () -> by_key (Mv.to_list t));
        });
  }

let pmvbptree =
  {
    name = "pmvbptree";
    kind = `Map;
    model0 = Model.empty_map;
    multi_writer = false;
    attach =
      (fun ?(shared = false) ?(name = "chk") fe ->
        let t = Mvb.attach ~opts:(opts ~shared) fe ~name in
        {
          apply =
            map_apply ~name:"pmvbptree"
              ~put:(fun key value -> Mvb.put t ~key ~value)
              ~delete:(fun key -> ignore (Mvb.delete t ~key));
          register =
            (fun reg -> Registry.register reg ~ds:(Mvb.handle t).Types.id (Mvb.replay t));
          dump = (fun () -> by_key (Mvb.to_list t));
        });
  }

let pstack =
  {
    name = "pstack";
    kind = `Seq;
    model0 = Model.empty_lifo;
    multi_writer = true;
    attach =
      (fun ?(shared = false) ?(name = "chk") fe ->
        let t = Stack.attach ~opts:(opts ~shared) fe ~name in
        {
          apply =
            seq_apply ~name:"pstack"
              ~push:(fun v -> Stack.push t v)
              ~pop:(fun () -> ignore (Stack.pop t));
          register =
            (fun reg -> Registry.register reg ~ds:(Stack.handle t).Types.id (Stack.replay t));
          dump = (fun () -> indexed (Stack.to_list t));
        });
  }

let pqueue =
  {
    name = "pqueue";
    kind = `Seq;
    model0 = Model.empty_fifo;
    multi_writer = true;
    attach =
      (fun ?(shared = false) ?(name = "chk") fe ->
        let t = Queue.attach ~opts:(opts ~shared) fe ~name in
        {
          apply =
            seq_apply ~name:"pqueue"
              ~push:(fun v -> Queue.enqueue t v)
              ~pop:(fun () -> ignore (Queue.dequeue t));
          register =
            (fun reg -> Registry.register reg ~ds:(Queue.handle t).Types.id (Queue.replay t));
          dump = (fun () -> indexed (Queue.to_list t));
        });
  }

let all = [ pstack; pqueue; phash; pbst; pbptree; pskiplist; pmvbst; pmvbptree ]
let names = List.map (fun s -> s.name) all
let find name = List.find_opt (fun s -> s.name = name) all
