(** Seeded random-schedule fuzzer.

    Where {!Explorer} enumerates every crash point of one deterministic
    schedule, the fuzzer explores the cluster-level state space: several
    front-end clients — each owning its own instance of the subject
    structure on one shared back-end — interleave random operations with
    client crashes (+ recovery and op replay), transient back-end
    restarts, mirror crashes, and keepAlive-driven mirror promotion
    (§7.2 Case 4) via {!Asym_cluster.Failover}.

    Each client's instance is validated against its own reference model,
    so any divergence — lost op, duplicated replay, stale cache, botched
    promotion — shows up as a dump/model mismatch. Schedules are fully
    determined by [seed]: a failing run's command line is its
    reproducer. *)

type outcome = {
  structure : string;
  clients : int;
  steps : int;
  seed : int64;
  ops_applied : int;
  validations : int;  (** model/dump comparisons performed (incl. final) *)
  client_crashes : int;
  backend_restarts : int;
  mirror_crashes : int;
  promotions : int;
  fault_drop : float;  (** per-verb drop rate the run was fuzzed under *)
  grey_periods : int;  (** grey windows armed by fault-schedule steps *)
  verb_timeouts : int;  (** verbs lost to injection (current connections) *)
  fault_retries : int;  (** retried verbs, summed over clients *)
  reconnects : int;  (** degraded-reconnect cycles, summed over clients *)
  failures : string list;
}

val run : ?clients:int -> ?drop:float -> Subject.t -> steps:int -> seed:int64 -> outcome
(** [clients] defaults to 2. Each client owns an independently named
    instance of the subject, so every structure — including the
    single-writer multi-version ones — fuzzes under multi-client load.

    [drop] (default 0) turns on the {!Asym_rdma.Verbs.Fault} transient
    fault model: every verb is lost with probability [drop] (plus
    injected delays, plus randomly armed grey periods of heavy loss
    shorter than the keepAlive lease). The schedule is a pure function
    of [seed] and draws nothing from the RNG when [drop] is 0, so
    faults-off runs replay historical schedules unchanged. Any
    dump/model divergence or spurious failover under loss is a bug in
    the retry layer, not an accepted outcome. *)

val pp_outcome : Format.formatter -> outcome -> unit
