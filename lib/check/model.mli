(** Pure in-OCaml reference models for the persistent structures.

    The checker validates a recovered persistent structure against one of
    these models: assoc-map semantics for the key/value structures
    (pbst, pbptree, phash, pskiplist, pmvbst, pmvbptree) and sequence
    semantics for pstack (LIFO) and pqueue (FIFO). Models are immutable so
    the explorer can keep the model after every prefix of a schedule and
    compare a post-crash state against "k ops completed" and "k ops plus
    the in-flight one" simultaneously. *)

type op =
  | Put of int64 * bytes
  | Delete of int64
  | Push of bytes
  | Pop

val pp_op : Format.formatter -> op -> unit

type t
(** An immutable model state. *)

val empty_map : t
val empty_lifo : t
val empty_fifo : t

val kind : t -> [ `Map | `Seq ]

val apply : t -> op -> t
(** Raises [Invalid_argument] on an op of the wrong kind (map op on a
    sequence or vice versa). *)

val dump : t -> (int64 * bytes) list
(** Canonical observable state: maps as key-sorted bindings, sequences as
    [(position, element)] with position 0 the top (LIFO) / head (FIFO). *)

val random_op : Asym_util.Rng.t -> kind:[ `Map | `Seq ] -> i:int -> op
(** Deterministic i-th schedule op from an explicit generator: for maps a
    put (3/4, value tagged with [i]) or delete over a small hot key range;
    for sequences a push (7/10) or pop. Values are >= 12 bytes with a
    non-zero tail so torn-write injection corrupts real payload bytes. *)

val generate : kind:[ `Map | `Seq ] -> ops:int -> seed:int64 -> op list
