(** Exhaustive crash-point sweep (census / replay / validate).

    One sweep of a structure works in three phases:

    + {e Census}: run the deterministic schedule once with the
      {!Asym_nvm.Crashpoint} hook counting, recording every NVM-mutating
      boundary a front-end initiates (operation-log appends, transaction
      flushes, deferred root CASes, wrap markers, ...).
    + {e Replay}: re-run the schedule once per boundary with the hook
      armed. The injected {!Asym_nvm.Crashpoint.Crash_injected} leaves the
      world exactly as a front-end crash would: the boundary's write is on
      the media, its ack was never observed. Each tearable boundary is
      additionally re-run with {!Asym_nvm.Device.tear_last_write} clipping
      the write's tail (atomic verbs are never torn — RDMA atomics cannot
      tear). Then [Client.crash], [Client.recover], structure re-attach,
      op replay through {!Asym_structs.Registry}, and a flush.
    + {e Validate}: the recovered dump must equal the reference model
      after the [k] completed operations, or after [k + 1] (the in-flight
      operation is atomic: fully applied iff its operation-log record
      survived). A probe operation then proves the structure still accepts
      writes.

    Failures carry a one-line reproducer for [asymnvm check]. *)

type failure = {
  point : int;  (** 1-based crash-point index into the census *)
  site : string;  (** census site label of the boundary *)
  torn : int option;  (** bytes kept by the tear injection, if torn *)
  completed : int;  (** schedule ops completed before the crash *)
  detail : string;
}

type outcome = {
  structure : string;
  ops : int;
  seed : int64;
  drop : float;  (** per-verb drop rate the sweep ran under (0 = none) *)
  boundaries : int;  (** census size *)
  sites : (string * int) list;  (** census histogram *)
  points_run : int;  (** replay runs executed (clean + torn variants) *)
  failures : failure list;
}

val sweep :
  ?stride:int -> ?tear:bool -> ?drop:float -> Subject.t -> ops:int -> seed:int64 -> outcome
(** [stride] samples every [stride]-th crash point (default 1 =
    exhaustive); [tear] (default true) adds the torn variant of each
    tearable point. [drop] (default 0) runs the whole sweep under the
    {!Asym_rdma.Verbs.Fault} transient-loss model — the loss schedule is
    seeded from [seed], so the census and every armed replay lose the
    same verbs and the boundary numbering stays aligned. Crashes then
    land on retried verbs too, compounding transient faults with
    permanent ones. *)

val run_point :
  ?drop:float -> Subject.t -> ops:int -> seed:int64 -> point:int -> tear:bool -> failure option
(** Re-run a single crash point (the reproducer entry point). *)

val reproducer : outcome -> failure -> string
(** Shell command that replays exactly this failing schedule. *)

val pp_outcome : Format.formatter -> outcome -> unit
