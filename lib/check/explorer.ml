open Asym_sim
open Asym_core
module Crash = Asym_nvm.Crashpoint
module Device = Asym_nvm.Device

type failure = {
  point : int;
  site : string;
  torn : int option;
  completed : int;
  detail : string;
}

type outcome = {
  structure : string;
  ops : int;
  seed : int64;
  drop : float;
  boundaries : int;
  sites : (string * int) list;
  points_run : int;
  failures : failure list;
}

(* Every run gets a fresh world so crash points are independent and the
   boundary numbering matches the census exactly. The fault model (when
   [drop] > 0) is seeded from the schedule seed, and the client's retry
   jitter stream from its (fixed) name — so census and armed runs see the
   same losses at the same verbs and number the same boundaries. *)
let fresh_world ~seed ~drop () =
  let bk =
    Backend.create ~name:"chk-bk" ~max_sessions:4 ~memlog_cap:(512 * 1024)
      ~oplog_cap:(256 * 1024) ~slab_size:4096 ~capacity:(16 * 1024 * 1024) Latency.default
  in
  let fe =
    Client.connect ~name:"chk-fe" (Client.rcb ~batch_size:8 ()) bk
      ~clock:(Clock.create ~name:"chk-fe" ())
  in
  if drop > 0. then
    Asym_rdma.Verbs.set_fault (Client.connection fe)
      (Some (Asym_rdma.Verbs.Fault.make ~drop_p:drop ~seed:(Int64.logxor seed 0xFA17L) ()));
  (bk, fe)

let census (subject : Subject.t) ~seed ~drop opl =
  Crash.reset ();
  Crash.set_census ();
  let _bk, fe = fresh_world ~seed ~drop () in
  let inst = subject.Subject.attach fe in
  List.iter inst.Subject.apply opl;
  Client.flush fe;
  let n = Crash.boundaries () and sites = Crash.site_counts () in
  Crash.reset ();
  (n, sites)

let prefix_models (subject : Subject.t) opl =
  let n = List.length opl in
  let prefixes = Array.make (n + 1) subject.Subject.model0 in
  List.iteri (fun i op -> prefixes.(i + 1) <- Model.apply prefixes.(i) op) opl;
  prefixes

let pp_dump fmt d =
  Fmt.pf fmt "%d entries [%a%s]" (List.length d)
    Fmt.(list ~sep:(any "; ") (fun fmt (k, v) -> pf fmt "%Ld=%S" k (Bytes.to_string v)))
    (List.filteri (fun i _ -> i < 4) d)
    (if List.length d > 4 then "; ..." else "")

(* An atomic verb cannot tear: the NIC applies RDMA CAS/fetch-add as one
   8-byte unit. Everything else (signaled and unsignaled writes) can. *)
let tearable site = String.length site >= 10 && String.sub site 0 10 = "rdma.write"

(* Replay the schedule with a crash armed at [point]; recover; validate.
   Returns [Ok ()], a failure, or [`Skip] when the tear variant was
   requested for a non-tearable (atomic) boundary. *)
let run_armed (subject : Subject.t) ~opl ~prefixes ~seed ~drop ~point ~tear =
  Crash.reset ();
  Crash.arm point;
  let bk, fe = fresh_world ~seed ~drop () in
  let completed = ref 0 in
  let crashed =
    try
      let inst = subject.Subject.attach fe in
      List.iter
        (fun op ->
          inst.Subject.apply op;
          incr completed)
        opl;
      Client.flush fe;
      false
    with Crash.Crash_injected _ -> true
  in
  let fired = Crash.fired () in
  Crash.reset ();
  if not crashed then
    (* The armed point lies past this schedule's boundary count — only
       possible when the caller overshoots; nothing to validate. *)
    `Skip
  else begin
    let site = match fired with Some (_, s) -> s | None -> "?" in
    let torn =
      if not tear then None
      else if not (tearable site) then None
      else
        match Device.last_write_len (Backend.device bk) with
        | None -> None
        | Some len ->
            (* Clip the CRC plus a few payload bytes: parses structurally,
               fails the checksum — the §4.2 torn-write shape. *)
            Some (max 0 (len - 7))
    in
    if tear && torn = None then `Skip
    else begin
      (match torn with Some keep -> Device.tear_last_write (Backend.device bk) ~keep | None -> ());
      let fail detail = `Fail { point; site; torn; completed = !completed; detail } in
      match
        Client.crash fe;
        let ops = Client.recover fe in
        let inst = subject.Subject.attach fe in
        let reg = Asym_structs.Registry.create () in
        inst.Subject.register reg;
        Asym_structs.Registry.replay_all reg ops;
        Client.flush fe;
        inst
      with
      | exception e -> fail (Printf.sprintf "recovery raised %s" (Printexc.to_string e))
      | inst -> (
          let dump = inst.Subject.dump () in
          let k = !completed in
          let matched =
            if dump = Model.dump prefixes.(k) then Some prefixes.(k)
            else if k + 1 < Array.length prefixes && dump = Model.dump prefixes.(k + 1) then
              Some prefixes.(k + 1)
            else None
          in
          match matched with
          | None ->
              fail
                (Fmt.str "recovered state matches neither model_%d nor model_%d: got %a, want %a"
                   k
                   (min (k + 1) (Array.length prefixes - 1))
                   pp_dump dump pp_dump
                   (Model.dump prefixes.(k)))
          | Some model -> (
              (* Liveness probe: the recovered structure must still accept
                 and persist a fresh operation. *)
              let probe =
                match subject.Subject.kind with
                | `Map -> Model.Put (999_983L, Bytes.of_string "probe-after-recovery")
                | `Seq -> Model.Push (Bytes.of_string "probe-after-recovery")
              in
              match
                inst.Subject.apply probe;
                Client.flush fe;
                inst.Subject.dump ()
              with
              | exception e ->
                  fail (Printf.sprintf "post-recovery probe raised %s" (Printexc.to_string e))
              | dump' ->
                  if dump' = Model.dump (Model.apply model probe) then `Ok
                  else fail "post-recovery probe not observed"))
    end
  end

let sweep ?(stride = 1) ?(tear = true) ?(drop = 0.) (subject : Subject.t) ~ops ~seed =
  if stride < 1 then invalid_arg "Explorer.sweep: stride must be >= 1";
  if drop < 0. || drop >= 1. then invalid_arg "Explorer.sweep: drop must be in [0, 1)";
  let opl = Model.generate ~kind:subject.Subject.kind ~ops ~seed in
  let boundaries, sites = census subject ~seed ~drop opl in
  let prefixes = prefix_models subject opl in
  let points_run = ref 0 and failures = ref [] in
  let point = ref 1 in
  while !point <= boundaries do
    List.iter
      (fun tear ->
        match run_armed subject ~opl ~prefixes ~seed ~drop ~point:!point ~tear with
        | `Skip -> ()
        | `Ok -> incr points_run
        | `Fail f ->
            incr points_run;
            failures := f :: !failures)
      (if tear then [ false; true ] else [ false ]);
    point := !point + stride
  done;
  {
    structure = subject.Subject.name;
    ops;
    seed;
    drop;
    boundaries;
    sites;
    points_run = !points_run;
    failures = List.rev !failures;
  }

let run_point ?(drop = 0.) (subject : Subject.t) ~ops ~seed ~point ~tear =
  let opl = Model.generate ~kind:subject.Subject.kind ~ops ~seed in
  let prefixes = prefix_models subject opl in
  match run_armed subject ~opl ~prefixes ~seed ~drop ~point ~tear with
  | `Ok | `Skip -> None
  | `Fail f -> Some f

let reproducer (o : outcome) (f : failure) =
  Printf.sprintf "asymnvm check --structure %s --ops %d --seed %Ld --point %d%s%s" o.structure
    o.ops o.seed f.point
    (if f.torn <> None then " --tear-point" else "")
    (if o.drop > 0. then Printf.sprintf " --fault-drop %g" o.drop else "")

let pp_outcome fmt o =
  Fmt.pf fmt "%-10s seed=%Ld ops=%d: %d crash points, %d runs, %d failures" o.structure o.seed
    o.ops o.boundaries o.points_run (List.length o.failures);
  List.iter
    (fun f ->
      Fmt.pf fmt "@.  FAIL point %d (%s%s, %d ops completed): %s@.  REPRODUCE: %s" f.point
        f.site
        (match f.torn with Some k -> Printf.sprintf ", torn keep=%d" k | None -> "")
        f.completed f.detail (reproducer o f))
    o.failures
