(** Uniform checker-facing view of every persistent structure.

    A subject binds one structure functor (instantiated over
    {!Asym_core.Client}) to its reference model: how to attach it, apply a
    {!Model.op}, register its replay handler, and dump its canonical
    observable state in the same shape {!Model.dump} produces. The
    explorer and fuzzer drive structures exclusively through this record,
    which is what makes the sweep "for every registered structure" one
    loop over {!all}. *)

type instance = {
  apply : Model.op -> unit;
  register : Asym_structs.Registry.t -> unit;
      (** Register the replay handler for recovery dispatch. *)
  dump : unit -> (int64 * bytes) list;
      (** Canonical state: maps key-sorted, sequences position-indexed —
          comparable with [Model.dump] by structural equality. *)
}

type t = {
  name : string;
  kind : [ `Map | `Seq ];
  model0 : Model.t;
  multi_writer : bool;
      (** Safe for several locked front-end writers. False for the
          multi-version structures: their deferred root CAS admits a
          single writer per version (§6.2). *)
  attach : ?shared:bool -> ?name:string -> Asym_core.Client.t -> instance;
      (** [shared] selects [Ds_intf.shared_options] (locks + flush on
          unlock), required when several front-ends write the structure.
          [name] (default ["chk"]) is the persistent name — distinct names
          let several clients own independent instances on one back-end. *)
}

val all : t list
(** The eight structures of §8, in a stable order. *)

val names : string list
val find : string -> t option
