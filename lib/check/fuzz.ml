open Asym_sim
open Asym_core
open Asym_cluster

type outcome = {
  structure : string;
  clients : int;
  steps : int;
  seed : int64;
  ops_applied : int;
  validations : int;
  client_crashes : int;
  backend_restarts : int;
  mirror_crashes : int;
  promotions : int;
  fault_drop : float;
  grey_periods : int;
  verb_timeouts : int;
  fault_retries : int;
  reconnects : int;
  failures : string list;
}

let capacity = 16 * 1024 * 1024
let lease = Simtime.ms 50

type world = {
  subject : Subject.t;
  seed : int64;
  steps : int;
  rng : Asym_util.Rng.t;
  ka : Keepalive.t;
  mutable bk : Backend.t;
  mutable generation : int;  (* bumped on every promotion, names the successor *)
  fes : Client.t array;
  insts : Subject.instance array;
  models : Model.t array;
  opnum : int array;  (* per-client op counter, tags generated values *)
  drop : float;
  mutable grey_periods : int;
  mutable failures : string list;
}

let now w = Array.fold_left (fun t fe -> Simtime.max t (Clock.now (Client.clock fe))) Simtime.zero w.fes
let inst_name c = Printf.sprintf "chk%d" c

let fail w ~step ~event detail =
  w.failures <-
    Printf.sprintf "step %d [%s] %s (reproduce: asymnvm check --structure %s --fuzz %d --seed %Ld)"
      step event detail w.subject.Subject.name w.steps w.seed
    :: w.failures

(* Install the transient-fault model on a freshly (re)connected client.
   Seeds derive from the world seed plus the client index, so the loss
   schedule is part of the reproducer and survives reconnects. *)
let install_fault w c =
  if w.drop > 0. then
    Asym_rdma.Verbs.set_fault
      (Client.connection w.fes.(c))
      (Some
         (Asym_rdma.Verbs.Fault.make ~drop_p:w.drop ~delay_p:(w.drop /. 2.) ~delay_ns:3_000
            ~seed:(Int64.add (Int64.logxor w.seed 0xFA17L) (Int64.of_int c))
            ()))

let make_world (subject : Subject.t) ~clients ~steps ~seed ~drop =
  let lat = Latency.default in
  let bk =
    Backend.create ~name:"fuzz-bk" ~max_sessions:(clients + 2) ~memlog_cap:(512 * 1024)
      ~oplog_cap:(256 * 1024) ~slab_size:4096 ~capacity lat
  in
  Backend.attach_mirror bk (Mirror.create ~name:"fuzz-m-nvm" ~kind:Mirror.Nvm_backed ~capacity lat);
  Backend.attach_mirror bk (Mirror.create ~name:"fuzz-m-ssd" ~kind:Mirror.Ssd_backed ~capacity lat);
  let ka = Keepalive.create ~lease (Asym_util.Rng.create ~seed:(Int64.logxor seed 0x5eedL)) in
  let fes =
    Array.init clients (fun c ->
        let name = Printf.sprintf "fuzz-fe%d" c in
        Client.connect ~name (Client.rcb ~batch_size:4 ()) bk ~clock:(Clock.create ~name ()))
  in
  let insts = Array.mapi (fun c fe -> subject.Subject.attach ~name:(inst_name c) fe) fes in
  Keepalive.register ka "backend" ~now:Simtime.zero;
  Array.iteri (fun c _ -> Keepalive.register ka (Printf.sprintf "fe%d" c) ~now:Simtime.zero) fes;
  let w =
    {
      subject;
      seed;
      steps;
      rng = Asym_util.Rng.create ~seed;
      ka;
      bk;
      generation = 0;
      fes;
      insts;
      models = Array.make clients subject.Subject.model0;
      opnum = Array.make clients 0;
      drop;
      grey_periods = 0;
      failures = [];
    }
  in
  Array.iteri (fun c _ -> install_fault w c) fes;
  w

(* Recover client [c] on whatever back-end it currently points at:
   re-sync the session, re-attach the instance, replay uncovered ops. *)
let recover_client w c =
  let fe = w.fes.(c) in
  let ops = Client.recover fe in
  w.insts.(c) <- w.subject.Subject.attach ~name:(inst_name c) fe;
  let reg = Asym_structs.Registry.create () in
  w.insts.(c).Subject.register reg;
  Asym_structs.Registry.replay_all reg ops;
  Client.flush fe

let validate w ~step ~event c =
  let fe = w.fes.(c) in
  Client.flush fe;
  Client.invalidate_cache fe;
  let dump = w.insts.(c).Subject.dump () and want = Model.dump w.models.(c) in
  if dump <> want then
    fail w ~step ~event
      (Printf.sprintf "client %d: dump has %d entries, model has %d after %d ops" c
         (List.length dump) (List.length want) w.opnum.(c))

let step_op w ~step:_ =
  let c = Asym_util.Rng.int w.rng (Array.length w.fes) in
  let op = Model.random_op w.rng ~kind:w.subject.Subject.kind ~i:w.opnum.(c) in
  w.insts.(c).Subject.apply op;
  w.models.(c) <- Model.apply w.models.(c) op;
  w.opnum.(c) <- w.opnum.(c) + 1

(* Verb-granular burst: one operation on every client at once, under the
   co-simulation scheduler, so their RDMA verbs genuinely interleave on
   the shared back-end NIC and memory-log rings. Each client drives its
   own structure, so the per-client reference models stay sequential.
   The operations are drawn from the world RNG before the scheduler
   starts, keeping the step a pure function of the seed. *)
let step_cosim_burst w ~step:_ =
  let ops =
    Array.mapi
      (fun c _ -> Model.random_op w.rng ~kind:w.subject.Subject.kind ~i:w.opnum.(c))
      w.fes
  in
  let burst =
    Array.to_list
      (Array.mapi
         (fun c fe ->
           Sched.client ~clock:(Client.clock fe) ~run:(fun () ->
               w.insts.(c).Subject.apply ops.(c)))
         w.fes)
  in
  Sched.run burst;
  Array.iteri
    (fun c op ->
      w.models.(c) <- Model.apply w.models.(c) op;
      w.opnum.(c) <- w.opnum.(c) + 1)
    ops

let step_client_crash w ~step =
  let c = Asym_util.Rng.int w.rng (Array.length w.fes) in
  Client.crash w.fes.(c);
  (match recover_client w c with
  | () -> ()
  | exception e ->
      fail w ~step ~event:"client-crash" (Printf.sprintf "recovery raised %s" (Printexc.to_string e)));
  validate w ~step ~event:"client-crash" c

let reconnect_all w ~step ~event =
  Array.iteri
    (fun c fe ->
      match
        Client.reconnect_after_backend_restart fe;
        recover_client w c
      with
      | () -> validate w ~step ~event c
      | exception e ->
          fail w ~step ~event (Printf.sprintf "client %d reconnect raised %s" c (Printexc.to_string e)))
    w.fes

let step_backend_restart w ~step =
  Backend.crash w.bk;
  ignore (Backend.restart w.bk);
  reconnect_all w ~step ~event:"backend-restart"

let step_mirror_crash w ~step:_ =
  match List.filter (fun m -> not (Mirror.is_crashed m)) (Backend.mirrors w.bk) with
  | [] -> ()
  | live -> Mirror.crash (List.nth live (Asym_util.Rng.int w.rng (List.length live)))

(* Permanent back-end death: stop renewing its lease, advance every clock
   past it, let the keepAlive majority declare the crash, then elect and
   promote a surviving mirror (§7.2 Case 4). With no live mirror left the
   cluster can only restart the old node in place. *)
let step_promotion w ~step =
  Backend.crash w.bk;
  Array.iter (fun fe -> Clock.advance (Client.clock fe) (Simtime.ms 200)) w.fes;
  let t = now w in
  if Keepalive.alive w.ka "backend" ~now:t then
    fail w ~step ~event:"promotion" "keepAlive majority still holds a lapsed back-end lease";
  match Failover.elect (Backend.mirrors w.bk) with
  | None ->
      ignore (Backend.restart w.bk);
      Keepalive.renew w.ka "backend" ~now:t;
      reconnect_all w ~step ~event:"promotion-restart";
      `Restarted
  | Some m ->
      w.generation <- w.generation + 1;
      let bk' =
        Failover.promote ~name:(Printf.sprintf "fuzz-bk%d" w.generation) m (Backend.latency w.bk)
      in
      (* Surviving mirrors follow the successor. An adopted NVM mirror IS
         the successor now; an SSD promotion source keeps mirroring (its
         image equals the copied one). *)
      List.iter
        (fun m' ->
          if
            (not (Mirror.is_crashed m'))
            && not (m' == m && Mirror.kind m = Mirror.Nvm_backed)
          then Backend.attach_mirror bk' m')
        (Backend.mirrors w.bk);
      w.bk <- bk';
      Keepalive.renew w.ka "backend" ~now:t;
      Array.iteri
        (fun c fe ->
          match
            Client.switch_backend fe bk';
            (* switch_backend opens a fresh connection — re-arm its
               loss schedule so faults survive the failover. *)
            install_fault w c;
            recover_client w c
          with
          | () -> validate w ~step ~event:"promotion" c
          | exception e ->
              fail w ~step ~event:"promotion"
                (Printf.sprintf "client %d switch raised %s" c (Printexc.to_string e)))
        w.fes;
      `Promoted

(* Arm a grey period — a window of heavy loss — on one client's
   connection, starting now. The window is shorter than the keepAlive
   lease, so a correct stack rides it out with retries; a spurious
   failover or a dump/model divergence under grey loss is a bug. *)
let step_grey w ~step:_ =
  let c = Asym_util.Rng.int w.rng (Array.length w.fes) in
  let dur = Simtime.us (50 + Asym_util.Rng.int w.rng 450) in
  let from_ = Clock.now (Client.clock w.fes.(c)) in
  Asym_rdma.Verbs.arm_grey (Client.connection w.fes.(c)) ~from_ ~until:(from_ + dur);
  w.grey_periods <- w.grey_periods + 1

let run ?(clients = 2) ?(drop = 0.) (subject : Subject.t) ~steps ~seed:sd =
  if clients < 1 then invalid_arg "Fuzz.run: clients must be >= 1";
  if drop < 0. || drop >= 1. then invalid_arg "Fuzz.run: drop must be in [0, 1)";
  let w = make_world subject ~clients ~steps ~seed:sd ~drop in
  let ops_applied = ref 0
  and validations = ref 0
  and client_crashes = ref 0
  and backend_restarts = ref 0
  and mirror_crashes = ref 0
  and promotions = ref 0 in
  for step = 1 to steps do
    (* Fault-schedule steps draw from the RNG only when faults are on,
       so a faults-off run replays exactly the historical schedule. *)
    if drop > 0. && Asym_util.Rng.int w.rng 100 < 10 then step_grey w ~step;
    (match Asym_util.Rng.int w.rng 100 with
    | r when r < 62 ->
        step_op w ~step;
        incr ops_applied
    | r when r < 70 ->
        step_cosim_burst w ~step;
        ops_applied := !ops_applied + Array.length w.fes
    | r when r < 80 ->
        validate w ~step ~event:"validate" (Asym_util.Rng.int w.rng clients);
        incr validations
    | r when r < 88 ->
        step_client_crash w ~step;
        incr client_crashes
    | r when r < 94 ->
        step_backend_restart w ~step;
        incr backend_restarts
    | r when r < 97 ->
        step_mirror_crash w ~step;
        incr mirror_crashes
    | _ -> (
        match step_promotion w ~step with
        | `Promoted -> incr promotions
        | `Restarted -> incr backend_restarts));
    (* Heartbeats: everyone still standing renews before the next step. *)
    let t = now w in
    Keepalive.renew w.ka "backend" ~now:t;
    Array.iteri (fun c _ -> Keepalive.renew w.ka (Printf.sprintf "fe%d" c) ~now:t) w.fes
  done;
  for c = 0 to clients - 1 do
    validate w ~step:steps ~event:"final" c;
    incr validations
  done;
  let sum f = Array.fold_left (fun n fe -> n + f fe) 0 w.fes in
  {
    structure = subject.Subject.name;
    clients;
    steps;
    seed = sd;
    ops_applied = !ops_applied;
    validations = !validations;
    client_crashes = !client_crashes;
    backend_restarts = !backend_restarts;
    mirror_crashes = !mirror_crashes;
    promotions = !promotions;
    fault_drop = drop;
    grey_periods = w.grey_periods;
    verb_timeouts = sum (fun fe -> Asym_rdma.Verbs.verb_timeouts (Client.connection fe));
    fault_retries = sum Client.fault_retries;
    reconnects = sum Client.reconnects;
    failures = List.rev w.failures;
  }

let pp_outcome fmt o =
  Fmt.pf fmt
    "%-10s fuzz seed=%Ld steps=%d clients=%d: %d ops, %d validations, %d client crashes, %d \
     backend restarts, %d mirror crashes, %d promotions, %d failures"
    o.structure o.seed o.steps o.clients o.ops_applied o.validations o.client_crashes
    o.backend_restarts o.mirror_crashes o.promotions (List.length o.failures);
  if o.fault_drop > 0. then
    Fmt.pf fmt "@.  faults: drop=%.3f, %d grey periods, %d verb timeouts, %d retries, %d reconnects"
      o.fault_drop o.grey_periods o.verb_timeouts o.fault_retries o.reconnects;
  List.iter (fun f -> Fmt.pf fmt "@.  FAIL %s" f) o.failures
