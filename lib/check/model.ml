type op =
  | Put of int64 * bytes
  | Delete of int64
  | Push of bytes
  | Pop

let pp_op fmt = function
  | Put (k, v) -> Fmt.pf fmt "put %Ld %S" k (Bytes.to_string v)
  | Delete k -> Fmt.pf fmt "delete %Ld" k
  | Push v -> Fmt.pf fmt "push %S" (Bytes.to_string v)
  | Pop -> Fmt.pf fmt "pop"

type t =
  | Map of (int64 * bytes) list  (* sorted by key, unique keys *)
  | Lifo of bytes list  (* top first *)
  | Fifo of bytes list  (* head first *)

let empty_map = Map []
let empty_lifo = Lifo []
let empty_fifo = Fifo []
let kind = function Map _ -> `Map | Lifo _ | Fifo _ -> `Seq

let rec put_sorted k v = function
  | [] -> [ (k, v) ]
  | (k', _) :: rest when k' = k -> (k, v) :: rest
  | (k', _) :: _ as l when Int64.compare k k' < 0 -> (k, v) :: l
  | b :: rest -> b :: put_sorted k v rest

let apply t op =
  match (t, op) with
  | Map l, Put (k, v) -> Map (put_sorted k v l)
  | Map l, Delete k -> Map (List.filter (fun (k', _) -> k' <> k) l)
  | Lifo l, Push v -> Lifo (v :: l)
  | Lifo l, Pop -> Lifo (match l with [] -> [] | _ :: tl -> tl)
  | Fifo l, Push v -> Fifo (l @ [ v ])
  | Fifo l, Pop -> Fifo (match l with [] -> [] | _ :: tl -> tl)
  | _ -> Fmt.invalid_arg "Model.apply: %a on a %s model" pp_op op
           (match t with Map _ -> "map" | _ -> "sequence")

let dump = function
  | Map l -> l
  | Lifo l | Fifo l -> List.mapi (fun i v -> (Int64.of_int i, v)) l

(* The hot key range is small on purpose: collisions exercise update and
   delete paths, not just inserts. *)
let hot_keys = 24

let random_op rng ~kind ~i =
  match kind with
  | `Map ->
      let key = Int64.of_int (Asym_util.Rng.int rng hot_keys) in
      if Asym_util.Rng.int rng 4 = 0 then Delete key
      else Put (key, Bytes.of_string (Printf.sprintf "v%03d:%012Lx:end" i key))
  | `Seq ->
      if Asym_util.Rng.int rng 10 < 3 then Pop
      else Push (Bytes.of_string (Printf.sprintf "e%03d:payload-tail" i))

let generate ~kind ~ops ~seed =
  let rng = Asym_util.Rng.create ~seed in
  List.init ops (fun i -> random_op rng ~kind ~i)
