(** Counting crash-point hook (lib/check's fault-schedule instrument).

    A {e crash point} is an NVM-mutating boundary initiated by a front-end
    node: one remote write, CAS or fetch-add reaching the media. The
    checker first runs a workload in {e census} mode, counting every
    boundary and recording its site label; it then re-runs the workload
    once per boundary with the hook {e armed}, which raises
    {!Crash_injected} the instant that boundary's mutation has reached the
    media — the state a real front-end crash would leave behind (the write
    is durable but its ack was never seen).

    The device reports mutations via {!hit}; the RDMA verb layer brackets
    each verb with {!in_verb} so that (a) boundaries are attributed to the
    initiating verb and (b) back-end–local mutations (log replay, RPC
    bookkeeping, mirror replication) are {e not} crash points — a
    front-end crash does not stop the back-end.

    All state is global: the checker runs one schedule at a time. When the
    hook is {!Off} (the default) the per-write overhead is one ref read. *)

exception Crash_injected of int
(** Raised by {!hit} when the armed boundary is reached; carries the
    boundary index (1-based). The hook disarms itself before raising, so
    recovery code running during unwinding is not re-interrupted. *)

val reset : unit -> unit
(** Disarm, zero the counter, clear census bookkeeping. *)

val set_census : unit -> unit
(** Count boundaries and record site labels; never raise. *)

val arm : int -> unit
(** [arm n] raises {!Crash_injected} at the [n]-th boundary (1-based). *)

val active : unit -> bool
val boundaries : unit -> int
(** Boundaries counted since the last {!reset}. *)

val site_counts : unit -> (string * int) list
(** Census histogram: ["verb/device-site"] label to occurrence count,
    sorted by label. *)

val fired : unit -> (int * string) option
(** After an armed run: the boundary index and site label where the crash
    fired, or [None] if the schedule ended first. *)

val in_verb : string -> (unit -> 'a) -> 'a
(** Bracket one client-initiated verb; {!hit} only counts inside. *)

val hit : site:string -> unit
(** Report one media mutation (called by {!Device} after applying it). *)
