open Asym_sim

type addr = int

type t = {
  name : string;
  capacity : int;
  media : bytes;
  lat : Latency.t;
  mutable last_write : (addr * bytes) option;  (* position and pre-image of last write *)
  mutable reads : int;
  mutable writes : int;
  mutable bytes_written : int;
}

let create ?(name = "nvm") ~capacity lat =
  assert (capacity > 0);
  {
    name;
    capacity;
    media = Bytes.make capacity '\000';
    lat;
    last_write = None;
    reads = 0;
    writes = 0;
    bytes_written = 0;
  }

let name t = t.name
let capacity t = t.capacity
let latency t = t.lat

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.capacity then
    invalid_arg
      (Printf.sprintf "Nvm.Device %s: access out of bounds (addr=%d len=%d cap=%d)" t.name addr
         len t.capacity)

let obs_media t ~op ~len =
  if Asym_obs.enabled () then begin
    let labels = [ ("op", op); ("dev", t.name) ] in
    Asym_obs.Registry.inc ~labels "nvm.media";
    Asym_obs.Registry.add ~labels "nvm.media_bytes" len
  end

let read t ~addr ~len =
  check t addr len;
  t.reads <- t.reads + 1;
  obs_media t ~op:"read" ~len;
  Bytes.sub t.media addr len

let read_u64 t ~addr =
  check t addr 8;
  t.reads <- t.reads + 1;
  obs_media t ~op:"read" ~len:8;
  Bytes.get_int64_le t.media addr

let write t ~addr b =
  let len = Bytes.length b in
  check t addr len;
  t.last_write <- Some (addr, Bytes.sub t.media addr len);
  Bytes.blit b 0 t.media addr len;
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + len;
  obs_media t ~op:"write" ~len;
  Crashpoint.hit ~site:"nvm.write"

let write_u64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t ~addr b

let compare_and_swap t ~addr ~expected ~desired =
  check t addr 8;
  let old = Bytes.get_int64_le t.media addr in
  if old = expected then begin
    t.last_write <- Some (addr, Bytes.sub t.media addr 8);
    Bytes.set_int64_le t.media addr desired;
    t.writes <- t.writes + 1;
    t.bytes_written <- t.bytes_written + 8;
    obs_media t ~op:"write" ~len:8;
    Crashpoint.hit ~site:"nvm.cas"
  end;
  old

let fetch_add t ~addr delta =
  check t addr 8;
  let old = Bytes.get_int64_le t.media addr in
  t.last_write <- Some (addr, Bytes.sub t.media addr 8);
  Bytes.set_int64_le t.media addr (Int64.add old delta);
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + 8;
  obs_media t ~op:"write" ~len:8;
  Crashpoint.hit ~site:"nvm.fetch_add";
  old

let read_cost t ~len = Latency.nvm_read_cost t.lat len
let write_cost t ~len = Latency.nvm_write_cost t.lat len

let tear_last_write t ~keep =
  match t.last_write with
  | None -> ()
  | Some (addr, pre) ->
      let len = Bytes.length pre in
      let keep = max 0 (min keep len) in
      (* Revert the suffix past [keep] to the pre-image. *)
      Bytes.blit pre keep t.media (addr + keep) (len - keep);
      t.last_write <- None;
      (* The device has no clock; the tracer anchors the instant at the
         latest simulated timestamp it has seen. *)
      Asym_obs.Span.instant ~cat:"fault" ~track:t.name "nvm.torn_write"

let crash_restart t = t.last_write <- None
let last_write_len t = Option.map (fun (_, pre) -> Bytes.length pre) t.last_write
let reads_performed t = t.reads
let writes_performed t = t.writes
let bytes_written t = t.bytes_written
let snapshot t = Bytes.copy t.media

let load t b =
  if Bytes.length b <> t.capacity then invalid_arg "Nvm.Device.load: capacity mismatch";
  Bytes.blit b 0 t.media 0 t.capacity
