(** Simulated byte-addressable non-volatile memory device.

    Models the durability properties AsymNVM relies on:
    - any completed write is durable (the ack the RDMA NIC returns after
      DDIO/ADR drains to the persistence domain);
    - a write in flight when the host crashes may be {e torn}: only a
      prefix of it reaches the media. {!tear_last_write} reverts the
      suffix of the most recent write, which is exactly the failure the
      per-transaction checksum (paper §4.2) exists to detect.

    The device never loses completed writes across {!crash_restart}; only
    the torn suffix (if injected) differs. Media latencies are exposed as
    cost functions; charging them to the right clock is the caller's
    (NIC's / backend CPU's) job. *)

type t

type addr = int
(** Byte offset into the device. The paper uses 64-bit NVM addresses; a
    63-bit OCaml [int] is plenty for simulated capacities. *)

val create : ?name:string -> capacity:int -> Asym_sim.Latency.t -> t
val name : t -> string
val capacity : t -> int
val latency : t -> Asym_sim.Latency.t

val read : t -> addr:addr -> len:int -> bytes
val read_u64 : t -> addr:addr -> int64
val write : t -> addr:addr -> bytes -> unit
val write_u64 : t -> addr:addr -> int64 -> unit

val compare_and_swap : t -> addr:addr -> expected:int64 -> desired:int64 -> int64
(** Atomic 8-byte CAS; returns the previous value. *)

val fetch_add : t -> addr:addr -> int64 -> int64
(** Atomic 8-byte add; returns the previous value. *)

val read_cost : t -> len:int -> Asym_sim.Simtime.t
val write_cost : t -> len:int -> Asym_sim.Simtime.t

val tear_last_write : t -> keep:int -> unit
(** Simulate a crash tearing the most recent write: only its first [keep]
    bytes persist; the rest revert to the previous contents. No-op if
    there was no write yet. *)

val crash_restart : t -> unit
(** Power-cycle the device. Durable contents are preserved; the
    tear-injection bookkeeping is reset. *)

val last_write_len : t -> int option
(** Length of the most recent write (the one {!tear_last_write} would
    tear), or [None] after {!crash_restart} / before any write. Used by
    the crash-point explorer to pick a tear offset. *)

val reads_performed : t -> int
val writes_performed : t -> int
val bytes_written : t -> int

val snapshot : t -> bytes
(** Copy of the full media contents (for mirror promotion and tests). *)

val load : t -> bytes -> unit
(** Overwrite media contents from a snapshot of the same capacity. *)
