exception Crash_injected of int

type mode = Off | Census | Armed of int

let mode = ref Off
let counter = ref 0
let depth = ref 0
let context = ref "?"
let sites : (string, int) Hashtbl.t = Hashtbl.create 32
let fired_at : (int * string) option ref = ref None

let reset () =
  mode := Off;
  counter := 0;
  depth := 0;
  context := "?";
  fired_at := None;
  Hashtbl.reset sites

let set_census () = mode := Census
let arm n = mode := Armed n
let active () = !mode <> Off
let boundaries () = !counter

let site_counts () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) sites []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fired () = !fired_at

let in_verb label f =
  if !mode = Off then f ()
  else begin
    incr depth;
    let prev = !context in
    context := label;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        context := prev)
      f
  end

let hit ~site =
  if !mode <> Off && !depth > 0 then begin
    incr counter;
    let label = !context ^ "/" ^ site in
    match !mode with
    | Census ->
        Hashtbl.replace sites label
          (1 + Option.value ~default:0 (Hashtbl.find_opt sites label))
    | Armed n when !counter = n ->
        (* Disarm before raising: recovery and validation code that runs
           after the injected crash must see a quiescent hook. *)
        mode := Off;
        fired_at := Some (n, label);
        raise (Crash_injected n)
    | _ -> ()
  end
