(* Busy intervals are kept sorted so that requests arriving slightly out
   of (virtual-time) order — possible for clocks advanced outside the
   co-simulation scheduler, which resumes the globally-earliest clock —
   backfill idle gaps instead of queueing behind bookings made for later
   times. Old intervals are pruned behind a horizon; requests older than
   the horizon are conservatively clamped to it. *)

type t = {
  name : string;
  mutable starts : int array;  (* sorted busy intervals *)
  mutable stops : int array;
  mutable count : int;
  mutable horizon : Simtime.t;  (* nothing may be scheduled before this *)
  mutable free : Simtime.t;  (* open-ended hold bookkeeping *)
  mutable busy : Simtime.t;
  mutable queued : Simtime.t;  (* total wait between request and grant *)
}

let initial_capacity = 256
let max_intervals = 8192

let create ?(name = "resource") () =
  {
    name;
    starts = Array.make initial_capacity 0;
    stops = Array.make initial_capacity 0;
    count = 0;
    horizon = 0;
    free = 0;
    busy = 0;
    queued = 0;
  }

let name t = t.name

let ensure_capacity t =
  if t.count = Array.length t.starts then begin
    let n = t.count * 2 in
    let s = Array.make n 0 and e = Array.make n 0 in
    Array.blit t.starts 0 s 0 t.count;
    Array.blit t.stops 0 e 0 t.count;
    t.starts <- s;
    t.stops <- e
  end

let prune t =
  if t.count >= max_intervals then begin
    let drop = t.count / 2 in
    t.horizon <- Simtime.max t.horizon t.stops.(drop - 1);
    Array.blit t.starts drop t.starts 0 (t.count - drop);
    Array.blit t.stops drop t.stops 0 (t.count - drop);
    t.count <- t.count - drop
  end

(* Index of the first interval with stop > x (binary search). *)
let first_after t x =
  let lo = ref 0 and hi = ref t.count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.stops.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let insert_at t i start stop =
  (* Merge with neighbours when touching, else insert. *)
  let touches_prev = i > 0 && t.stops.(i - 1) = start in
  let touches_next = i < t.count && t.starts.(i) = stop in
  if touches_prev && touches_next then begin
    t.stops.(i - 1) <- t.stops.(i);
    Array.blit t.starts (i + 1) t.starts i (t.count - i - 1);
    Array.blit t.stops (i + 1) t.stops i (t.count - i - 1);
    t.count <- t.count - 1
  end
  else if touches_prev then t.stops.(i - 1) <- stop
  else if touches_next then t.starts.(i) <- start
  else begin
    ensure_capacity t;
    Array.blit t.starts i t.starts (i + 1) (t.count - i);
    Array.blit t.stops i t.stops (i + 1) (t.count - i);
    t.starts.(i) <- start;
    t.stops.(i) <- stop;
    t.count <- t.count + 1
  end

(* Split the grant into queueing delay (request -> start) and service
   time (the slot itself), per resource, in the obs registry. The
   [enabled] pre-check keeps the disabled path allocation-free. *)
let book t ~wait ~service =
  t.queued <- t.queued + wait;
  if Asym_obs.enabled () then begin
    let labels = [ ("resource", t.name) ] in
    if wait > 0 then Asym_obs.Registry.add ~labels "timeline.queue_ns" wait;
    if service > 0 then Asym_obs.Registry.add ~labels "timeline.service_ns" service
  end

let acquire t ~at ~dur =
  assert (dur >= 0);
  let requested = at in
  let at = Simtime.max at t.horizon in
  if dur = 0 then at
  else begin
    (* Find the earliest gap of length [dur] at or after [at]. *)
    let rec fit i candidate =
      if i >= t.count then candidate
      else if candidate + dur <= t.starts.(i) then candidate
      else fit (i + 1) (Simtime.max candidate t.stops.(i))
    in
    let i0 = first_after t at in
    let start = fit i0 at in
    insert_at t (first_after t start) start (start + dur);
    prune t;
    t.busy <- t.busy + dur;
    if start + dur > t.free then t.free <- start + dur;
    book t ~wait:(start - requested) ~service:dur;
    start
  end

let hold t ~at =
  let start = Simtime.max at t.free in
  book t ~wait:(start - at) ~service:0;
  start

let release t ~at =
  if at > t.free then begin
    book t ~wait:0 ~service:(at - t.free);
    t.busy <- t.busy + (at - t.free);
    t.free <- at
  end

let free_at t = t.free
let busy_total t = t.busy
let queued_total t = t.queued

let reset t =
  t.count <- 0;
  t.horizon <- 0;
  t.free <- 0;
  t.busy <- 0;
  t.queued <- 0
