type t = {
  name : string;
  mutable now : Simtime.t;
  mutable busy : Simtime.t;
  (* Set by Sched.run while this clock's owner executes under the
     effect handler; gates the Yield perform so clocks advanced outside
     a co-simulation (single-client runs, setup code) never raise
     Effect.Unhandled. *)
  mutable coop : bool;
  attr : Asym_obs.Attr.local;
}

(* Performed after every forward movement of a cooperating clock — the
   suspension point that makes clients resumable at every virtual-time
   advance. Sched runs each client under a handler for this effect and
   always resumes the globally-earliest clock. *)
type _ Effect.t += Yield : t -> unit Effect.t

let create ?(name = "node") () =
  { name; now = 0; busy = 0; coop = false; attr = Asym_obs.Attr.local_create () }

let name t = t.name
let now t = t.now
let attr t = t.attr
let set_coop t v = t.coop <- v
let coop t = t.coop
let yield t = if t.coop then Effect.perform (Yield t)

(* Every forward movement of [now] is charged to an attribution cause
   here, at the single choke point — so summing the per-cause sink always
   reproduces elapsed virtual time exactly (the conservation property).
   The same choke point is where a cooperating client suspends: time
   lands on the clock first, then the scheduler takes over, so the
   side effects that follow the advance (a verb's media write, a lock
   CAS decision) execute at the verb's completion time in global
   virtual-time order. *)
let advance ?(cause = Asym_obs.Attr.Local_compute) t d =
  assert (d >= 0);
  Asym_obs.Attr.local_charge t.attr cause d;
  t.now <- t.now + d;
  t.busy <- t.busy + d;
  if d > 0 then yield t

let wait_until ?(cause = Asym_obs.Attr.Local_compute) t at =
  if at > t.now then begin
    Asym_obs.Attr.local_charge t.attr cause (at - t.now);
    t.now <- at;
    yield t
  end

let busy t = t.busy

let utilization t ~since ~busy_since =
  let elapsed = t.now - since in
  if elapsed <= 0 then 0.0 else float_of_int (t.busy - busy_since) /. float_of_int elapsed

let reset t =
  t.now <- 0;
  t.busy <- 0
