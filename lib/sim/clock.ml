type t = { name : string; mutable now : Simtime.t; mutable busy : Simtime.t }

let create ?(name = "node") () = { name; now = 0; busy = 0 }
let name t = t.name
let now t = t.now

(* Every forward movement of [now] is charged to an attribution cause
   here, at the single choke point — so summing the per-cause sink always
   reproduces elapsed virtual time exactly (the conservation property). *)
let advance ?(cause = Asym_obs.Attr.Local_compute) t d =
  assert (d >= 0);
  Asym_obs.Attr.charge cause d;
  t.now <- t.now + d;
  t.busy <- t.busy + d

let wait_until ?(cause = Asym_obs.Attr.Local_compute) t at =
  if at > t.now then begin
    Asym_obs.Attr.charge cause (at - t.now);
    t.now <- at
  end

let busy t = t.busy

let utilization t ~since ~busy_since =
  let elapsed = t.now - since in
  if elapsed <= 0 then 0.0 else float_of_int (t.busy - busy_since) /. float_of_int elapsed

let reset t =
  t.now <- 0;
  t.busy <- 0
