(** Verb-granular cooperative co-simulation.

    Each client runs inside an OCaml 5 effect handler: every forward
    movement of its clock ({!Clock.advance}/{!Clock.wait_until})
    suspends it via {!Clock.Yield}, and the scheduler resumes the
    client whose clock is globally earliest — so clients interleave
    {e within} operations, at the granularity of individual RDMA verbs,
    lock CAS probes, cache hits and log flushes.

    Scheduling is deterministic: the next client is picked from a binary
    min-heap keyed on (virtual time, client id), where the id is the
    client's position in the list given to {!run} — a pure function of
    virtual time with a fixed tie-break, so the same seeds reproduce the
    same interleaving byte for byte. *)

type client

val client : clock:Clock.t -> run:(unit -> unit) -> client
(** A straight-line client: [run] is the client's whole program,
    suspended transparently at every clock advance. Loop/termination
    conditions (e.g. a measurement deadline) live in the body itself. *)

val stepper : clock:Clock.t -> step:(unit -> bool) -> client
(** Compatibility constructor: [step] is called repeatedly until it
    returns [false] (or the {!run} deadline passes, checked at step
    boundaries). The steps themselves still interleave with other
    clients at every clock advance. *)

val run : ?deadline:Simtime.t -> client list -> unit
(** Run all clients to completion. [deadline] stops {!stepper} clients
    whose clock reached it (checked between steps); straight-line
    clients check their own loop conditions. Clients never suspend
    permanently: an abandoned continuation would strand counters and
    locks mid-operation. *)

val makespan : Clock.t list -> Simtime.t
(** Largest [now] among the given clocks. *)
