(* Verb-granular co-simulation engine.

   Each client runs inside an OCaml 5 effect handler: every forward
   movement of its clock performs [Clock.Yield] (see Clock.advance), the
   handler captures the continuation, and the scheduler resumes the
   globally-earliest clock — so clients suspend and resume *inside*
   operations, at every virtual-time advance.

   Determinism: the next client to run is a pure function of virtual
   time — a binary min-heap keyed on (clock value, client id), with the
   client id (list position passed to [run]) as the fixed tie-break.
   Same program + same seeds therefore produce the same interleaving,
   byte for byte. *)

type body = Run of (unit -> unit) | Step of (unit -> bool)
type client = { clock : Clock.t; body : body }

let client ~clock ~run = { clock; body = Run run }
let stepper ~clock ~step = { clock; body = Step step }

(* -- task execution under the handler ----------------------------------- *)

type status = Done | Yielded of (unit, status) Effect.Deep.continuation

type task = {
  id : int;
  tclock : Clock.t;
  mutable at : Simtime.t;  (* heap key: clock sampled at suspension *)
  mutable state : state;
}

and state = Start of (unit -> unit) | Suspended of (unit, status) Effect.Deep.continuation

let handler : (status, status) Effect.Deep.handler =
  {
    retc = (fun s -> s);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Clock.Yield _ ->
            Some (fun (k : (a, status) Effect.Deep.continuation) -> Yielded k)
        | _ -> None);
  }

let exec t =
  match t.state with
  | Start f -> Effect.Deep.match_with (fun () -> f (); Done) () handler
  | Suspended k -> Effect.Deep.continue k ()

(* -- binary min-heap on (at, id) ----------------------------------------- *)

module Heap = struct
  type t = { mutable a : task array; mutable n : int }

  let create ~dummy cap = { a = Array.make (max 1 cap) dummy; n = 0 }
  let before x y = x.at < y.at || (x.at = y.at && x.id < y.id)

  let push h t =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) h.a.(0) in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- t;
    while !i > 0 && before h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let min h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.n && before h.a.(l) h.a.(!s) then s := l;
          if r < h.n && before h.a.(r) h.a.(!s) then s := r;
          if !s = !i then continue_ := false
          else begin
            let tmp = h.a.(!s) in
            h.a.(!s) <- h.a.(!i);
            h.a.(!i) <- tmp;
            i := !s
          end
        done
      end;
      Some top
    end
end

(* -- scheduler ------------------------------------------------------------ *)

let run ?deadline clients =
  match clients with
  | [] -> ()
  | clients ->
      let thunk c =
        match c.body with
        | Run f -> f
        | Step step ->
            (* Whole-operation compatibility clients: the deadline is
               checked at step boundaries, exactly as the pre-effects
               scheduler did. [Run] bodies own their loop condition. *)
            let past () =
              match deadline with Some d -> Clock.now c.clock >= d | None -> false
            in
            fun () ->
              while (not (past ())) && step () do
                ()
              done
      in
      let tasks =
        List.mapi
          (fun id c ->
            { id; tclock = c.clock; at = Clock.now c.clock; state = Start (thunk c) })
          clients
      in
      let h = Heap.create ~dummy:(List.hd tasks) (List.length tasks) in
      List.iter (fun t -> Heap.push h t) tasks;
      List.iter (fun c -> Clock.set_coop c.clock true) clients;
      Fun.protect
        ~finally:(fun () -> List.iter (fun c -> Clock.set_coop c.clock false) clients)
        (fun () ->
          let rec drive t =
            match exec t with
            | Done -> next ()
            | Yielded k ->
                t.at <- Clock.now t.tclock;
                t.state <- Suspended k;
                (* Fast path: still the earliest clock — keep running
                   without touching the heap. *)
                (match Heap.min h with
                | Some m when Heap.before m t ->
                    Heap.push h t;
                    next ()
                | _ -> drive t)
          and next () =
            match Heap.pop h with None -> () | Some t -> drive t
          in
          next ())

let makespan clocks = List.fold_left (fun acc c -> Simtime.max acc (Clock.now c)) 0 clocks
