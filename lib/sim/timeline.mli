(** A contended shared resource (a NIC, a lock, a replay engine).

    A timeline serializes work items: a request arriving at virtual time
    [at] for [dur] nanoseconds starts at [max at free] and pushes the
    resource's free time forward. This is a standard single-server queue
    and is how back-end NIC saturation (Figs 8–10) and lock contention
    (§6) manifest in the simulation. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val acquire : t -> at:Simtime.t -> dur:Simtime.t -> Simtime.t
(** [acquire t ~at ~dur] returns the start time of the granted slot.
    The slot ends at [start + dur]. *)

val hold : t -> at:Simtime.t -> Simtime.t
(** Begin an open-ended hold (e.g. a mutex): returns the start time, with
    the resource marked busy until {!release} is called. *)

val release : t -> at:Simtime.t -> unit
(** End an open-ended hold at absolute time [at]. *)

val free_at : t -> Simtime.t
(** Next time the resource is free. *)

val busy_total : t -> Simtime.t
(** Total busy time scheduled on this resource. *)

val queued_total : t -> Simtime.t
(** Total queueing delay (request time to grant time) absorbed by
    requests on this resource. With observability on, the same split is
    published as [timeline.queue_ns] / [timeline.service_ns] counters
    labelled by resource name. *)

val reset : t -> unit
