type t = {
  rdma_rtt_ns : int;
  rdma_post_ns : int;
  rdma_atomic_ns : int;
  rdma_byte_ns : float;
  nvm_read_ns : int;
  nvm_write_ns : int;
  dram_ns : int;
  persist_fence_ns : int;
  cpu_op_ns : int;
  cpu_entry_ns : int;
  ssd_write_ns : int;
  verb_timeout_ns : int;
}

let default =
  {
    rdma_rtt_ns = 2_000;
    (* NIC occupancy per work request: a CX-3 class NIC sustains several
       million small verbs per second. *)
    rdma_post_ns = 150;
    rdma_atomic_ns = 2_100;
    (* 40 Gbps = 5 GB/s -> 0.2 ns per byte *)
    rdma_byte_ns = 0.2;
    nvm_read_ns = 300;
    nvm_write_ns = 100;
    dram_ns = 100;
    persist_fence_ns = 500;
    cpu_op_ns = 150;
    cpu_entry_ns = 120;
    ssd_write_ns = 80_000;
    (* 10 round trips: long enough that queueing behind a busy NIC never
       trips it, short enough that a retry storm stays sub-millisecond. *)
    verb_timeout_ns = 20_000;
  }

let lines len = if len <= 0 then 1 else (len + 63) / 64
let rdma_payload_ns t len = int_of_float (float_of_int len *. t.rdma_byte_ns)
let nvm_read_cost t len = lines len * t.nvm_read_ns
let nvm_write_cost t len = lines len * t.nvm_write_ns
