(** Per-node virtual clock with busy-time accounting.

    Each simulated node (front-end, back-end, mirror) owns one clock.
    [advance] models time the node spends doing work (counts as busy);
    [wait_until] models blocking on a remote event (idle). The busy/total
    split is what Figure 11 (CPU utilization) reports. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val now : t -> Simtime.t

val advance : ?cause:Asym_obs.Attr.cause -> t -> Simtime.t -> unit
(** Spend [d] nanoseconds of busy time, charged to [cause] (default
    [Local_compute]) in the attribution sink when observability is on. *)

val wait_until : ?cause:Asym_obs.Attr.cause -> t -> Simtime.t -> unit
(** Block (idle) until the given absolute time, if it is in the future.
    The idle gap is charged to [cause] (default [Local_compute]). *)

val busy : t -> Simtime.t
(** Total busy time accumulated so far. *)

val utilization : t -> since:Simtime.t -> busy_since:Simtime.t -> float
(** Utilization over the window from [since] (with [busy_since] the busy
    counter sampled at that moment) to now. *)

val reset : t -> unit
