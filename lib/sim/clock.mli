(** Per-node virtual clock with busy-time accounting.

    Each simulated node (front-end, back-end, mirror) owns one clock.
    [advance] models time the node spends doing work (counts as busy);
    [wait_until] models blocking on a remote event (idle). The busy/total
    split is what Figure 11 (CPU utilization) reports. *)

type t

type _ Effect.t += Yield : t -> unit Effect.t
(** Performed after every forward movement of a {e cooperating} clock
    (see {!set_coop}) — the suspension point of the verb-granular
    co-simulation. {!Sched.run} installs the handler; a clock advanced
    outside a scheduler never performs it. *)

val create : ?name:string -> unit -> t
val name : t -> string
val now : t -> Simtime.t

val advance : ?cause:Asym_obs.Attr.cause -> t -> Simtime.t -> unit
(** Spend [d] nanoseconds of busy time, charged to [cause] (default
    [Local_compute]) in the attribution sink when observability is on. *)

val wait_until : ?cause:Asym_obs.Attr.cause -> t -> Simtime.t -> unit
(** Block (idle) until the given absolute time, if it is in the future.
    The idle gap is charged to [cause] (default [Local_compute]). *)

val busy : t -> Simtime.t
(** Total busy time accumulated so far. *)

val attr : t -> Asym_obs.Attr.local
(** This clock's attribution sink: everything [advance]/[wait_until]
    charge lands here {e and} in the global sink. Per-operation windows
    are taken against this local sink so they survive mid-operation
    suspension under the co-simulation. *)

val set_coop : t -> bool -> unit
(** Enable/disable the {!Yield} perform. Only {!Sched.run} should flip
    this — a cooperating clock must be running under its handler. *)

val coop : t -> bool

val utilization : t -> since:Simtime.t -> busy_since:Simtime.t -> float
(** Utilization over the window from [since] (with [busy_since] the busy
    counter sampled at that moment) to now. *)

val reset : t -> unit
