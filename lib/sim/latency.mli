(** Latency model for the simulated hardware.

    The defaults follow the numbers the paper builds its arguments on
    (§1, §3.2): RDMA round trip ≈ 2 µs over 40 Gbps InfiniBand, NVM media
    read/write ≈ 300/100 ns per cache line, DRAM ≈ 100 ns. All costs are
    in virtual nanoseconds ({!Simtime.t}). *)

type t = {
  rdma_rtt_ns : int;  (** full round trip of a one-sided read / sync write *)
  rdma_post_ns : int;  (** one-way posting cost occupying the remote NIC *)
  rdma_atomic_ns : int;  (** CAS / fetch-add round trip *)
  rdma_byte_ns : float;  (** per-byte payload cost (≈ 40 Gbps) *)
  nvm_read_ns : int;  (** NVM media read, per 64 B line *)
  nvm_write_ns : int;  (** NVM media write, per 64 B line *)
  dram_ns : int;  (** local DRAM access (cache hit) *)
  persist_fence_ns : int;  (** local persist fence (clwb+sfence), symmetric baseline *)
  cpu_op_ns : int;  (** fixed local compute per data-structure operation *)
  cpu_entry_ns : int;  (** backend compute to replay one memory-log entry *)
  ssd_write_ns : int;  (** mirror node backed by SSD instead of NVM *)
  verb_timeout_ns : int;
      (** how long a client waits on a signaled verb's completion before
          declaring it lost ({!Asym_rdma.Verbs} fault injection) *)
}

val default : t

val lines : int -> int
(** Number of 64-byte lines covering [len] bytes (at least 1). *)

val rdma_payload_ns : t -> int -> int
(** Payload serialization cost for [len] bytes. *)

val nvm_read_cost : t -> int -> int
(** Media cost of reading [len] bytes from NVM. *)

val nvm_write_cost : t -> int -> int
(** Media cost of writing [len] bytes to NVM. *)
