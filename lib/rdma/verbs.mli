(** Simulated one-sided RDMA verbs.

    A {!conn} links a front-end node's clock to a back-end node's NVM
    through the back-end's NIC timeline. One-sided operations never involve
    the remote CPU — only the remote NIC and the NVM media — which is the
    property AsymNVM's passive back-end design (§3.3) depends on.

    Cost model per verb: the remote NIC is occupied for the posting cost
    plus payload serialization plus NVM media time; the initiating client
    blocks for the full round trip. [write] is durable when it returns
    (the ack): crash-in-flight tearing is injected via
    {!Asym_nvm.Device.tear_last_write} by failure tests. *)

exception Failure_detected of string
(** Raised when the remote end is marked failed — the RNIC feedback the
    front-end uses to detect back-end crashes (paper §7.2 Case 3). *)

type conn

val connect :
  client:Asym_sim.Clock.t ->
  remote_nic:Asym_sim.Timeline.t ->
  remote_mem:Asym_nvm.Device.t ->
  Asym_sim.Latency.t ->
  conn

val client_clock : conn -> Asym_sim.Clock.t
val remote_mem : conn -> Asym_nvm.Device.t

val set_failed : conn -> bool -> unit
val is_failed : conn -> bool

val read : conn -> addr:int -> len:int -> bytes
(** RDMA_Read: one round trip, blocks the client. *)

val write : ?wire_len:int -> conn -> addr:int -> bytes -> unit
(** RDMA_Write with remote durability ack: one round trip. [wire_len]
    overrides the payload size used for cost accounting — the front-end
    library uses it for the §4.3 optimization that ships an operation-log
    pointer in place of a value already durable in the op log (the media
    still receives the full record so checksums stay honest). *)

val write_unsignaled : conn -> addr:int -> bytes -> unit
(** Posted write without waiting for completion: client pays only the
    posting cost; durability is only guaranteed after a later signaled
    verb completes. Used by the symmetric baseline's asynchronous log
    shipping. *)

val compare_and_swap : conn -> addr:int -> expected:int64 -> desired:int64 -> int64
val fetch_add : conn -> addr:int -> int64 -> int64

val lock_probe : conn -> addr:int -> bool
(** One §6.1 writer-lock acquisition probe: an RDMA CAS trying to flip
    the lock word 0 -> 1; [true] when it won. Cost is charged to
    [Lock_wait]; under the co-simulation each probe is a suspension
    point, so spinning interleaves with the lock holder's verbs and the
    NIC observes the true concurrent arrival order of the probes. Not
    counted in {!ops_posted}/{!bytes_on_wire} (Table 1 separates lock
    traffic from per-operation verbs). *)

val ops_posted : conn -> int
(** Number of verbs posted on this connection (IOPS accounting). *)

val bytes_on_wire : conn -> int
