(** Simulated one-sided RDMA verbs.

    A {!conn} links a front-end node's clock to a back-end node's NVM
    through the back-end's NIC timeline. One-sided operations never involve
    the remote CPU — only the remote NIC and the NVM media — which is the
    property AsymNVM's passive back-end design (§3.3) depends on.

    Cost model per verb: the remote NIC is occupied for the posting cost
    plus payload serialization plus NVM media time; the initiating client
    blocks for the full round trip. [write] is durable when it returns
    (the ack): crash-in-flight tearing is injected via
    {!Asym_nvm.Device.tear_last_write} by failure tests. *)

exception Failure_detected of string
(** Raised when the remote end is marked failed — the RNIC feedback the
    front-end uses to detect back-end crashes (paper §7.2 Case 3). *)

exception Verb_timeout of string
(** A signaled verb's completion never arrived within the timeout: the
    verb was lost to transient fabric trouble (see {!Fault}), not to a
    dead node. The initiating layer may retry — log appends and data
    writes land at absolute addresses and replay is opnum-idempotent, so
    re-posting is always safe; atomics only ever lose the {e request}
    (never the ack), so retrying them cannot double-apply. *)

(** Per-connection transient-fault model: seeded per-verb loss and extra
    fabric delay, plus armed "grey periods" of elevated loss. All draws
    come from one generator seeded at {!set_fault}, so a faulty run is
    reproducible byte-for-byte from its seed. *)
module Fault : sig
  type t = {
    seed : int64;
    drop_p : float;  (** baseline per-verb loss probability *)
    grey_drop_p : float;  (** loss probability inside a grey window *)
    delay_p : float;  (** extra-delay probability for delivered verbs *)
    delay_ns : int;  (** maximum injected fabric delay per verb *)
    timeout_ns : int;  (** 0 = use the connection's [verb_timeout_ns] *)
  }

  val make :
    ?drop_p:float ->
    ?grey_drop_p:float ->
    ?delay_p:float ->
    ?delay_ns:int ->
    ?timeout_ns:int ->
    seed:int64 ->
    unit ->
    t
  (** Defaults: no baseline loss or delay, [grey_drop_p] = 0.9. *)
end

type conn

val connect :
  client:Asym_sim.Clock.t ->
  remote_nic:Asym_sim.Timeline.t ->
  remote_mem:Asym_nvm.Device.t ->
  Asym_sim.Latency.t ->
  conn

val client_clock : conn -> Asym_sim.Clock.t
val remote_mem : conn -> Asym_nvm.Device.t

val set_failed : conn -> bool -> unit
val is_failed : conn -> bool

val set_fault : conn -> Fault.t option -> unit
(** Install (or clear, with [None]) the transient-fault model. Clearing
    also disarms any remaining grey windows. *)

val has_fault : conn -> bool

val arm_grey : conn -> from_:Asym_sim.Simtime.t -> until:Asym_sim.Simtime.t -> unit
(** Arm a grey period: verbs posted in [\[from_, until)] of virtual time
    are lost with [grey_drop_p] instead of [drop_p]. Windows auto-expire
    as the clock passes them. No effect until a fault model is set. *)

val in_grey : conn -> bool
(** Whether the connection's clock currently sits inside a grey window. *)

val verb_timeouts : conn -> int
(** Verbs lost to fault injection (each raised {!Verb_timeout}). *)

val injected_delays : conn -> int
(** Delivered verbs that suffered an injected fabric delay. *)

val read : conn -> addr:int -> len:int -> bytes
(** RDMA_Read: one round trip, blocks the client. *)

val write : ?wire_len:int -> conn -> addr:int -> bytes -> unit
(** RDMA_Write with remote durability ack: one round trip. [wire_len]
    overrides the payload size used for cost accounting — the front-end
    library uses it for the §4.3 optimization that ships an operation-log
    pointer in place of a value already durable in the op log (the media
    still receives the full record so checksums stay honest). *)

val write_unsignaled : conn -> addr:int -> bytes -> unit
(** Posted write without waiting for completion: client pays only the
    posting cost; durability is only guaranteed after a later signaled
    verb completes. Used by the symmetric baseline's asynchronous log
    shipping. *)

val compare_and_swap : conn -> addr:int -> expected:int64 -> desired:int64 -> int64
val fetch_add : conn -> addr:int -> int64 -> int64

val lock_probe : conn -> addr:int -> bool
(** One §6.1 writer-lock acquisition probe: an RDMA CAS trying to flip
    the lock word 0 -> 1; [true] when it won. Cost is charged to
    [Lock_wait]; under the co-simulation each probe is a suspension
    point, so spinning interleaves with the lock holder's verbs and the
    NIC observes the true concurrent arrival order of the probes. Not
    counted in {!ops_posted}/{!bytes_on_wire} (Table 1 separates lock
    traffic from per-operation verbs). *)

val ops_posted : conn -> int
(** Number of verbs posted on this connection (IOPS accounting). *)

val bytes_on_wire : conn -> int
