open Asym_sim

exception Failure_detected of string
exception Verb_timeout of string

(* -- transient-fault model ---------------------------------------------------

   Between "the fabric works" and "the node is dead" sits the grey zone
   this module injects: individual verbs silently lost or delayed, with
   elevated loss inside armed grey periods. All randomness comes from a
   per-connection seeded stream, so a whole faulty run replays
   byte-for-byte from its seed. *)

module Fault = struct
  type t = {
    seed : int64;
    drop_p : float;  (* baseline per-verb loss probability *)
    grey_drop_p : float;  (* loss probability inside an armed grey window *)
    delay_p : float;  (* extra-delay probability for delivered verbs *)
    delay_ns : int;  (* maximum injected fabric delay *)
    timeout_ns : int;  (* 0 = connection's Latency.verb_timeout_ns *)
  }

  let make ?(drop_p = 0.) ?(grey_drop_p = 0.9) ?(delay_p = 0.) ?(delay_ns = 2_000)
      ?(timeout_ns = 0) ~seed () =
    if drop_p < 0. || drop_p > 1. || grey_drop_p < 0. || grey_drop_p > 1. then
      invalid_arg "Verbs.Fault.make: probabilities must be in [0, 1]";
    { seed; drop_p; grey_drop_p; delay_p; delay_ns; timeout_ns }
end

type conn = {
  client : Clock.t;
  remote_nic : Timeline.t;
  remote_mem : Asym_nvm.Device.t;
  lat : Latency.t;
  mutable failed : bool;
  mutable ops : int;
  mutable wire_bytes : int;
  mutable fault : (Fault.t * Asym_util.Rng.t) option;
  mutable grey : (Simtime.t * Simtime.t) list;  (* armed grey windows *)
  mutable n_timeouts : int;
  mutable n_delays : int;
}

let connect ~client ~remote_nic ~remote_mem lat =
  {
    client;
    remote_nic;
    remote_mem;
    lat;
    failed = false;
    ops = 0;
    wire_bytes = 0;
    fault = None;
    grey = [];
    n_timeouts = 0;
    n_delays = 0;
  }

let client_clock t = t.client
let remote_mem t = t.remote_mem
let set_failed t v = t.failed <- v
let is_failed t = t.failed

let set_fault t f =
  t.fault <-
    (match f with
    | None -> None
    | Some f -> Some (f, Asym_util.Rng.create ~seed:f.Fault.seed));
  if f = None then t.grey <- []

let has_fault t = t.fault <> None
let verb_timeouts t = t.n_timeouts
let injected_delays t = t.n_delays

let arm_grey t ~from_ ~until =
  if until <= from_ then invalid_arg "Verbs.arm_grey: empty window";
  t.grey <- (from_, until) :: t.grey

let in_grey t =
  let now = Clock.now t.client in
  List.exists (fun (a, b) -> now >= a && now < b) t.grey

let timeout_ns t =
  match t.fault with
  | Some (f, _) when f.Fault.timeout_ns > 0 -> f.Fault.timeout_ns
  | _ -> t.lat.Latency.verb_timeout_ns

(* The fate of one verb attempt. [`Request]: lost before reaching the
   remote side, no remote effect at all. [`Ack]: the verb executed
   remotely but its completion never came back. Atomics only ever lose
   the request — a CAS that won but looks lost would make blind retry
   unsafe, and real RNICs treat unacked atomics as not-executed
   (retransmission happens below the verb interface). *)
type fate = Deliver of int | Lost of [ `Request | `Ack ]

let fate t ~atomic =
  match t.fault with
  | None -> Deliver 0
  | Some (f, rng) ->
      let now = Clock.now t.client in
      t.grey <- List.filter (fun (_, b) -> b > now) t.grey;
      let drop_p =
        if List.exists (fun (a, b) -> now >= a && now < b) t.grey then
          Float.max f.Fault.drop_p f.Fault.grey_drop_p
        else f.Fault.drop_p
      in
      if Asym_util.Rng.float rng < drop_p then
        Lost
          (if atomic then `Request
           else if Asym_util.Rng.bool rng then `Request
           else `Ack)
      else if Asym_util.Rng.float rng < f.Fault.delay_p then
        Deliver (1 + Asym_util.Rng.int rng (max 1 f.Fault.delay_ns))
      else Deliver 0

(* A lost verb from the client's point of view: wait out the completion
   timeout (charged as fault-handling time, so attribution conservation
   holds), then surface the loss. Not counted in ops/wire — the verb
   never completed. *)
let lose t ~op =
  t.n_timeouts <- t.n_timeouts + 1;
  Clock.advance ~cause:Asym_obs.Attr.Fault_retry t.client (timeout_ns t);
  if Asym_obs.enabled () then
    Asym_obs.Registry.inc ~labels:[ ("op", op) ] "rdma.verb_timeouts";
  raise (Verb_timeout (op ^ "/" ^ Asym_nvm.Device.name t.remote_mem))

let inject_delay t d =
  if d > 0 then begin
    t.n_delays <- t.n_delays + 1;
    Clock.advance ~cause:Asym_obs.Attr.Fault_retry t.client d
  end

let check_alive t =
  if t.failed then raise (Failure_detected (Asym_nvm.Device.name t.remote_mem))

(* Per-verb accounting: a counter, wire bytes, and a span occupying the
   remote NIC's track for the verb's service slot. One branch when
   observability is off. *)
let obs_verb t ~op ~wire ~start ~dur =
  if Asym_obs.enabled () then begin
    let labels = [ ("op", op) ] in
    Asym_obs.Registry.inc ~labels "rdma.verbs";
    Asym_obs.Registry.add ~labels "rdma.wire_bytes" wire;
    Asym_obs.Registry.add "rdma.nic_busy_ns" dur;
    Asym_obs.Span.complete ~cat:"rdma" ~track:(Timeline.name t.remote_nic) ~ts:start ~dur
      ("rdma." ^ op)
  end

(* Occupy the remote NIC for the service time of the verb, then charge the
   client for the end-to-end completion. NVM media time adds to the
   client-visible latency but does not occupy the NIC (DMA engines
   pipeline it). Returns the absolute completion time at the remote
   side. *)
let round_trip t ~op ~wire ~service ~media =
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns + service in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  let queueing = start - at in
  (* Same total as one combined advance, but each component lands on its
     own attribution cause. *)
  Clock.advance ~cause:Asym_obs.Attr.Nic_queue t.client queueing;
  Clock.advance ~cause:Asym_obs.Attr.Rdma_rtt t.client t.lat.Latency.rdma_rtt_ns;
  Clock.advance ~cause:Asym_obs.Attr.Rdma_bytes t.client service;
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.client media;
  t.ops <- t.ops + 1;
  obs_verb t ~op ~wire ~start ~dur;
  start + dur + media

(* Validate before charging: an optimistic reader chasing a pointer that a
   concurrent writer reclaimed can ask for absurd addresses or lengths;
   the NIC rejects the work request instead of overflowing cost math. *)
let check_bounds t ~addr ~len =
  if len < 0 || addr < 0 || addr + len > Asym_nvm.Device.capacity t.remote_mem then
    invalid_arg
      (Printf.sprintf "Rdma.Verbs: invalid memory region (addr=%d len=%d)" addr len)

let read t ~addr ~len =
  check_alive t;
  check_bounds t ~addr ~len;
  (* A lost read has no remote side effect whichever direction vanished. *)
  (match fate t ~atomic:false with
  | Lost _ -> lose t ~op:"read"
  | Deliver d -> inject_delay t d);
  let service = Latency.rdma_payload_ns t.lat len in
  let media = Asym_nvm.Device.read_cost t.remote_mem ~len in
  let _done_at = round_trip t ~op:"read" ~wire:len ~service ~media in
  t.wire_bytes <- t.wire_bytes + len;
  Asym_nvm.Device.read t.remote_mem ~addr ~len

let write ?wire_len t ~addr b =
  check_alive t;
  check_bounds t ~addr ~len:(Bytes.length b);
  let verdict = fate t ~atomic:false in
  (match verdict with Lost `Request -> lose t ~op:"write" | _ -> ());
  Asym_nvm.Crashpoint.in_verb "rdma.write" @@ fun () ->
  let len = match wire_len with Some w -> w | None -> Bytes.length b in
  let service = Latency.rdma_payload_ns t.lat len in
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len in
  match verdict with
  | Lost `Ack ->
      (* The write reached the media — only the completion was lost. The
         remote NIC does the work; the client just times out. Retrying is
         safe because every write in this system lands at an absolute
         address (log appends are positional, replay is idempotent). *)
      let at = Clock.now t.client in
      ignore (Timeline.acquire t.remote_nic ~at ~dur:(t.lat.Latency.rdma_post_ns + service));
      Asym_nvm.Device.write t.remote_mem ~addr b;
      lose t ~op:"write"
  | _ ->
      inject_delay t (match verdict with Deliver d -> d | Lost _ -> 0);
      let _done_at = round_trip t ~op:"write" ~wire:len ~service ~media in
      t.wire_bytes <- t.wire_bytes + len;
      Asym_nvm.Device.write t.remote_mem ~addr b

(* Unsignaled posts are exempt from loss injection: with no completion to
   wait for there is nothing to time out on. Their durability is only
   promised by the next signaled verb — which IS injected, so a grey
   period still surfaces through the synchronizing round trip. *)
let write_unsignaled t ~addr b =
  check_alive t;
  Asym_nvm.Crashpoint.in_verb "rdma.write_unsignaled" @@ fun () ->
  let len = Bytes.length b in
  let service = Latency.rdma_payload_ns t.lat len in
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len in
  ignore media;
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns + service in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  (* The client only pays the local posting cost. *)
  Clock.advance t.client t.lat.Latency.rdma_post_ns;
  t.ops <- t.ops + 1;
  t.wire_bytes <- t.wire_bytes + len;
  obs_verb t ~op:"write_unsignaled" ~wire:len ~start ~dur;
  Asym_nvm.Device.write t.remote_mem ~addr b

let atomic t ~op ~media =
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  let queueing = start - at in
  Clock.advance ~cause:Asym_obs.Attr.Nic_queue t.client queueing;
  Clock.advance ~cause:Asym_obs.Attr.Rdma_rtt t.client t.lat.Latency.rdma_atomic_ns;
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.client media;
  t.ops <- t.ops + 1;
  t.wire_bytes <- t.wire_bytes + 16;
  obs_verb t ~op ~wire:16 ~start ~dur

let compare_and_swap t ~addr ~expected ~desired =
  check_alive t;
  (match fate t ~atomic:true with
  | Lost _ -> lose t ~op:"cas"
  | Deliver d -> inject_delay t d);
  Asym_nvm.Crashpoint.in_verb "rdma.cas" @@ fun () ->
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len:8 in
  atomic t ~op:"cas" ~media;
  Asym_nvm.Device.compare_and_swap t.remote_mem ~addr ~expected ~desired

(* One writer-lock acquisition probe (§6.1): an RDMA CAS trying to flip
   the lock word 0 -> 1. Returns whether the probe won. The full probe
   cost is charged to Lock_wait — under the co-simulation each probe is
   a suspension point, so a contending client's spin is a sequence of
   probes genuinely interleaved with the holder's verbs, and the NIC
   slot it books is queueing the other clients observe. Kept out of the
   ops/wire accounting: Table 1 counts lock traffic separately from the
   per-operation verbs, as the paper does. *)
let lock_probe t ~addr =
  check_alive t;
  (match fate t ~atomic:true with
  | Lost _ -> lose t ~op:"lock_cas"
  | Deliver d -> inject_delay t d);
  Asym_nvm.Crashpoint.in_verb "rdma.lock_cas" @@ fun () ->
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  Clock.advance ~cause:Asym_obs.Attr.Lock_wait t.client t.lat.Latency.rdma_atomic_ns;
  obs_verb t ~op:"lock_cas" ~wire:16 ~start ~dur;
  Asym_nvm.Device.compare_and_swap t.remote_mem ~addr ~expected:0L ~desired:1L = 0L

let fetch_add t ~addr delta =
  check_alive t;
  (match fate t ~atomic:true with
  | Lost _ -> lose t ~op:"fetch_add"
  | Deliver d -> inject_delay t d);
  Asym_nvm.Crashpoint.in_verb "rdma.fetch_add" @@ fun () ->
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len:8 in
  atomic t ~op:"fetch_add" ~media;
  Asym_nvm.Device.fetch_add t.remote_mem ~addr delta

let ops_posted t = t.ops
let bytes_on_wire t = t.wire_bytes
