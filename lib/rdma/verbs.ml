open Asym_sim

exception Failure_detected of string

type conn = {
  client : Clock.t;
  remote_nic : Timeline.t;
  remote_mem : Asym_nvm.Device.t;
  lat : Latency.t;
  mutable failed : bool;
  mutable ops : int;
  mutable wire_bytes : int;
}

let connect ~client ~remote_nic ~remote_mem lat =
  { client; remote_nic; remote_mem; lat; failed = false; ops = 0; wire_bytes = 0 }

let client_clock t = t.client
let remote_mem t = t.remote_mem
let set_failed t v = t.failed <- v
let is_failed t = t.failed

let check_alive t =
  if t.failed then raise (Failure_detected (Asym_nvm.Device.name t.remote_mem))

(* Per-verb accounting: a counter, wire bytes, and a span occupying the
   remote NIC's track for the verb's service slot. One branch when
   observability is off. *)
let obs_verb t ~op ~wire ~start ~dur =
  if Asym_obs.enabled () then begin
    let labels = [ ("op", op) ] in
    Asym_obs.Registry.inc ~labels "rdma.verbs";
    Asym_obs.Registry.add ~labels "rdma.wire_bytes" wire;
    Asym_obs.Registry.add "rdma.nic_busy_ns" dur;
    Asym_obs.Span.complete ~cat:"rdma" ~track:(Timeline.name t.remote_nic) ~ts:start ~dur
      ("rdma." ^ op)
  end

(* Occupy the remote NIC for the service time of the verb, then charge the
   client for the end-to-end completion. NVM media time adds to the
   client-visible latency but does not occupy the NIC (DMA engines
   pipeline it). Returns the absolute completion time at the remote
   side. *)
let round_trip t ~op ~wire ~service ~media =
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns + service in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  let queueing = start - at in
  (* Same total as one combined advance, but each component lands on its
     own attribution cause. *)
  Clock.advance ~cause:Asym_obs.Attr.Nic_queue t.client queueing;
  Clock.advance ~cause:Asym_obs.Attr.Rdma_rtt t.client t.lat.Latency.rdma_rtt_ns;
  Clock.advance ~cause:Asym_obs.Attr.Rdma_bytes t.client service;
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.client media;
  t.ops <- t.ops + 1;
  obs_verb t ~op ~wire ~start ~dur;
  start + dur + media

(* Validate before charging: an optimistic reader chasing a pointer that a
   concurrent writer reclaimed can ask for absurd addresses or lengths;
   the NIC rejects the work request instead of overflowing cost math. *)
let check_bounds t ~addr ~len =
  if len < 0 || addr < 0 || addr + len > Asym_nvm.Device.capacity t.remote_mem then
    invalid_arg
      (Printf.sprintf "Rdma.Verbs: invalid memory region (addr=%d len=%d)" addr len)

let read t ~addr ~len =
  check_alive t;
  check_bounds t ~addr ~len;
  let service = Latency.rdma_payload_ns t.lat len in
  let media = Asym_nvm.Device.read_cost t.remote_mem ~len in
  let _done_at = round_trip t ~op:"read" ~wire:len ~service ~media in
  t.wire_bytes <- t.wire_bytes + len;
  Asym_nvm.Device.read t.remote_mem ~addr ~len

let write ?wire_len t ~addr b =
  check_alive t;
  check_bounds t ~addr ~len:(Bytes.length b);
  Asym_nvm.Crashpoint.in_verb "rdma.write" @@ fun () ->
  let len = match wire_len with Some w -> w | None -> Bytes.length b in
  let service = Latency.rdma_payload_ns t.lat len in
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len in
  let _done_at = round_trip t ~op:"write" ~wire:len ~service ~media in
  t.wire_bytes <- t.wire_bytes + len;
  Asym_nvm.Device.write t.remote_mem ~addr b

let write_unsignaled t ~addr b =
  check_alive t;
  Asym_nvm.Crashpoint.in_verb "rdma.write_unsignaled" @@ fun () ->
  let len = Bytes.length b in
  let service = Latency.rdma_payload_ns t.lat len in
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len in
  ignore media;
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns + service in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  (* The client only pays the local posting cost. *)
  Clock.advance t.client t.lat.Latency.rdma_post_ns;
  t.ops <- t.ops + 1;
  t.wire_bytes <- t.wire_bytes + len;
  obs_verb t ~op:"write_unsignaled" ~wire:len ~start ~dur;
  Asym_nvm.Device.write t.remote_mem ~addr b

let atomic t ~op ~media =
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  let queueing = start - at in
  Clock.advance ~cause:Asym_obs.Attr.Nic_queue t.client queueing;
  Clock.advance ~cause:Asym_obs.Attr.Rdma_rtt t.client t.lat.Latency.rdma_atomic_ns;
  Clock.advance ~cause:Asym_obs.Attr.Nvm_media t.client media;
  t.ops <- t.ops + 1;
  t.wire_bytes <- t.wire_bytes + 16;
  obs_verb t ~op ~wire:16 ~start ~dur

let compare_and_swap t ~addr ~expected ~desired =
  check_alive t;
  Asym_nvm.Crashpoint.in_verb "rdma.cas" @@ fun () ->
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len:8 in
  atomic t ~op:"cas" ~media;
  Asym_nvm.Device.compare_and_swap t.remote_mem ~addr ~expected ~desired

(* One writer-lock acquisition probe (§6.1): an RDMA CAS trying to flip
   the lock word 0 -> 1. Returns whether the probe won. The full probe
   cost is charged to Lock_wait — under the co-simulation each probe is
   a suspension point, so a contending client's spin is a sequence of
   probes genuinely interleaved with the holder's verbs, and the NIC
   slot it books is queueing the other clients observe. Kept out of the
   ops/wire accounting: Table 1 counts lock traffic separately from the
   per-operation verbs, as the paper does. *)
let lock_probe t ~addr =
  check_alive t;
  Asym_nvm.Crashpoint.in_verb "rdma.lock_cas" @@ fun () ->
  let at = Clock.now t.client in
  let dur = t.lat.Latency.rdma_post_ns in
  let start = Timeline.acquire t.remote_nic ~at ~dur in
  Clock.advance ~cause:Asym_obs.Attr.Lock_wait t.client t.lat.Latency.rdma_atomic_ns;
  obs_verb t ~op:"lock_cas" ~wire:16 ~start ~dur;
  Asym_nvm.Device.compare_and_swap t.remote_mem ~addr ~expected:0L ~desired:1L = 0L

let fetch_add t ~addr delta =
  check_alive t;
  Asym_nvm.Crashpoint.in_verb "rdma.fetch_add" @@ fun () ->
  let media = Asym_nvm.Device.write_cost t.remote_mem ~len:8 in
  atomic t ~op:"fetch_add" ~media;
  Asym_nvm.Device.fetch_add t.remote_mem ~addr delta

let ops_posted t = t.ops
let bytes_on_wire t = t.wire_bytes
