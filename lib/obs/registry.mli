(** The metrics registry: named monotonic counters, gauges and log-scale
    histograms, with optional [(key, value)] labels
    (e.g. ["rdma.verbs"] with [("op", "write")]).

    All mutating entry points are no-ops while the global observability
    gate is off, so instrumentation left in hot paths costs one branch.
    Snapshots render to JSON; {!reset} clears every series, which is how
    the harness scopes metrics to one experiment phase. *)

type t

type labels = (string * string) list
(** Label order is irrelevant: keys are canonicalized by sorting. *)

val create : unit -> t

val default : t
(** The process-wide registry every instrumentation site records into. *)

(** {2 Recording} (no-ops while observability is disabled) *)

val inc : ?r:t -> ?labels:labels -> string -> unit
(** Increment a monotonic counter by one. *)

val add : ?r:t -> ?labels:labels -> string -> int -> unit
(** Increment a monotonic counter by [n >= 0]. *)

val set_gauge : ?r:t -> ?labels:labels -> string -> float -> unit

val observe : ?r:t -> ?labels:labels -> string -> float -> unit
(** Record a sample into a log-scale histogram (powers of two from 1 to
    2^39, suiting nanosecond latencies from 1 ns to ~9 min). *)

(** {2 Reading} *)

val counter_value : ?r:t -> ?labels:labels -> string -> int
(** 0 when the series does not exist. *)

val gauge_value : ?r:t -> ?labels:labels -> string -> float option
val histogram : ?r:t -> ?labels:labels -> string -> Asym_util.Stats.Histogram.t option

val fold_counters : ?r:t -> (string -> labels -> int -> 'a -> 'a) -> 'a -> 'a

val to_json : ?r:t -> unit -> Json.t
(** Snapshot every series. Histograms include their non-empty buckets and
    interpolated p50/p99. *)

val reset : ?r:t -> unit -> unit
(** Drop every series (works even while disabled, so phases can start
    clean). *)
