module Stats = Asym_util.Stats

type labels = (string * string) list

(* Canonical series key: name plus sorted labels. *)
type key = { kname : string; klabels : labels }

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of Stats.Histogram.t

type t = { metrics : (key, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 64 }
let default = create ()

let key name labels =
  { kname = name; klabels = List.sort compare labels }

(* 2^0 .. 2^39: nanosecond latencies from 1 ns to ~9 simulated minutes. *)
let latency_buckets = Array.init 40 (fun i -> Float.of_int (1 lsl i))

let kind_err name got want =
  invalid_arg (Printf.sprintf "Obs.Registry: %s is a %s, used as a %s" name got want)

let find_or_add r k make =
  match Hashtbl.find_opt r.metrics k with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace r.metrics k m;
      m

let add ?(r = default) ?(labels = []) name n =
  if Gate.enabled () then begin
    if n < 0 then invalid_arg "Obs.Registry.add: counters are monotonic";
    match find_or_add r (key name labels) (fun () -> Counter (ref 0)) with
    | Counter c -> c := !c + n
    | Gauge _ -> kind_err name "gauge" "counter"
    | Histogram _ -> kind_err name "histogram" "counter"
  end

let inc ?r ?labels name = add ?r ?labels name 1

let set_gauge ?(r = default) ?(labels = []) name v =
  if Gate.enabled () then begin
    match find_or_add r (key name labels) (fun () -> Gauge (ref v)) with
    | Gauge g -> g := v
    | Counter _ -> kind_err name "counter" "gauge"
    | Histogram _ -> kind_err name "histogram" "gauge"
  end

let observe ?(r = default) ?(labels = []) name v =
  if Gate.enabled () then begin
    match
      find_or_add r (key name labels) (fun () ->
          Histogram (Stats.Histogram.create ~buckets:latency_buckets))
    with
    | Histogram h -> Stats.Histogram.add h v
    | Counter _ -> kind_err name "counter" "histogram"
    | Gauge _ -> kind_err name "gauge" "histogram"
  end

let counter_value ?(r = default) ?(labels = []) name =
  match Hashtbl.find_opt r.metrics (key name labels) with
  | Some (Counter c) -> !c
  | _ -> 0

let gauge_value ?(r = default) ?(labels = []) name =
  match Hashtbl.find_opt r.metrics (key name labels) with
  | Some (Gauge g) -> Some !g
  | _ -> None

let histogram ?(r = default) ?(labels = []) name =
  match Hashtbl.find_opt r.metrics (key name labels) with
  | Some (Histogram h) -> Some h
  | _ -> None

let fold_counters ?(r = default) f acc =
  Hashtbl.fold
    (fun k m acc -> match m with Counter c -> f k.kname k.klabels !c acc | _ -> acc)
    r.metrics acc

let reset ?(r = default) () = Hashtbl.reset r.metrics

(* -- snapshot ----------------------------------------------------------- *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let sorted_series r want =
  Hashtbl.fold
    (fun k m acc -> match want k m with Some j -> (k, j) :: acc | None -> acc)
    r.metrics []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let to_json ?(r = default) () =
  let series k extra =
    Json.Obj ([ ("name", Json.String k.kname); ("labels", labels_json k.klabels) ] @ extra)
  in
  let counters =
    sorted_series r (fun k -> function
      | Counter c -> Some (series k [ ("value", Json.Int !c) ])
      | _ -> None)
  in
  let gauges =
    sorted_series r (fun k -> function
      | Gauge g -> Some (series k [ ("value", Json.Float !g) ])
      | _ -> None)
  in
  let histograms =
    sorted_series r (fun k -> function
      | Histogram h ->
          let buckets =
            Stats.Histogram.counts h |> Array.to_list
            |> List.filter (fun (_, c) -> c > 0)
            |> List.map (fun (ub, c) -> Json.List [ Json.Float ub; Json.Int c ])
          in
          let pct p =
            if Stats.Histogram.total h = 0 then Json.Null
            else Json.Float (Stats.Histogram.percentile h p)
          in
          Some
            (series k
               [
                 ("total", Json.Int (Stats.Histogram.total h));
                 ("buckets", Json.List buckets);
                 ("p50", pct 50.0);
                 ("p99", pct 99.0);
               ])
      | _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.List counters);
      ("gauges", Json.List gauges);
      ("histograms", Json.List histograms);
    ]
