(** Chrome [trace_event] JSON export of the span ring.

    The document loads directly in Perfetto ({:https://ui.perfetto.dev})
    or [chrome://tracing]. Each distinct track (client clock, NIC
    timeline, back-end CPU, …) becomes one named thread lane; complete
    spans become ["ph": "X"] events and instants ["ph": "i"]. Timestamps
    are simulated nanoseconds rendered in the format's microsecond unit
    (fractional [ts] is allowed by the spec). *)

val to_json : unit -> Json.t
(** Export the current contents of {!Span.events}. *)

val to_string : unit -> string

val write_file : string -> unit
(** Write the trace document to a file. *)
