(** Sim-time observability: a metrics registry, a span tracer and
    exporters, shared by every layer of the stack.

    The whole subsystem hangs off one global switch: {!set_enabled}. It
    is off by default and every recording entry point starts with the
    same branch, so instrumented hot paths cost a few instructions when
    tracing is not requested (see DESIGN.md, "Observability"). *)

module Json = Json
module Registry = Registry
module Attr = Attr
module Span = Span
module Export_chrome = Export_chrome
module Summary = Summary

let set_enabled = Gate.set_enabled
let enabled = Gate.enabled

let reset () =
  Registry.reset ();
  Attr.reset ();
  Span.reset ()
