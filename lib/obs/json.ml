type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- emit -------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must round-trip and stay valid JSON: no "inf"/"nan" tokens. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let rec pp fmt = function
  | List (_ :: _ as xs) ->
      Format.fprintf fmt "[@[<v 1>";
      List.iteri (fun i x -> Format.fprintf fmt "%s@,%a" (if i > 0 then "," else "") pp x) xs;
      Format.fprintf fmt "@]@,]"
  | Obj (_ :: _ as kvs) ->
      Format.fprintf fmt "{@[<v 1>";
      List.iteri
        (fun i (k, v) ->
          Format.fprintf fmt "%s@,%S: %a" (if i > 0 then "," else "") k pp v)
        kvs;
      Format.fprintf fmt "@]@,}"
  | other -> Format.pp_print_string fmt (to_string other)

(* -- parse ------------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then fail c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if c.pos >= String.length c.src then fail c "unterminated escape";
        let e = c.src.[c.pos] in
        c.pos <- c.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char buf e;
            go ()
        | 'n' ->
            Buffer.add_char buf '\n';
            go ()
        | 'r' ->
            Buffer.add_char buf '\r';
            go ()
        | 't' ->
            Buffer.add_char buf '\t';
            go ()
        | 'b' ->
            Buffer.add_char buf '\b';
            go ()
        | 'f' ->
            Buffer.add_char buf '\012';
            go ()
        | 'u' ->
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
            in
            (* Good enough for our own traces: BMP code points, emitted as
               raw latin-1 when small, '?' otherwise. *)
            Buffer.add_char buf (if code < 256 then Char.chr code else '?');
            go ()
        | _ -> fail c "bad escape")
    | ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected , or }"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected , or ]"
        in
        List (elements [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* -- accessors --------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function List xs -> xs | _ -> invalid_arg "Json.to_list: not a list"

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> invalid_arg "Json.to_int: not an integer"

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> invalid_arg "Json.to_float: not a number"

let to_str = function String s -> s | _ -> invalid_arg "Json.to_str: not a string"
