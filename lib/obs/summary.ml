type span_row = {
  sname : string;
  count : int;
  total_ns : int;
  mean_ns : float;
  max_ns : int;
}

let take n xs = List.filteri (fun i _ -> i < n) xs

let spans ?(top = 15) () =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun (ev : Span.event) ->
      match ev.Span.kind with
      | Span.Instant -> ()
      | Span.Complete dur ->
          let count, total, mx =
            match Hashtbl.find_opt acc ev.Span.name with
            | Some v -> v
            | None -> (0, 0, 0)
          in
          Hashtbl.replace acc ev.Span.name (count + 1, total + dur, max mx dur))
    (Span.events ());
  Hashtbl.fold
    (fun sname (count, total_ns, max_ns) rows ->
      { sname; count; total_ns; mean_ns = float_of_int total_ns /. float_of_int count; max_ns }
      :: rows)
    acc []
  |> List.sort (fun a b -> compare (b.total_ns, b.sname) (a.total_ns, a.sname))
  |> take top

type counter_row = { cname : string; value : int }

let render_name name labels =
  match labels with
  | [] -> name
  | ls ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      ^ "}"

let counters ?r ?(top = 15) () =
  Registry.fold_counters ?r
    (fun name labels value rows -> { cname = render_name name labels; value } :: rows)
    []
  |> List.sort (fun a b -> compare (b.value, b.cname) (a.value, a.cname))
  |> take top

let format_ns ns =
  if ns >= 1_000_000_000 then Printf.sprintf "%.3fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then Printf.sprintf "%.3fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.3fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%dns" ns
