(* trace_event format reference:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)

let pid = 1

(* Stable track -> tid assignment in order of first appearance. *)
let tids events =
  let table = Hashtbl.create 8 in
  let next = ref 1 in
  List.iter
    (fun (ev : Span.event) ->
      if not (Hashtbl.mem table ev.Span.track) then begin
        Hashtbl.replace table ev.Span.track !next;
        incr next
      end)
    events;
  table

let us ns = Json.Float (float_of_int ns /. 1e3)

let event_json table (ev : Span.event) =
  let base =
    [
      ("name", Json.String ev.Span.name);
      ("cat", Json.String ev.Span.cat);
      ("pid", Json.Int pid);
      ("tid", Json.Int (Hashtbl.find table ev.Span.track));
      ("ts", us ev.Span.ts);
    ]
  in
  (* Args surface in Perfetto's aggregate/args panes — the attribution
     cause map attached by the core layer renders as ns per cause. *)
  let args =
    match ev.Span.args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)) ]
  in
  match ev.Span.kind with
  | Span.Complete dur ->
      Json.Obj (base @ [ ("ph", Json.String "X"); ("dur", us dur) ] @ args)
  | Span.Instant -> Json.Obj (base @ [ ("ph", Json.String "i"); ("s", Json.String "t") ])

let thread_meta table =
  Hashtbl.fold
    (fun track tid acc ->
      ( tid,
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String track) ]);
          ] )
      :: acc)
    table []
  |> List.sort compare |> List.map snd

let to_json () =
  let events = Span.events () in
  let table = tids events in
  Json.Obj
    [
      ("traceEvents", Json.List (thread_meta table @ List.map (event_json table) events));
      ("displayTimeUnit", Json.String "ns");
      ("otherData", Json.Obj [ ("droppedEvents", Json.Int (Span.dropped ())) ]);
    ]

let to_string () = Json.to_string (to_json ())

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))
