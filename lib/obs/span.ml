type kind = Complete of int | Instant

type event = {
  name : string;
  cat : string;
  track : string;
  ts : int;
  kind : kind;
  args : (string * int) list;
}

let dummy = { name = ""; cat = ""; track = ""; ts = 0; kind = Instant; args = [] }

(* Ring buffer, oldest-overwritten. [written] counts all events ever
   recorded since the last reset; the next write lands at
   [written mod capacity]. *)
type ring = { mutable buf : event array; mutable written : int; mutable latest : int }

let default_capacity = 65_536
let ring = { buf = Array.make default_capacity dummy; written = 0; latest = 0 }

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Span.set_capacity";
  ring.buf <- Array.make n dummy;
  ring.written <- 0

let reset () =
  Array.fill ring.buf 0 (Array.length ring.buf) dummy;
  ring.written <- 0;
  ring.latest <- 0

let record ev =
  let cap = Array.length ring.buf in
  ring.buf.(ring.written mod cap) <- ev;
  ring.written <- ring.written + 1;
  if ev.ts > ring.latest then ring.latest <- ev.ts

let complete ?(cat = "span") ?(args = []) ~track ~ts ~dur name =
  if Gate.enabled () then begin
    record { name; cat; track; ts; kind = Complete (max 0 dur); args };
    (* A span's end is the latest instant it touches. *)
    if ts + dur > ring.latest then ring.latest <- ts + dur
  end

let instant ?(cat = "event") ?(track = "events") ?ts name =
  if Gate.enabled () then
    let ts = match ts with Some t -> t | None -> ring.latest in
    record { name; cat; track; ts; kind = Instant; args = [] }

let with_span ?cat ~track ~now name f =
  if not (Gate.enabled ()) then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> complete ?cat ~track ~ts:t0 ~dur:(now () - t0) name) f
  end

let events () =
  let cap = Array.length ring.buf in
  let n = min ring.written cap in
  let first = ring.written - n in
  List.init n (fun i -> ring.buf.((first + i) mod cap))

let dropped () = max 0 (ring.written - Array.length ring.buf)
let last_ts () = ring.latest
