(* Latency attribution: every virtual nanosecond charged to a clock
   carries one of these cause tags (Clock.advance / Clock.wait_until
   default to Local_compute; the RDMA/NVM/core layers override at each
   charging site). The sink is a flat int array so a charge is two loads
   and a store when the gate is on, and one branch when it is off. *)

type cause =
  | Rdma_rtt
  | Rdma_bytes
  | Nic_queue
  | Nvm_media
  | Lock_wait
  | Read_retry
  | Replay_wait
  | Alloc_rpc
  | Fault_retry
  | Local_compute

let all =
  [
    Rdma_rtt;
    Rdma_bytes;
    Nic_queue;
    Nvm_media;
    Lock_wait;
    Read_retry;
    Replay_wait;
    Alloc_rpc;
    Fault_retry;
    Local_compute;
  ]

let ncauses = 10

let index = function
  | Rdma_rtt -> 0
  | Rdma_bytes -> 1
  | Nic_queue -> 2
  | Nvm_media -> 3
  | Lock_wait -> 4
  | Read_retry -> 5
  | Replay_wait -> 6
  | Alloc_rpc -> 7
  | Fault_retry -> 8
  | Local_compute -> 9

let name = function
  | Rdma_rtt -> "rdma_rtt"
  | Rdma_bytes -> "rdma_bytes"
  | Nic_queue -> "nic_queue"
  | Nvm_media -> "nvm_media"
  | Lock_wait -> "lock_wait"
  | Read_retry -> "read_retry"
  | Replay_wait -> "replay_wait"
  | Alloc_rpc -> "alloc_rpc"
  | Fault_retry -> "fault_retry"
  | Local_compute -> "local_compute"

let of_name = function
  | "rdma_rtt" -> Some Rdma_rtt
  | "rdma_bytes" -> Some Rdma_bytes
  | "nic_queue" -> Some Nic_queue
  | "nvm_media" -> Some Nvm_media
  | "lock_wait" -> Some Lock_wait
  | "read_retry" -> Some Read_retry
  | "replay_wait" -> Some Replay_wait
  | "alloc_rpc" -> Some Alloc_rpc
  | "fault_retry" -> Some Fault_retry
  | "local_compute" -> Some Local_compute
  | _ -> None

let sink = Array.make ncauses 0

let charge cause d = if Gate.enabled () && d > 0 then
    let i = index cause in
    sink.(i) <- sink.(i) + d

let get cause = sink.(index cause)
let total () = Array.fold_left ( + ) 0 sink
let reset () = Array.fill sink 0 ncauses 0

type snapshot = int array

let snapshot () = Array.copy sink

let since snap =
  List.map
    (fun c ->
      let i = index c in
      let before = if Array.length snap = ncauses then snap.(i) else 0 in
      (c, sink.(i) - before))
    all

(* Re-classify everything charged since [snap] as [cause]: the retry path
   uses this so a failed optimistic read section counts as Read_retry
   rather than as the RDMA reads it re-issued. Total charged ns is
   preserved, so conservation still holds. *)
let reattribute ~since:snap cause =
  if Gate.enabled () then begin
    let moved = ref 0 in
    List.iter
      (fun c ->
        if c <> cause then begin
          let i = index c in
          let before = if Array.length snap = ncauses then snap.(i) else 0 in
          let d = sink.(i) - before in
          if d > 0 then begin
            sink.(i) <- sink.(i) - d;
            moved := !moved + d
          end
        end)
      all;
    let i = index cause in
    sink.(i) <- sink.(i) + !moved
  end

(* -- per-clock local sinks --------------------------------------------------

   Under the verb-granular co-simulation several clocks charge into the
   global sink interleaved, so a window delta over the global sink would
   absorb other clients' causes. Each clock therefore owns a local sink;
   [local_charge] updates both, keeping the invariant that the global
   sink is the sum of all local sinks (conservation still holds
   globally), while windowed queries ([local_since]/[local_reattribute])
   see only their own clock's charges. *)

type local = int array

let local_create () = Array.make ncauses 0

let local_charge l cause d =
  if Gate.enabled () && d > 0 then begin
    let i = index cause in
    l.(i) <- l.(i) + d;
    sink.(i) <- sink.(i) + d
  end

let local_total l = Array.fold_left ( + ) 0 l
let local_snapshot l : snapshot = Array.copy l

let local_since l snap =
  List.map
    (fun c ->
      let i = index c in
      let before = if Array.length snap = ncauses then snap.(i) else 0 in
      (c, l.(i) - before))
    all

(* Like {!reattribute}, but over one clock's local window — the same
   deltas are mirrored into the global sink so it stays the sum of the
   locals. *)
let local_reattribute l ~since:snap cause =
  if Gate.enabled () then begin
    let moved = ref 0 in
    List.iter
      (fun c ->
        if c <> cause then begin
          let i = index c in
          let before = if Array.length snap = ncauses then snap.(i) else 0 in
          let d = l.(i) - before in
          if d > 0 then begin
            l.(i) <- l.(i) - d;
            sink.(i) <- sink.(i) - d;
            moved := !moved + d
          end
        end)
      all;
    let i = index cause in
    l.(i) <- l.(i) + !moved;
    sink.(i) <- sink.(i) + !moved
  end

let breakdown () =
  List.filter_map (fun c -> match get c with 0 -> None | v -> Some (c, v)) all

(* Move the accumulated sink into registry counters (attr.ns{cause=...})
   and clear it — called at the end of each harness phase so every
   snapshot carries its own attribution section. *)
let flush_to_registry () =
  List.iter
    (fun (c, v) -> Registry.add ~labels:[ ("cause", name c) ] "attr.ns" v)
    (breakdown ());
  reset ()

let to_json () =
  Json.Obj (List.map (fun c -> (name c, Json.Int (get c))) all)
