(* The global observability switch. Disabled by default: every
   instrumentation site in the stack checks this one flag before building
   labels or touching the registry, so a benchmark run with observability
   off pays a single predictable branch per site. *)

let flag = ref false
let set_enabled v = flag := v
let enabled () = !flag
