(** A minimal JSON tree: emit with escaping, parse with a recursive
    descent parser.

    The container image carries no JSON library (no [Yojson]), so the
    observability exporters carry their own. The parser exists mainly so
    tests can validate that the exporters emit well-formed documents, and
    so tooling can read traces back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit
(** Indented rendering for human consumption. *)

val parse : string -> t
(** Raises {!Parse_error} on malformed input. Numbers with a fraction or
    exponent parse as [Float], others as [Int]. *)

(** {2 Accessors} (for tests and trace tooling) *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on missing key or
    non-object. *)

val to_list : t -> t list
(** The elements of a [List]; raises [Invalid_argument] otherwise. *)

val to_int : t -> int
(** The value of an [Int] (or integral [Float]); raises otherwise. *)

val to_float : t -> float
val to_str : t -> string
