(** Latency attribution: a cause tag for every virtual nanosecond.

    [Sim.Clock] charges each forward movement of a clock into a global
    per-cause sink ({!charge} is called from [advance]/[wait_until], so
    the per-cause sums equal elapsed virtual time by construction — the
    conservation property the test suite asserts). Charging is a no-op
    while the observability gate is off. *)

type cause =
  | Rdma_rtt  (** fixed RDMA round-trip / atomic-verb latency *)
  | Rdma_bytes  (** wire serialization time, proportional to payload *)
  | Nic_queue  (** queueing behind other work on the remote NIC *)
  | Nvm_media  (** NVM media read/write time visible to the client *)
  | Lock_wait  (** acquiring the writer lock: CAS probes + spinning *)
  | Read_retry  (** optimistic read sections that failed validation *)
  | Replay_wait  (** persist fences waiting out back-end log replay *)
  | Alloc_rpc  (** management RPCs (allocation, naming, sessions) *)
  | Fault_retry
      (** transient-fault handling: verb-timeout waits, injected fabric
          delays, retry backoff and reconnect handshakes *)
  | Local_compute  (** front-end DRAM/CPU work (cache hits, buffering) *)

val all : cause list
val name : cause -> string
val of_name : string -> cause option

val charge : cause -> int -> unit
(** Add [d] ns to a cause (no-op when disabled or [d <= 0]). *)

val get : cause -> int
val total : unit -> int
val breakdown : unit -> (cause * int) list
(** Non-zero causes only. *)

val reset : unit -> unit

type snapshot

val snapshot : unit -> snapshot
(** A copy of the sink, for windowed deltas ({!since}). *)

val since : snapshot -> (cause * int) list
(** Per-cause ns charged since the snapshot (all causes). *)

val reattribute : since:snapshot -> cause -> unit
(** Re-classify everything charged since the snapshot as [cause]
    (total preserved) — how failed read-section attempts become
    [Read_retry]. *)

(** {2 Per-clock local sinks}

    Under the verb-granular co-simulation several clocks interleave
    their charges, so windowed deltas over the global sink would absorb
    other clients' causes. Each [Sim.Clock] owns a local sink;
    {!local_charge} updates both it and the global sink (which therefore
    remains the sum of all locals — global conservation is unchanged),
    while the windowed queries below see one clock only. *)

type local

val local_create : unit -> local
val local_charge : local -> cause -> int -> unit
val local_total : local -> int

val local_snapshot : local -> snapshot
val local_since : local -> snapshot -> (cause * int) list

val local_reattribute : local -> since:snapshot -> cause -> unit
(** {!reattribute} over one clock's window; the same deltas are mirrored
    into the global sink. *)

val flush_to_registry : unit -> unit
(** Move the sink into [attr.ns{cause=...}] registry counters and clear
    it (phase scoping). *)

val to_json : unit -> Json.t
