(** The span tracer: a bounded ring of timeline events keyed on
    {e simulated} time.

    Every event carries a [track] — the simulated resource it happened on
    (a client clock, a NIC timeline, the back-end CPU) — which the Chrome
    exporter maps to one thread lane each. Spans are "complete" events
    (start + duration), so a crash that unwinds a span mid-flight still
    leaves the buffer balanced: {!with_span} emits exactly one event per
    entry, exception or not. Instant events mark point occurrences (crash
    injected, torn write detected, mirror promoted).

    The ring drops the oldest events once {!set_capacity} is exceeded;
    {!dropped} reports how many. All recording is a no-op while the
    global gate is off. *)

type kind = Complete of int  (** duration in simulated ns *) | Instant

type event = {
  name : string;
  cat : string;  (** coarse taxonomy: "rdma", "core", "log", "rpc", "fault" *)
  track : string;
  ts : int;  (** simulated nanoseconds *)
  kind : kind;
  args : (string * int) list;
      (** integer annotations carried into the Chrome trace (the core
          layer attaches the per-operation attribution cause map here) *)
}

val set_capacity : int -> unit
(** Resize (and clear) the ring. Default 65536 events. *)

val reset : unit -> unit
(** Clear events and the dropped counter (works even while disabled). *)

(** {2 Recording} (no-ops while observability is disabled) *)

val complete :
  ?cat:string -> ?args:(string * int) list -> track:string -> ts:int -> dur:int -> string -> unit
(** A span known after the fact: [ts] its simulated start, [dur] its
    simulated length. [args] are integer annotations (ns by cause). *)

val instant : ?cat:string -> ?track:string -> ?ts:int -> string -> unit
(** A point event. [ts] defaults to the latest timestamp the tracer has
    seen — the right anchor for sites (e.g. the NVM device) that have no
    clock of their own. [track] defaults to ["events"]. *)

val with_span :
  ?cat:string -> track:string -> now:(unit -> int) -> string -> (unit -> 'a) -> 'a
(** [with_span ~track ~now name f] runs [f], then records a complete span
    from the entry timestamp to [now ()] — also when [f] raises, so
    crash-injection paths keep the trace balanced. Nesting works the
    obvious way: inner spans lie within their enclosing span. *)

(** {2 Reading} *)

val events : unit -> event list
(** Oldest first. *)

val dropped : unit -> int
(** Events lost to the ring cap since the last {!reset}. *)

val last_ts : unit -> int
(** Latest simulated timestamp seen by the tracer. *)
