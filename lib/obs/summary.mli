(** Aggregations over the span ring and the registry, for plain-text
    top-N reporting (the harness renders these through
    [Asym_harness.Report]). *)

type span_row = {
  sname : string;
  count : int;
  total_ns : int;
  mean_ns : float;
  max_ns : int;
}

val spans : ?top:int -> unit -> span_row list
(** Complete spans grouped by name, sorted by total simulated time,
    largest first; [top] truncates (default 15). *)

type counter_row = { cname : string; value : int }
(** [cname] is the series name with its labels rendered inline, e.g.
    ["rdma.verbs{op=write}"]. *)

val counters : ?r:Registry.t -> ?top:int -> unit -> counter_row list
(** Counters sorted by value, largest first. *)

val format_ns : int -> string
(** Human-scaled simulated duration ("1.234ms"). *)
