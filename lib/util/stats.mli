(** Small statistics toolkit for experiment reporting. *)

module Running : sig
  (** Online mean/variance accumulator (Welford). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

val mean : float array -> float
val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]]; sorts a copy. *)

module Histogram : sig
  type t

  val create : buckets:float array -> t
  (** [buckets] are upper bounds in increasing order; an implicit +inf
      bucket is appended. *)

  val add : t -> float -> unit
  val counts : t -> (float * int) array
  (** Pairs of (upper bound, count); the last bound is [infinity]. *)

  val total : t -> int

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0,100\]], linearly interpolated from
      the bucket counts (the first bucket's lower edge is taken as 0; the
      overflow bucket reports its finite lower edge). Raises
      [Invalid_argument] on an empty histogram. *)
end
