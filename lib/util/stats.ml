module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let percentile a p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty array";
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then s.(lo)
  else
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))

module Histogram = struct
  type t = { bounds : float array; counts : int array; mutable total : int }

  let create ~buckets =
    let n = Array.length buckets in
    for i = 1 to n - 1 do
      assert (buckets.(i) > buckets.(i - 1))
    done;
    { bounds = buckets; counts = Array.make (n + 1) 0; total = 0 }

  let add t x =
    let n = Array.length t.bounds in
    let rec find i = if i >= n then n else if x <= t.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t =
    Array.mapi
      (fun i c -> ((if i < Array.length t.bounds then t.bounds.(i) else infinity), c))
      t.counts

  let total t = t.total

  (* Linear interpolation inside the bucket holding the target rank. The
     lower edge of the first bucket is taken as 0 (the histograms here
     hold non-negative latencies); the open-ended overflow bucket cannot
     be interpolated, so it reports its finite lower edge. *)
  let percentile t p =
    if t.total = 0 then invalid_arg "Stats.Histogram.percentile: empty histogram";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Histogram.percentile: p out of [0,100]";
    let n = Array.length t.bounds in
    let rank = p /. 100.0 *. float_of_int t.total in
    let rec go i cum =
      if i > n then t.bounds.(n - 1)
      else
        let c = t.counts.(i) in
        if c > 0 && float_of_int (cum + c) >= rank then
          if i >= n then t.bounds.(n - 1)
          else
            let lo = if i = 0 then 0.0 else t.bounds.(i - 1) in
            let hi = t.bounds.(i) in
            let frac = (rank -. float_of_int cum) /. float_of_int c in
            lo +. (Float.max 0.0 frac *. (hi -. lo))
        else go (i + 1) (cum + c)
    in
    go 0 0
end
