(** On-media formats of AsymNVM's three log kinds (paper Figure 3).

    - {e Memory log}: low level, one entry per patched byte range
      ([flag, addr, length, value]); the back-end replays entries into the
      data area.
    - {e Transaction log}: a batch of memory-log entries framed by a header,
      a commit flag and a CRC32, appended to a session's memory-log ring by
      one [rnvm_tx_write].
    - {e Operation log}: high level, one entry per data-structure operation
      ([type, ds, opnum, parameters, checksum]); replayed by the front-end
      during recovery.

    The header extends Figure 3 with the data-structure id and the highest
    operation number the transaction covers — both needed by recovery (§7.2)
    and by the per-structure sequence numbers (§6.3); the paper stores the
    same facts in its LPN/OPN metadata.

    Values are always encoded inline so that checksums and torn-write
    detection operate on real bytes. The §4.3 optimization that replaces a
    value with a pointer into the operation log is accounted in
    {!Tx.wire_size}, which is what the simulated NIC charges for. *)

val crc_check : bool ref
(** Test-only: when set to [false], {!Tx.scan} and {!Op_entry.scan} accept
    records whose CRC32 does not match — a deliberately broken torn-write
    detector. lib/check's canary test clears it to prove the crash-point
    sweep notices a recovery path that replays corrupted records. Always
    [true] outside that test. *)

module Mem_entry : sig
  type t = {
    addr : Types.addr;
    value : bytes;
    from_op : int64 option;
        (** operation-log number that already carries this value; when set,
            the wire representation is a 12-byte pointer, not the value *)
  }

  val make : ?from_op:int64 -> addr:Types.addr -> bytes -> t
end

module Tx : sig
  type t = { ds : Types.ds_id; op_hi : int64; entries : Mem_entry.t list }

  val encode : t -> bytes
  val wire_size : t -> int
  (** Bytes the NIC actually moves, with the op-log pointer optimization. *)

  type scan_result =
    | Record of t * int  (** a valid record and the bytes it consumed *)
    | Torn  (** started but fails framing or checksum — a torn write *)
    | Wrap  (** wrap marker: continue scanning at the ring base *)
    | Empty  (** zero byte: end of written log *)

  val scan : bytes -> pos:int -> scan_result
  (** Examine the log ring contents at [pos]. *)

  val wrap_marker : bytes
end

module Op_entry : sig
  type t = { ds : Types.ds_id; opnum : int64; optype : int; params : bytes }

  val encode : t -> bytes

  type scan_result = Record of t * int | Torn | Wrap | Empty

  val scan : bytes -> pos:int -> scan_result
  val wrap_marker : bytes
end
