(** The back-end NVM node.

    Owns the NVM device, the global naming space, the slab allocator, the
    per-session log rings and the replay engine. Entirely {e passive}: it
    never initiates communication — front-ends either touch its memory with
    one-sided verbs or invoke the fixed RPC set of Table 1, and the only
    CPU it spends is replaying persisted memory logs into the data area and
    serving allocator/naming RPCs (which is why its utilization in
    Figure 11 stays under ~10%). *)

type t

val create :
  ?name:string ->
  ?max_sessions:int ->
  ?memlog_cap:int ->
  ?oplog_cap:int ->
  ?slab_size:int ->
  capacity:int ->
  Asym_sim.Latency.t ->
  t
(** Initialize a fresh back-end on a new NVM device. *)

val of_device : ?name:string -> Asym_nvm.Device.t -> Asym_sim.Latency.t -> t
(** Bring up a back-end over an existing, already-formatted device (mirror
    promotion, restart after permanent-failure recovery). Replays any
    pending logs, exactly like {!restart}. *)

val name : t -> string
val device : t -> Asym_nvm.Device.t
val nic : t -> Asym_sim.Timeline.t
val cpu : t -> Asym_sim.Timeline.t
val latency : t -> Asym_sim.Latency.t
val layout : t -> Layout.t

val attach_mirror : t -> Mirror.t -> unit
val mirrors : t -> Mirror.t list

(** {2 Failure injection} *)

val crash : ?torn_keep:int -> t -> unit
(** Crash the back-end. [torn_keep] tears the most recent NVM write down
    to its first [torn_keep] bytes (simulating a partially drained RDMA
    write). Until {!restart}, every RPC and replay raises
    {!Asym_rdma.Verbs.Failure_detected}. *)

val is_crashed : t -> bool

type session_status = Session_consistent | Session_torn_tail

val restart : t -> (Types.session_id * session_status) list
(** Reboot: reload layout, naming, allocator and session metadata from the
    media, then redo every intact memory-log transaction found past each
    session's LPN (§7.2 Case 3.a). Sessions whose log tail fails its
    checksum are reported as [Session_torn_tail] (Case 3.b) — their
    front-end must re-flush. *)

(** {2 RPC (management interface, §5.1)} *)

val rpc :
  t -> conn:Asym_rdma.Verbs.conn -> session:Types.session_id option -> Rpc_msg.request ->
  Rpc_msg.response
(** Execute one management RPC, charging the calling client two network
    round trips plus the back-end processing time (RFP model). *)

(** {2 Log ingestion (called by the front-end library)} *)

val memlog_ring : t -> session:Types.session_id -> int * int
val oplog_ring : t -> session:Types.session_id -> int * int

val drain_session : t -> session:Types.session_id -> arrival:Asym_sim.Simtime.t -> unit
(** Replay all complete transactions sitting in the session's memory-log
    ring: apply entries to the data area, bump the per-structure sequence
    number around each application (recording the conflict window), advance
    and persist the LPN and OPN, forward the stream to mirrors. Work is
    charged to the back-end CPU timeline starting at [arrival]; the caller
    is not blocked. *)

val note_heads :
  t -> session:Types.session_id -> ?memlog_head:int -> ?oplog_head:int ->
  ?next_opnum:int64 -> unit -> unit
(** Front-end libraries keep the back-end's volatile view of their append
    cursors in sync (the durable truth is the ring contents themselves). *)

val note_op_offset : t -> session:Types.session_id -> opnum:int64 -> offset:int -> unit
(** Record where an operation-log entry landed, enabling op-log ring
    garbage collection once the OPN passes it. *)

val replicate_raw : t -> at:Asym_sim.Simtime.t -> addr:Types.addr -> bytes -> unit
(** Forward bytes that a front-end wrote with a one-sided verb (operation
    logs, root CAS words) to the mirrors, so the replica image stays
    byte-identical for promotion. *)

(** {2 Concurrency support} *)

val lock_timeline : t -> Types.addr -> Asym_sim.Timeline.t
(** The contention timeline of the writer lock at [addr]. *)

val conflict_overlaps :
  t -> ds:Types.ds_id -> start_:Asym_sim.Simtime.t -> stop:Asym_sim.Simtime.t -> bool
(** Did any memory-log application to structure [ds] overlap the window?
    This is the simulation's equivalent of comparing the sequence number
    before and after an optimistic read (§6.3 Algorithm 2). *)

val seqno : t -> ds:Types.ds_id -> int64

(** {2 Recovery support (§7.2)} *)

val unreplayed_ops : t -> session:Types.session_id -> Log.Op_entry.t list
(** Operation-log records past the session's OPN — the operations whose
    memory logs never became durable and must be re-executed by the
    front-end (Cases 2.b/2.c). Lock-ahead records are excluded. *)

val abandoned_locks : t -> session:Types.session_id -> Types.addr list
(** Locks for which the session logged an acquire without a matching
    release — the lock-ahead log of §6.1. *)

val force_release_lock : t -> Types.addr -> at:Asym_sim.Simtime.t -> unit

val session_cursors : t -> session:Types.session_id -> Rpc_msg.cursors

(** {2 Statistics} *)

val replayed_txs : t -> int
val replayed_entries : t -> int

(** Memory-log frames scanned with an OPN at or below the session's
    covered cursor — retransmissions from a client retry after a lost
    ack. They are absorbed idempotently (redo entries carry absolute
    addresses); this counter makes the dedup explicit and testable. *)
val dup_replays_absorbed : t -> int
val rpcs_served : t -> int
val used_slabs : t -> int
