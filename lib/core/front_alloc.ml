exception Out_of_nvm

type backend_ops = {
  slab_size : int;
  alloc_slabs : int -> Types.addr;
  free_slabs : Types.addr -> int -> unit;
  free_slab_batch : Types.addr list -> unit;
  slab_base_of : Types.addr -> Types.addr;
}

type slab = {
  base : Types.addr;
  cls : int;  (* block size *)
  mutable free_blocks : int list;  (* offsets *)
  mutable used : int;
}

type t = {
  ops : backend_ops;
  prefetch : int;  (* slabs fetched per back-end RPC *)
  min_class : int;
  classes : int array;  (* block sizes, ascending powers of two *)
  partial : slab list ref array;  (* per class, slabs with free blocks *)
  slabs : (Types.addr, slab) Hashtbl.t;
  large : (Types.addr, int) Hashtbl.t;  (* base -> slab count *)
  mutable empty_pool : Types.addr list;
  mutable empty_count : int;
  reclaim_threshold : int;
  mutable n_alloc : int;
  mutable n_free : int;
  mutable n_slab_rpc : int;
  mutable n_leaked : int;
}

let create ?(reclaim_threshold = 64) ?(prefetch = 8) ops =
  let min_class = 16 in
  (* Size classes up to the full slab (a whole-slab "class" still benefits
     from prefetching several slabs per RPC). *)
  let rec build c acc = if c > ops.slab_size then List.rev acc else build (c * 2) (c :: acc) in
  let classes = Array.of_list (build min_class []) in
  {
    ops;
    prefetch = max 1 prefetch;
    min_class;
    classes;
    partial = Array.init (Array.length classes) (fun _ -> ref []);
    slabs = Hashtbl.create 64;
    large = Hashtbl.create 16;
    empty_pool = [];
    empty_count = 0;
    reclaim_threshold;
    n_alloc = 0;
    n_free = 0;
    n_slab_rpc = 0;
    n_leaked = 0;
  }

let class_index t size =
  let rec go i =
    if i >= Array.length t.classes then None
    else if t.classes.(i) >= size then Some i
    else go (i + 1)
  in
  go 0

let take_empty_slab t =
  match t.empty_pool with
  | base :: rest ->
      t.empty_pool <- rest;
      t.empty_count <- t.empty_count - 1;
      base
  | [] ->
      (* Amortize the RPC: fetch a contiguous run of slabs at once and
         stash the extras in the empty pool. *)
      t.n_slab_rpc <- t.n_slab_rpc + 1;
      let base, got =
        try (t.ops.alloc_slabs t.prefetch, t.prefetch)
        with Out_of_nvm when t.prefetch > 1 -> (t.ops.alloc_slabs 1, 1)
      in
      for i = got - 1 downto 1 do
        t.empty_pool <- (base + (i * t.ops.slab_size)) :: t.empty_pool;
        t.empty_count <- t.empty_count + 1
      done;
      base

let carve t base cls =
  let blocks = ref [] in
  let n = t.ops.slab_size / cls in
  for i = n - 1 downto 0 do
    blocks := (i * cls) :: !blocks
  done;
  let s = { base; cls; free_blocks = !blocks; used = 0 } in
  Hashtbl.replace t.slabs base s;
  s

let alloc t size =
  if size <= 0 then invalid_arg "Front_alloc.alloc: size <= 0";
  t.n_alloc <- t.n_alloc + 1;
  match class_index t size with
  | None ->
      (* Large object: straight to the back-end. *)
      let slabs = (size + t.ops.slab_size - 1) / t.ops.slab_size in
      t.n_slab_rpc <- t.n_slab_rpc + 1;
      let base = t.ops.alloc_slabs slabs in
      Hashtbl.replace t.large base slabs;
      base
  | Some ci -> (
      let cls = t.classes.(ci) in
      let rec pick () =
        match !(t.partial.(ci)) with
        | s :: rest ->
            if s.free_blocks = [] then begin
              t.partial.(ci) := rest;
              pick ()
            end
            else s
        | [] ->
            let s = carve t (take_empty_slab t) cls in
            t.partial.(ci) := [ s ];
            s
      in
      let s = pick () in
      match s.free_blocks with
      | [] -> assert false
      | off :: rest ->
          s.free_blocks <- rest;
          s.used <- s.used + 1;
          if rest = [] then t.partial.(ci) := List.filter (fun x -> x != s) !(t.partial.(ci));
          s.base + off)

(* Periodic reclamation (§5.2): emptied slabs pool up locally; once the
   pool exceeds the threshold, half of it goes back in one batched RPC. *)
let release_slab t s =
  Hashtbl.remove t.slabs s.base;
  t.empty_pool <- s.base :: t.empty_pool;
  t.empty_count <- t.empty_count + 1;
  if t.empty_count > t.reclaim_threshold then begin
    let keep = t.reclaim_threshold / 2 in
    let rec split i acc = function
      | rest when i = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (i - 1) (x :: acc) rest
    in
    let kept, surplus = split keep [] t.empty_pool in
    t.empty_pool <- kept;
    t.empty_count <- List.length kept;
    if surplus <> [] then t.ops.free_slab_batch surplus
  end

let free t addr ~len =
  t.n_free <- t.n_free + 1;
  match Hashtbl.find_opt t.large addr with
  | Some slabs ->
      Hashtbl.remove t.large addr;
      (* This is a back-end round trip just like the large-alloc path, so
         it must count: the Table 2 RPC totals pair every large alloc
         with its free. *)
      t.n_slab_rpc <- t.n_slab_rpc + 1;
      t.ops.free_slabs addr slabs
  | None -> (
      ignore len;
      let base = t.ops.slab_base_of addr in
      match Hashtbl.find_opt t.slabs base with
      | None ->
          (* A block allocated by a pre-crash incarnation: only slab-level
             occupancy was recovered (§5.2), so the block leaks inside its
             still-live slab. Bounded by design; counted for visibility. *)
          t.n_leaked <- t.n_leaked + 1
      | Some s ->
          let off = addr - base in
          if off mod s.cls <> 0 then invalid_arg "Front_alloc.free: misaligned block";
          let was_full = s.free_blocks = [] in
          s.free_blocks <- off :: s.free_blocks;
          s.used <- s.used - 1;
          if s.used = 0 then begin
            (match class_index t s.cls with
            | Some ci -> t.partial.(ci) := List.filter (fun x -> x != s) !(t.partial.(ci))
            | None -> ());
            release_slab t s
          end
          else if was_full then begin
            match class_index t s.cls with
            | Some ci -> t.partial.(ci) := s :: !(t.partial.(ci))
            | None -> ()
          end)

let allocations t = t.n_alloc
let frees t = t.n_free
let slab_rpcs t = t.n_slab_rpc
let leaked t = t.n_leaked
