(** Front-end DRAM page cache (§4.4).

    Maps back-end NVM pages to local DRAM copies. Three replacement
    policies are provided:
    - [Lru]: exact least-recently-used (doubly linked recency list);
    - [Rr]: random replacement;
    - [Hybrid]: the paper's policy — sample a random {e choose set} and
      evict the least recently used page of the sample. It approaches LRU's
      miss ratio at RR's bookkeeping cost.

    Dirty data never needs writing back: writes travel through the memory
    log, the cache only ever holds a coherent copy (the front-end patches
    cached pages as it appends memory logs). *)

type policy = Lru | Rr | Hybrid

val policy_name : policy -> string

type t

val create :
  ?choose_set:int -> policy:policy -> page_size:int -> capacity_bytes:int -> Asym_util.Rng.t -> t

val page_size : t -> int
val capacity_pages : t -> int
val length : t -> int

val find : t -> int -> bytes option
(** [find t page_id] returns the cached page and refreshes its recency. *)

val insert : t -> int -> bytes -> unit
(** Insert a page, evicting per policy if full. *)

val patch : t -> addr:Types.addr -> bytes -> unit
(** Overwrite the cached bytes covering [addr], where present. *)

val clear : t -> unit

val hits : t -> int
val misses : t -> int
(** {!find} successes/failures since creation (or {!reset_stats}). *)

val relinks : t -> int
(** Recency-list moves performed by touches. A hit on the page that is
    already MRU must not relink (the fast path the recency list exists
    for), so repeated hits on one page leave this flat. *)

val reset_stats : t -> unit
