open Asym_util

(* Framing bytes. A zeroed ring byte (0x00) means "nothing written here",
   so every real frame starts with a distinctive tag. *)
let tag_tx = 0xB5
let tag_op = 0xA7
let tag_wrap = 0xFF
let tag_commit = 0xC3
let flag_inline = 0x01
let flag_op_pointer = 0x02

(* Test-only fault: when cleared, [scan] accepts records whose checksum
   does not match, i.e. torn-write detection is broken. lib/check uses it
   to prove the crash-point sweep can fail. *)
let crc_check = ref true

module Mem_entry = struct
  type t = { addr : Types.addr; value : bytes; from_op : int64 option }

  let make ?from_op ~addr value = { addr; value; from_op }
end

module Tx = struct
  type t = { ds : Types.ds_id; op_hi : int64; entries : Mem_entry.t list }

  let encode t =
    let e = Codec.Enc.create ~capacity:256 () in
    Codec.Enc.u8 e tag_tx;
    Codec.Enc.u32i e t.ds;
    Codec.Enc.u64 e t.op_hi;
    Codec.Enc.u32i e (List.length t.entries);
    List.iter
      (fun { Mem_entry.addr; value; from_op } ->
        (* A pointer entry must carry the op number it points at — the
           old encoding dropped it and [scan] fabricated [Some 0L]. *)
        (match from_op with
        | Some opn ->
            Codec.Enc.u8 e flag_op_pointer;
            Codec.Enc.u64 e opn
        | None -> Codec.Enc.u8 e flag_inline);
        Codec.Enc.u64i e addr;
        Codec.Enc.u32i e (Bytes.length value);
        Codec.Enc.bytes e value)
      t.entries;
    Codec.Enc.u8 e tag_commit;
    let body = Codec.Enc.to_bytes e in
    let crc = Crc32.digest_bytes body in
    let e2 = Codec.Enc.create ~capacity:(Bytes.length body + 4) () in
    Codec.Enc.bytes e2 body;
    Codec.Enc.u32 e2 crc;
    let raw = Codec.Enc.to_bytes e2 in
    if Asym_obs.enabled () then begin
      Asym_obs.Registry.inc "log.tx_encoded";
      Asym_obs.Registry.add "log.tx_encoded_bytes" (Bytes.length raw)
    end;
    raw

  (* Wire cost, not stored size. Header (1+4+8+4) + per entry (1+8+4 +
     payload) + commit (1) + crc (4). An entry whose value is already
     durable in the operation log ships a 12-byte pointer (op number +
     offset) instead of the value — the stored frame additionally spends
     8 bytes on the op number, but the wire charges only the pointer. *)
  let wire_size t =
    let entry_payload { Mem_entry.value; from_op; _ } =
      match from_op with
      | Some _ -> min 12 (Bytes.length value)
      | None -> Bytes.length value
    in
    17
    + List.fold_left (fun acc en -> acc + 13 + entry_payload en) 0 t.entries
    + 5

  type scan_result = Record of t * int | Torn | Wrap | Empty

  let scan buf ~pos =
    if pos >= Bytes.length buf then Empty
    else
      match Bytes.get_uint8 buf pos with
      | 0x00 -> Empty
      | b when b = tag_wrap -> Wrap
      | b when b <> tag_tx -> Torn
      | _ -> (
          try
            let d = Codec.Dec.of_bytes ~pos buf in
            let _tag = Codec.Dec.u8 d in
            let ds = Codec.Dec.u32i d in
            let op_hi = Codec.Dec.u64 d in
            let n = Codec.Dec.u32i d in
            if n > 1_000_000 then raise Exit;
            let entries = ref [] in
            for _ = 1 to n do
              let flag = Codec.Dec.u8 d in
              if flag <> flag_inline && flag <> flag_op_pointer then raise Exit;
              let from_op = if flag = flag_op_pointer then Some (Codec.Dec.u64 d) else None in
              let addr = Codec.Dec.u64i d in
              let len = Codec.Dec.u32i d in
              if len > Bytes.length buf then raise Exit;
              let value = Codec.Dec.bytes d len in
              entries := { Mem_entry.addr; value; from_op } :: !entries
            done;
            if Codec.Dec.u8 d <> tag_commit then raise Exit;
            let body_len = Codec.Dec.pos d - pos in
            let crc = Codec.Dec.u32 d in
            let actual = Crc32.digest buf ~pos ~len:body_len in
            if !crc_check && crc <> actual then Torn
            else
              Record
                ( { ds; op_hi; entries = List.rev !entries },
                  Codec.Dec.pos d - pos )
          with Exit | Invalid_argument _ -> Torn)

  let wrap_marker = Bytes.make 1 (Char.chr tag_wrap)
end

module Op_entry = struct
  type t = { ds : Types.ds_id; opnum : int64; optype : int; params : bytes }

  let encode t =
    let e = Codec.Enc.create ~capacity:64 () in
    Codec.Enc.u8 e tag_op;
    Codec.Enc.u32i e t.ds;
    Codec.Enc.u64 e t.opnum;
    Codec.Enc.u8 e t.optype;
    Codec.Enc.u32i e (Bytes.length t.params);
    Codec.Enc.bytes e t.params;
    let body = Codec.Enc.to_bytes e in
    let crc = Crc32.digest_bytes body in
    let e2 = Codec.Enc.create ~capacity:(Bytes.length body + 4) () in
    Codec.Enc.bytes e2 body;
    Codec.Enc.u32 e2 crc;
    let raw = Codec.Enc.to_bytes e2 in
    if Asym_obs.enabled () then begin
      Asym_obs.Registry.inc "log.op_encoded";
      Asym_obs.Registry.add "log.op_encoded_bytes" (Bytes.length raw)
    end;
    raw

  type scan_result = Record of t * int | Torn | Wrap | Empty

  let scan buf ~pos =
    if pos >= Bytes.length buf then Empty
    else
      match Bytes.get_uint8 buf pos with
      | 0x00 -> Empty
      | b when b = tag_wrap -> Wrap
      | b when b <> tag_op -> Torn
      | _ -> (
          try
            let d = Codec.Dec.of_bytes ~pos buf in
            let _tag = Codec.Dec.u8 d in
            let ds = Codec.Dec.u32i d in
            let opnum = Codec.Dec.u64 d in
            let optype = Codec.Dec.u8 d in
            let len = Codec.Dec.u32i d in
            if len > Bytes.length buf then raise Exit;
            let params = Codec.Dec.bytes d len in
            let body_len = Codec.Dec.pos d - pos in
            let crc = Codec.Dec.u32 d in
            let actual = Crc32.digest buf ~pos ~len:body_len in
            if !crc_check && crc <> actual then Torn
            else Record ({ ds; opnum; optype; params }, Codec.Dec.pos d - pos)
          with Exit | Invalid_argument _ -> Torn)

  let wrap_marker = Bytes.make 1 (Char.chr tag_wrap)
end
