open Asym_sim
open Asym_nvm
open Asym_rdma

(* Operation-log record types >= 250 are framework-internal (lock-ahead
   records, §6.1); data-structure operations use 0..249. *)
let optype_lock_acquire = 254
let optype_lock_release = 253
let internal_optype ty = ty >= 250

type ds_record = {
  ds : Types.ds_id;
  ds_name : string;
  root : Types.addr;
  lock : Types.addr;
  sn : Types.addr;
  conflict : Conflict.t;
}

type session = {
  sid : Types.session_id;
  mutable lpn : int;  (* ring-relative replay cursor, persisted *)
  mutable opn_covered : int64;  (* persisted *)
  mutable oplog_tail : int;  (* ring-relative GC cursor, persisted *)
  mutable memlog_head : int;  (* volatile append cursor (truth is ring bytes) *)
  mutable oplog_head : int;  (* volatile *)
  mutable next_opnum : int64;  (* volatile *)
  op_index : (int64 * int) Queue.t;  (* opnum -> ring offset, volatile *)
}

type session_status = Session_consistent | Session_torn_tail

type t = {
  bname : string;
  dev : Device.t;
  lat : Latency.t;
  nic_tl : Timeline.t;
  cpu_tl : Timeline.t;
  mutable layout : Layout.t;
  mutable naming : Naming.t;
  mutable alloc : Backend_alloc.t;
  mutable meta_cursor : int;
  sessions : session option array;
  ds_by_id : (Types.ds_id, ds_record) Hashtbl.t;
  ds_by_name : (string, ds_record) Hashtbl.t;
  locks : (Types.addr, Timeline.t) Hashtbl.t;
  mutable mirror_list : Mirror.t list;
  mutable next_ds : int;
  mutable crashed : bool;
  mutable n_rpcs : int;
  mutable n_replayed_txs : int;
  mutable n_replayed_entries : int;
  mutable n_dup_replays : int;
}

let rpc_base_ns = 400

let name t = t.bname
let device t = t.dev
let nic t = t.nic_tl
let cpu t = t.cpu_tl
let latency t = t.lat
let layout t = t.layout
let mirrors t = t.mirror_list
let is_crashed t = t.crashed
let replayed_txs t = t.n_replayed_txs
let replayed_entries t = t.n_replayed_entries
let dup_replays_absorbed t = t.n_dup_replays
let rpcs_served t = t.n_rpcs
let used_slabs t = Backend_alloc.used_slabs t.alloc

let check_alive t = if t.crashed then raise (Verbs.Failure_detected t.bname)

(* -- persistence helpers ---------------------------------------------- *)

(* Replicate a write to all mirrors, charging the back-end NIC. *)
let repl t ~at ~addr b =
  List.iter (fun m -> Mirror.replicate m ~from_nic:t.nic_tl ~at ~addr b) t.mirror_list

(* Functional-only mirror update for bytes that travel piggybacked inside
   an already-charged replica message (e.g. data-area entries contained in
   a forwarded transaction log). *)
let repl_uncharged t ~addr b =
  List.iter (fun m -> Device.write (Mirror.device m) ~addr b) t.mirror_list

let write_word t ~at addr v =
  Device.write_u64 t.dev ~addr v;
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  ignore at;
  repl_uncharged t ~addr b

(* -- session slots ------------------------------------------------------ *)

let slot_lpn = 0
let slot_opn = 8
let slot_tail = 16
let slot_inuse = 24

let persist_session t ~at s =
  let base = Layout.session_slot t.layout ~session:s.sid in
  write_word t ~at (base + slot_lpn) (Int64.of_int s.lpn);
  write_word t ~at (base + slot_opn) s.opn_covered;
  write_word t ~at (base + slot_tail) (Int64.of_int s.oplog_tail)

let load_session t sid =
  let base = Layout.session_slot t.layout ~session:sid in
  let inuse = Device.read_u64 t.dev ~addr:(base + slot_inuse) in
  if inuse = 0L then None
  else
    Some
      {
        sid;
        lpn = Int64.to_int (Device.read_u64 t.dev ~addr:(base + slot_lpn));
        opn_covered = Device.read_u64 t.dev ~addr:(base + slot_opn);
        oplog_tail = Int64.to_int (Device.read_u64 t.dev ~addr:(base + slot_tail));
        memlog_head = 0;
        oplog_head = 0;
        next_opnum = 1L;
        op_index = Queue.create ();
      }

let get_session t sid =
  match t.sessions.(sid) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Backend %s: no such session %d" t.bname sid)

(* -- construction ------------------------------------------------------- *)

let create ?(name = "backend") ?(max_sessions = 8) ?(memlog_cap = 4 * 1024 * 1024)
    ?(oplog_cap = 2 * 1024 * 1024) ?(slab_size = 4096) ~capacity lat =
  let dev = Device.create ~name:(name ^ ".nvm") ~capacity lat in
  let layout = Layout.compute ~memlog_cap ~oplog_cap ~slab_size ~capacity ~max_sessions () in
  Layout.store dev layout;
  let naming = Naming.create dev ~base:layout.Layout.naming_base ~len:layout.Layout.naming_len in
  let alloc = Backend_alloc.create dev layout in
  Device.write_u64 dev ~addr:layout.Layout.meta_base 0L;
  (* Mark all session slots unused. *)
  for i = 0 to max_sessions - 1 do
    Device.write dev
      ~addr:(Layout.session_slot layout ~session:i)
      (Bytes.make Layout.session_slot_len '\000')
  done;
  {
    bname = name;
    dev;
    lat;
    nic_tl = Timeline.create ~name:(name ^ ".nic") ();
    cpu_tl = Timeline.create ~name:(name ^ ".cpu") ();
    layout;
    naming;
    alloc;
    meta_cursor = 0;
    sessions = Array.make max_sessions None;
    ds_by_id = Hashtbl.create 16;
    ds_by_name = Hashtbl.create 16;
    locks = Hashtbl.create 16;
    mirror_list = [];
    next_ds = 1;
    crashed = false;
    n_rpcs = 0;
    n_replayed_txs = 0;
    n_replayed_entries = 0;
    n_dup_replays = 0;
  }

let attach_mirror t m =
  if Device.capacity (Mirror.device m) <> Device.capacity t.dev then
    invalid_arg "Backend.attach_mirror: capacity mismatch";
  (* Bring the mirror's image up to date with a full synchronization. *)
  Device.load (Mirror.device m) (Device.snapshot t.dev);
  t.mirror_list <- m :: t.mirror_list

(* -- ds registry -------------------------------------------------------- *)

let register_ds_record t ~ds ~ds_name ~root ~lock ~sn =
  let r = { ds; ds_name; root; lock; sn; conflict = Conflict.create () } in
  Hashtbl.replace t.ds_by_id ds r;
  Hashtbl.replace t.ds_by_name ds_name r;
  r

let rebuild_ds_registry t =
  Hashtbl.reset t.ds_by_id;
  Hashtbl.reset t.ds_by_name;
  t.next_ds <- 1;
  List.iter
    (fun (key, _kind, addr) ->
      match Filename.check_suffix key "!ds" with
      | false -> ()
      | true ->
          let ds_name = Filename.chop_suffix key "!ds" in
          let ds = addr in
          let get suffix =
            match Naming.find t.naming (ds_name ^ suffix) with
            | Some (_, a) -> a
            | None -> failwith ("Backend: missing naming entry " ^ ds_name ^ suffix)
          in
          ignore (register_ds_record t ~ds ~ds_name ~root:(get "!root") ~lock:(get "!lock") ~sn:(get "!sn"));
          if ds >= t.next_ds then t.next_ds <- ds + 1)
    (Naming.to_list t.naming)

(* -- memory-log replay -------------------------------------------------- *)

let apply_tx t ~at ~ring_base ~ring_off (tx : Log.Tx.t) raw =
  (* Cost: per-entry CPU + NVM media, plus the two sequence-number bumps. *)
  let entries = tx.Log.Tx.entries in
  let media =
    List.fold_left
      (fun acc { Log.Mem_entry.value; _ } ->
        acc + Latency.nvm_write_cost t.lat (Bytes.length value))
      0 entries
  in
  let dur =
    (t.lat.Latency.cpu_entry_ns * List.length entries)
    + media
    + (2 * Latency.nvm_write_cost t.lat 8)
  in
  let start = Timeline.acquire t.cpu_tl ~at ~dur in
  let stop = start + dur in
  if Asym_obs.enabled () then begin
    Asym_obs.Registry.inc "log.replayed_txs";
    Asym_obs.Registry.add "log.replayed_entries" (List.length entries);
    Asym_obs.Registry.add "log.replayed_bytes" (Bytes.length raw);
    Asym_obs.Span.complete ~cat:"log" ~track:(Timeline.name t.cpu_tl) ~ts:start ~dur
      "log.replay_tx"
  end;
  (match Hashtbl.find_opt t.ds_by_id tx.Log.Tx.ds with
  | Some r ->
      ignore (Device.fetch_add t.dev ~addr:r.sn 1L);
      Conflict.record r.conflict ~start_:start ~stop;
      List.iter
        (fun { Log.Mem_entry.addr; value; _ } ->
          Device.write t.dev ~addr value;
          repl_uncharged t ~addr value)
        entries;
      ignore (Device.fetch_add t.dev ~addr:r.sn 1L)
  | None ->
      List.iter
        (fun { Log.Mem_entry.addr; value; _ } ->
          Device.write t.dev ~addr value;
          repl_uncharged t ~addr value)
        entries);
  (* Forward the log record itself to the mirrors (one charged message);
     the data-area entry writes above piggyback inside it. *)
  repl t ~at:stop ~addr:(ring_base + ring_off) raw;
  t.n_replayed_txs <- t.n_replayed_txs + 1;
  t.n_replayed_entries <- t.n_replayed_entries + List.length entries;
  stop

let gc_oplog t ~at s =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    match Queue.peek_opt s.op_index with
    | Some (opnum, _) when opnum <= s.opn_covered ->
        let _, off = Queue.pop s.op_index in
        ignore off;
        changed := true
    | _ -> continue_ := false
  done;
  if !changed then begin
    (match Queue.peek_opt s.op_index with
    | Some (_, off) -> s.oplog_tail <- off
    | None -> s.oplog_tail <- s.oplog_head);
    persist_session t ~at s
  end

(* Zero a consumed region of a log ring: log truncation. Keeping consumed
   and never-written ring bytes zero is what lets a post-crash scan stop at
   the first Empty byte instead of tripping over stale records from a
   previous ring lap. *)
let truncate_ring t ~ring_base ~off ~len =
  let z = Bytes.make len '\000' in
  Device.write t.dev ~addr:(ring_base + off) z;
  repl_uncharged t ~addr:(ring_base + off) z

(* Read a record-sized window at a ring position, growing it if a record
   happens to be larger than the initial guess. Returns the scan result. *)
let scan_at t ~ring_base ~cap ~pos scanner =
  let rec go len =
    let len = min len (cap - pos) in
    let chunk = Device.read t.dev ~addr:(ring_base + pos) ~len in
    match scanner chunk with
    | `Torn when len < cap - pos -> go (len * 4)
    | r -> (r, chunk)
  in
  go 16_384

(* Replay every complete transaction sitting past the session's LPN, until
   the scan hits the zeroed frontier (Empty) or a torn record. Consumed
   bytes are zeroed; LPN/OPN are persisted. Returns [true] on a torn tail. *)
let replay_pending t ~at s =
  let ring_base, cap = Layout.memlog_region t.layout ~session:s.sid in
  let time = ref at in
  let torn = ref false in
  let continue_ = ref true in
  while !continue_ do
    let pos = s.lpn in
    let result, chunk =
      scan_at t ~ring_base ~cap ~pos (fun chunk ->
          match Log.Tx.scan chunk ~pos:0 with
          | Log.Tx.Record (tx, consumed) -> `Record (tx, consumed)
          | Log.Tx.Wrap -> `Wrap
          | Log.Tx.Empty -> `Empty
          | Log.Tx.Torn -> `Torn)
    in
    match result with
    | `Record (tx, consumed) ->
        let raw = Bytes.sub chunk 0 consumed in
        (* Dedup check: a frame at or below the covered OPN is a
           retransmission of an already-applied transaction (a client
           retry after a lost ack, or a re-drain racing a reconnect).
           Absorbing it is safe — entries are absolute-address redo
           records, so re-applying is idempotent — but it must never
           move the covered OPN backwards. *)
        let covered_before = s.opn_covered in
        if tx.Log.Tx.entries <> [] && Int64.compare tx.Log.Tx.op_hi covered_before <= 0 then begin
          t.n_dup_replays <- t.n_dup_replays + 1;
          if Asym_obs.enabled () then Asym_obs.Registry.inc "log.dup_replays"
        end;
        time := apply_tx t ~at:!time ~ring_base ~ring_off:pos tx raw;
        if Int64.compare tx.Log.Tx.op_hi s.opn_covered > 0 then
          s.opn_covered <- tx.Log.Tx.op_hi;
        assert (Int64.compare s.opn_covered covered_before >= 0);
        truncate_ring t ~ring_base ~off:pos ~len:consumed;
        s.lpn <- (pos + consumed) mod cap
    | `Wrap ->
        truncate_ring t ~ring_base ~off:pos ~len:1;
        s.lpn <- 0
    | `Empty -> continue_ := false
    | `Torn ->
        torn := true;
        Asym_obs.Span.instant ~cat:"fault" ~track:t.bname ~ts:!time "log.torn_tail";
        continue_ := false
  done;
  persist_session t ~at:!time s;
  gc_oplog t ~at:!time s;
  !torn

let drain_session t ~session ~arrival =
  check_alive t;
  let s = get_session t session in
  ignore (replay_pending t ~at:arrival s)

(* -- front-end cursor notifications ------------------------------------ *)

let note_heads t ~session ?memlog_head ?oplog_head ?next_opnum () =
  let s = get_session t session in
  (match memlog_head with Some v -> s.memlog_head <- v | None -> ());
  (match oplog_head with Some v -> s.oplog_head <- v | None -> ());
  match next_opnum with Some v -> s.next_opnum <- v | None -> ()

let note_op_offset t ~session ~opnum ~offset =
  let s = get_session t session in
  Queue.push (opnum, offset) s.op_index

let replicate_raw t ~at ~addr b = repl t ~at ~addr b

(* -- locks and conflicts ------------------------------------------------ *)

let lock_timeline t addr =
  match Hashtbl.find_opt t.locks addr with
  | Some tl -> tl
  | None ->
      let tl = Timeline.create ~name:(Printf.sprintf "lock@%#x" addr) () in
      Hashtbl.replace t.locks addr tl;
      tl

let conflict_overlaps t ~ds ~start_ ~stop =
  match Hashtbl.find_opt t.ds_by_id ds with
  | Some r -> Conflict.overlaps r.conflict ~start_ ~stop
  | None -> false

let seqno t ~ds =
  match Hashtbl.find_opt t.ds_by_id ds with
  | Some r -> Device.read_u64 t.dev ~addr:r.sn
  | None -> 0L

(* -- ring regions -------------------------------------------------------- *)

let memlog_ring t ~session = Layout.memlog_region t.layout ~session
let oplog_ring t ~session = Layout.oplog_region t.layout ~session

(* -- op-log scanning (recovery) ----------------------------------------- *)

let scan_oplog t s =
  let ring_base, cap = Layout.oplog_region t.layout ~session:s.sid in
  let ring = Device.read t.dev ~addr:ring_base ~len:cap in
  let records = ref [] in
  let pos = ref s.oplog_tail in
  let head = ref s.oplog_tail in
  let next_opnum = ref 1L in
  let continue_ = ref true in
  while !continue_ do
    match Log.Op_entry.scan ring ~pos:!pos with
    | Log.Op_entry.Record (op, consumed) ->
        records := (op, !pos) :: !records;
        if Int64.compare op.Log.Op_entry.opnum !next_opnum >= 0 then
          next_opnum := Int64.add op.Log.Op_entry.opnum 1L;
        pos := !pos + consumed;
        head := !pos
    | Log.Op_entry.Wrap -> pos := 0
    | Log.Op_entry.Empty | Log.Op_entry.Torn -> continue_ := false
  done;
  (List.rev !records, !head, !next_opnum)

let unreplayed_ops t ~session =
  check_alive t;
  let s = get_session t session in
  let records, _, _ = scan_oplog t s in
  let ops =
    records
    |> List.filter_map (fun (op, _) ->
           if
             (not (internal_optype op.Log.Op_entry.optype))
             && Int64.compare op.Log.Op_entry.opnum s.opn_covered > 0
           then Some op
           else None)
  in
  (* Recovery re-executes these: a duplicated opnum here would double-apply
     an operation, so the stream must be strictly increasing. (A retried
     op-log append lands at the same ring offset — positional idempotence —
     which is exactly what this assertion pins down.) *)
  ignore
    (List.fold_left
       (fun last op ->
         assert (Int64.compare op.Log.Op_entry.opnum last > 0);
         op.Log.Op_entry.opnum)
       s.opn_covered ops);
  ops

let abandoned_locks t ~session =
  check_alive t;
  let s = get_session t session in
  let records, _, _ = scan_oplog t s in
  let held = Hashtbl.create 4 in
  List.iter
    (fun (op, _) ->
      let ty = op.Log.Op_entry.optype in
      if ty = optype_lock_acquire || ty = optype_lock_release then begin
        let addr = Bytes.get_int64_le op.Log.Op_entry.params 0 |> Int64.to_int in
        if ty = optype_lock_acquire then Hashtbl.replace held addr ()
        else Hashtbl.remove held addr
      end)
    records;
  Hashtbl.fold (fun addr () acc -> addr :: acc) held []

let force_release_lock t addr ~at =
  Device.write_u64 t.dev ~addr 0L;
  Timeline.release (lock_timeline t addr) ~at

let session_cursors t ~session =
  let s = get_session t session in
  {
    Rpc_msg.memlog_head = s.memlog_head;
    oplog_head = s.oplog_head;
    opn_covered = s.opn_covered;
    next_opnum = s.next_opnum;
  }

(* -- crash and restart --------------------------------------------------- *)

let crash ?torn_keep t =
  (match torn_keep with Some keep -> Device.tear_last_write t.dev ~keep | None -> ());
  t.crashed <- true;
  Asym_obs.Span.instant ~cat:"fault" ~track:t.bname "backend.crash"

let restart t =
  Asym_obs.Span.instant ~cat:"fault" ~track:t.bname "backend.restart";
  Device.crash_restart t.dev;
  t.layout <- Layout.load t.dev;
  t.naming <- Naming.load t.dev ~base:t.layout.Layout.naming_base ~len:t.layout.Layout.naming_len;
  t.alloc <- Backend_alloc.load t.dev t.layout;
  t.meta_cursor <- Int64.to_int (Device.read_u64 t.dev ~addr:t.layout.Layout.meta_base);
  rebuild_ds_registry t;
  Hashtbl.reset t.locks;
  t.crashed <- false;
  let statuses = ref [] in
  for sid = 0 to t.layout.Layout.max_sessions - 1 do
    match load_session t sid with
    | None -> t.sessions.(sid) <- None
    | Some s ->
        t.sessions.(sid) <- Some s;
        (* Redo every intact transaction past the LPN. Replay is
           idempotent: entries are absolute-address redo records. *)
        let torn = replay_pending t ~at:0 s in
        s.memlog_head <- s.lpn;
        let records, op_head, next_opnum = scan_oplog t s in
        s.oplog_head <- op_head;
        (* The ring scan under-counts when GC already reclaimed every
           covered record: a fresh opnum must still exceed [opn_covered],
           or ops logged after this restart are indistinguishable from
           covered ones and recovery silently drops them. *)
        s.next_opnum <-
          (let floor_ = Int64.add s.opn_covered 1L in
           if Int64.compare next_opnum floor_ < 0 then floor_ else next_opnum);
        Queue.clear s.op_index;
        List.iter
          (fun (op, off) ->
            if Int64.compare op.Log.Op_entry.opnum s.opn_covered > 0 then
              Queue.push (op.Log.Op_entry.opnum, off) s.op_index)
          records;
        statuses :=
          (sid, if torn then Session_torn_tail else Session_consistent) :: !statuses
  done;
  List.rev !statuses

let of_device ?(name = "backend") dev lat =
  let layout = Layout.load dev in
  let t =
    {
      bname = name;
      dev;
      lat;
      nic_tl = Timeline.create ~name:(name ^ ".nic") ();
      cpu_tl = Timeline.create ~name:(name ^ ".cpu") ();
      layout;
      naming = Naming.load dev ~base:layout.Layout.naming_base ~len:layout.Layout.naming_len;
      alloc = Backend_alloc.load dev layout;
      meta_cursor = 0;
      sessions = Array.make layout.Layout.max_sessions None;
      ds_by_id = Hashtbl.create 16;
      ds_by_name = Hashtbl.create 16;
      locks = Hashtbl.create 16;
      mirror_list = [];
      next_ds = 1;
      crashed = false;
      n_rpcs = 0;
      n_replayed_txs = 0;
      n_replayed_entries = 0;
      n_dup_replays = 0;
    }
  in
  ignore (restart t);
  t

(* -- RPC ----------------------------------------------------------------- *)

let alloc_meta t ~at len =
  let len = (len + 7) / 8 * 8 in
  let base = t.layout.Layout.meta_base + 8 in
  if t.meta_cursor + len > t.layout.Layout.meta_len - 8 then None
  else begin
    let addr = base + t.meta_cursor in
    t.meta_cursor <- t.meta_cursor + len;
    Device.write t.dev ~addr (Bytes.make len '\000');
    write_word t ~at t.layout.Layout.meta_base (Int64.of_int t.meta_cursor);
    Some addr
  end

let fresh_session t ~at =
  let rec find i =
    if i >= t.layout.Layout.max_sessions then None
    else if t.sessions.(i) = None then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some sid ->
      let s =
        {
          sid;
          lpn = 0;
          opn_covered = 0L;
          oplog_tail = 0;
          memlog_head = 0;
          oplog_head = 0;
          next_opnum = 1L;
          op_index = Queue.create ();
        }
      in
      t.sessions.(sid) <- Some s;
      let base = Layout.session_slot t.layout ~session:sid in
      write_word t ~at (base + slot_inuse) 1L;
      persist_session t ~at s;
      (* Zero the session's rings so scans terminate at Empty. *)
      let mbase, mcap = Layout.memlog_region t.layout ~session:sid in
      Device.write t.dev ~addr:mbase (Bytes.make mcap '\000');
      let obase, ocap = Layout.oplog_region t.layout ~session:sid in
      Device.write t.dev ~addr:obase (Bytes.make ocap '\000');
      repl_uncharged t ~addr:mbase (Bytes.make mcap '\000');
      repl_uncharged t ~addr:obase (Bytes.make ocap '\000');
      Some sid

let handle_register_ds t ~at ds_name =
  match Hashtbl.find_opt t.ds_by_name ds_name with
  | Some r -> Rpc_msg.R_handle { ds = r.ds; root = r.root; lock = r.lock; sn = r.sn }
  | None -> (
      let alloc3 () =
        match (alloc_meta t ~at 8, alloc_meta t ~at 8, alloc_meta t ~at 8) with
        | Some a, Some b, Some c -> Some (a, b, c)
        | _ -> None
      in
      match alloc3 () with
      | None -> Rpc_msg.R_error "meta heap exhausted"
      | Some (root, lock, sn) ->
          let ds = t.next_ds in
          t.next_ds <- ds + 1;
          Naming.set t.naming (ds_name ^ "!ds") Types.Meta ds;
          Naming.set t.naming (ds_name ^ "!root") Types.Root root;
          Naming.set t.naming (ds_name ^ "!lock") Types.Lock lock;
          Naming.set t.naming (ds_name ^ "!sn") Types.Seqno sn;
          let nb =
            Device.read t.dev ~addr:t.layout.Layout.naming_base
              ~len:(Naming.persisted_len t.naming)
          in
          repl t ~at ~addr:t.layout.Layout.naming_base nb;
          ignore (register_ds_record t ~ds ~ds_name ~root ~lock ~sn);
          Rpc_msg.R_handle { ds; root; lock; sn })

let handle t ~at ~session req =
  match req with
  | Rpc_msg.Open_session { reuse = Some sid; _ } ->
      if sid < 0 || sid >= t.layout.Layout.max_sessions || t.sessions.(sid) = None then
        Rpc_msg.R_error "no such session"
      else Rpc_msg.R_session sid
  | Rpc_msg.Open_session { reuse = None; _ } -> (
      match fresh_session t ~at with
      | Some sid -> Rpc_msg.R_session sid
      | None -> Rpc_msg.R_error "no free session slots")
  | Rpc_msg.Close_session -> (
      match session with
      | None -> Rpc_msg.R_error "no session"
      | Some sid ->
          t.sessions.(sid) <- None;
          let base = Layout.session_slot t.layout ~session:sid in
          write_word t ~at (base + slot_inuse) 0L;
          Rpc_msg.R_unit)
  | Rpc_msg.Malloc { slabs } -> (
      match Backend_alloc.alloc t.alloc ~slabs with
      | Some addr ->
          (* Replicate the touched bitmap bytes. *)
          let s = Layout.slab_index t.layout addr in
          let lo = s / 8 and hi = (s + slabs) / 8 in
          let b =
            Device.read t.dev ~addr:(t.layout.Layout.bitmap_base + lo) ~len:(hi - lo + 1)
          in
          repl t ~at ~addr:(t.layout.Layout.bitmap_base + lo) b;
          Rpc_msg.R_addr addr
      | None -> Rpc_msg.R_error "out of NVM slabs")
  | Rpc_msg.Free { addr; slabs } ->
      Backend_alloc.free t.alloc ~addr ~slabs;
      let s = Layout.slab_index t.layout addr in
      let lo = s / 8 and hi = (s + slabs) / 8 in
      let b = Device.read t.dev ~addr:(t.layout.Layout.bitmap_base + lo) ~len:(hi - lo + 1) in
      repl t ~at ~addr:(t.layout.Layout.bitmap_base + lo) b;
      Rpc_msg.R_unit
  | Rpc_msg.Free_batch { addrs } ->
      List.iter (fun addr -> Backend_alloc.free t.alloc ~addr ~slabs:1) addrs;
      (* Replicate the whole bitmap once: reclamation is batched and rare. *)
      let b =
        Device.read t.dev ~addr:t.layout.Layout.bitmap_base ~len:t.layout.Layout.bitmap_len
      in
      repl t ~at ~addr:t.layout.Layout.bitmap_base b;
      Rpc_msg.R_unit
  | Rpc_msg.Alloc_meta { len } -> (
      match alloc_meta t ~at len with
      | Some addr -> Rpc_msg.R_addr addr
      | None -> Rpc_msg.R_error "meta heap exhausted")
  | Rpc_msg.Name_set { name; kind; addr } ->
      Naming.set t.naming name kind addr;
      let nb =
        Device.read t.dev ~addr:t.layout.Layout.naming_base ~len:(Naming.persisted_len t.naming)
      in
      repl t ~at ~addr:t.layout.Layout.naming_base nb;
      Rpc_msg.R_unit
  | Rpc_msg.Name_get { name } -> Rpc_msg.R_name (Naming.find t.naming name)
  | Rpc_msg.Register_ds { name } -> handle_register_ds t ~at name
  | Rpc_msg.Get_cursors -> (
      match session with
      | None -> Rpc_msg.R_error "no session"
      | Some sid -> Rpc_msg.R_cursors (session_cursors t ~session:sid))

let req_label = function
  | Rpc_msg.Open_session _ -> "open_session"
  | Rpc_msg.Close_session -> "close_session"
  | Rpc_msg.Malloc _ -> "malloc"
  | Rpc_msg.Free _ -> "free"
  | Rpc_msg.Free_batch _ -> "free_batch"
  | Rpc_msg.Alloc_meta _ -> "alloc_meta"
  | Rpc_msg.Name_set _ -> "name_set"
  | Rpc_msg.Name_get _ -> "name_get"
  | Rpc_msg.Register_ds _ -> "register_ds"
  | Rpc_msg.Get_cursors -> "get_cursors"

let rpc t ~conn ~session req =
  check_alive t;
  let clk = Verbs.client_clock conn in
  let reqb = Rpc_msg.encode_request req in
  (* Request: one-sided write into the session's RPC ring. *)
  let req_payload = Latency.rdma_payload_ns t.lat (Bytes.length reqb + 16) in
  let at0 = Clock.now clk in
  let _ =
    Timeline.acquire t.nic_tl ~at:at0 ~dur:(t.lat.Latency.rdma_post_ns + req_payload)
  in
  Clock.advance ~cause:Asym_obs.Attr.Alloc_rpc clk (t.lat.Latency.rdma_rtt_ns + req_payload);
  let arrival = Clock.now clk in
  (* Processing on the back-end CPU; media time for whatever it persisted. *)
  let before = Device.bytes_written t.dev in
  let resp = handle t ~at:arrival ~session (Rpc_msg.decode_request reqb) in
  let after = Device.bytes_written t.dev in
  let proc = rpc_base_ns + Latency.nvm_write_cost t.lat (after - before) in
  let start = Timeline.acquire t.cpu_tl ~at:arrival ~dur:proc in
  (* Queueing behind the back-end CPU is replay backlog, not RPC work. *)
  Clock.wait_until ~cause:Asym_obs.Attr.Replay_wait clk start;
  Clock.wait_until ~cause:Asym_obs.Attr.Alloc_rpc clk (start + proc);
  if Asym_obs.enabled () then begin
    let op = req_label req in
    Asym_obs.Registry.inc ~labels:[ ("op", op) ] "backend.rpcs";
    Asym_obs.Span.complete ~cat:"rpc" ~track:(Timeline.name t.cpu_tl) ~ts:start ~dur:proc
      ("rpc." ^ op)
  end;
  (* Response: one-sided read of the response slot. *)
  let respb = Rpc_msg.encode_response resp in
  let resp_payload = Latency.rdma_payload_ns t.lat (Bytes.length respb + 16) in
  let _ =
    Timeline.acquire t.nic_tl ~at:(Clock.now clk)
      ~dur:(t.lat.Latency.rdma_post_ns + resp_payload)
  in
  Clock.advance ~cause:Asym_obs.Attr.Alloc_rpc clk (t.lat.Latency.rdma_rtt_ns + resp_payload);
  t.n_rpcs <- t.n_rpcs + 1;
  Rpc_msg.decode_response respb
