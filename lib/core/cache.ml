type policy = Lru | Rr | Hybrid

let policy_name = function Lru -> "LRU" | Rr -> "RR" | Hybrid -> "Hybrid"

type node = {
  id : int;
  mutable data : bytes;
  mutable last_use : int;
  mutable slot : int;  (* index in the dense array *)
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type t = {
  policy : policy;
  page : int;
  cap : int;  (* capacity in pages *)
  choose_set : int;
  rng : Asym_util.Rng.t;
  table : (int, node) Hashtbl.t;
  dense : node option array;
  mutable count : int;
  mutable mru : node option;
  mutable lru : node option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable relinks : int;  (* recency-list moves that were not already-MRU no-ops *)
}

let create ?(choose_set = 32) ~policy ~page_size ~capacity_bytes rng =
  let cap = max 1 (capacity_bytes / page_size) in
  {
    policy;
    page = page_size;
    cap;
    choose_set;
    rng;
    table = Hashtbl.create (2 * cap);
    dense = Array.make cap None;
    count = 0;
    mru = None;
    lru = None;
    tick = 0;
    hits = 0;
    misses = 0;
    relinks = 0;
  }

let page_size t = t.page
let capacity_pages t = t.cap
let length t = t.count
let hits t = t.hits
let misses t = t.misses
let relinks t = t.relinks

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

(* -- recency list -------------------------------------------------------- *)

let detach t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let touch t n =
  t.tick <- t.tick + 1;
  n.last_use <- t.tick;
  (* Compare the nodes, not the options: [t.mru != Some n] tested
     physical inequality against a freshly boxed option, which is always
     true, so every hit on the MRU page detached and re-linked it. *)
  match t.mru with
  | Some m when m == n -> ()
  | _ ->
      t.relinks <- t.relinks + 1;
      detach t n;
      push_front t n

(* -- dense array (for random sampling) ----------------------------------- *)

let dense_add t n =
  n.slot <- t.count;
  t.dense.(t.count) <- Some n;
  t.count <- t.count + 1

let dense_remove t n =
  let last = t.count - 1 in
  (match t.dense.(last) with
  | Some m when m != n ->
      t.dense.(n.slot) <- Some m;
      m.slot <- n.slot
  | _ -> ());
  t.dense.(last) <- None;
  t.count <- last

(* -- eviction ------------------------------------------------------------ *)

let victim t =
  match t.policy with
  | Lru -> ( match t.lru with Some n -> n | None -> assert false)
  | Rr -> (
      match t.dense.(Asym_util.Rng.int t.rng t.count) with
      | Some n -> n
      | None -> assert false)
  | Hybrid ->
      (* Sample [choose_set] pages, evict the least recently used one. *)
      let best = ref None in
      for _ = 1 to t.choose_set do
        match t.dense.(Asym_util.Rng.int t.rng t.count) with
        | Some n -> (
            match !best with
            | Some b when b.last_use <= n.last_use -> ()
            | _ -> best := Some n)
        | None -> assert false
      done;
      (match !best with Some n -> n | None -> assert false)

let remove t n =
  Hashtbl.remove t.table n.id;
  detach t n;
  dense_remove t n

(* -- public operations ---------------------------------------------------- *)

let find t id =
  match Hashtbl.find_opt t.table id with
  | Some n ->
      touch t n;
      t.hits <- t.hits + 1;
      Some n.data
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t id data =
  match Hashtbl.find_opt t.table id with
  | Some n ->
      n.data <- data;
      touch t n
  | None ->
      if t.count >= t.cap then remove t (victim t);
      let n = { id; data; last_use = 0; slot = 0; prev = None; next = None } in
      Hashtbl.replace t.table id n;
      dense_add t n;
      push_front t n;
      t.tick <- t.tick + 1;
      n.last_use <- t.tick

let patch t ~addr value =
  let len = Bytes.length value in
  let first = addr / t.page in
  let last = (addr + len - 1) / t.page in
  for id = first to last do
    match Hashtbl.find_opt t.table id with
    | None -> ()
    | Some n ->
        let page_base = id * t.page in
        let lo = max addr page_base in
        let hi = min (addr + len) (page_base + Bytes.length n.data) in
        if hi > lo then Bytes.blit value (lo - addr) n.data (lo - page_base) (hi - lo)
  done

let clear t =
  Hashtbl.reset t.table;
  Array.fill t.dense 0 t.cap None;
  t.count <- 0;
  t.mru <- None;
  t.lru <- None
