(** The AsymNVM front-end library (implements {!Store.S}).

    A client owns a connection to one back-end and provides the Table 1
    API: cached/direct reads, memory-log writes, operation logs,
    transactional flushes, the two-tier allocator, locks, and crash
    recovery. Its configuration selects the paper's ablation points:

    - [naive]   — AsymNVM-Naive: direct RDMA for every access
    - [r]       — AsymNVM-R: log reproducing (decoupled persistency)
    - [rc]      — AsymNVM-RC: + front-end DRAM cache
    - [rcb]     — AsymNVM-RCB: + operation log and batching *)

type config = {
  mode : [ `Direct | `Logged ];
      (** [`Direct]: every write is an in-place RDMA write (naive).
          [`Logged]: writes become memory logs replayed by the back-end. *)
  use_cache : bool;
  cache_bytes : int;
  cache_policy : Cache.policy;
  choose_set : int;
  page_size : int;
  batch_size : int;
      (** operations per [rnvm_tx_write]; > 1 enables the operation log *)
  oplog_signaled : bool;
      (** when [false], operation-log appends are posted unsignaled and
          synchronized periodically — the stack/queue fast path *)
  flush_on_unlock : bool;
      (** force a flush before releasing the writer lock, required when
          several front-ends write the same structure *)
  pointer_wire_opt : bool;
      (** §4.3: replace a memory-log value already durable in the op log
          with a 12-byte pointer on the wire (ablation toggle) *)
  retry_max : int;
      (** re-posts of a verb lost to a transient fault before the
          connection is treated as degraded and re-established *)
  retry_base_ns : int;  (** first backoff step (doubles per attempt) *)
  retry_cap_ns : int;  (** backoff ceiling *)
}

val naive : unit -> config
val r : unit -> config
val rc : ?cache_bytes:int -> unit -> config
val rcb : ?cache_bytes:int -> ?batch_size:int -> unit -> config

val config_name : config -> string

type t

val connect :
  ?name:string -> ?rng:Asym_util.Rng.t -> config -> Backend.t -> clock:Asym_sim.Clock.t -> t
(** Open a session on the back-end. *)

val reconnect_after_backend_restart : t -> unit
(** Re-arm the connection after the back-end came back ({!Backend.restart})
    or after mirror promotion — clears the cache and aborts any buffered
    transaction (§4.3: "the front-end node handles exceptions, aborts the
    transaction and clears the cache"). *)

val switch_backend : t -> Backend.t -> unit
(** Point this client at a promoted mirror (Case 4). Volatile state is
    dropped; the session id is preserved (sessions live in the replicated
    media image). *)

include Store.S with type t := t

val persist_fence : t -> unit
(** §4.1 persistency fence: when it returns, every preceding write is
    durable {e and} applied to the back-end data area, so any later read —
    by anyone — observes it. (A plain [flush] already guarantees
    durability; the fence additionally waits out queued replay.) *)

val backend : t -> Backend.t
val session : t -> Types.session_id
val config : t -> config
val name : t -> string

val connection : t -> Asym_rdma.Verbs.conn
(** The underlying verb connection — how tests and the fault fuzzer
    install {!Asym_rdma.Verbs.Fault} models and arm grey periods. *)

val ping : t -> bool
(** One retried 8-byte read of the superblock over the (possibly faulty)
    connection. [false] when even the full retry/reconnect budget could
    not get a verb through — lease-renewal loops use it to skip a period
    instead of letting a grey blip masquerade as a dead node. *)

val close : t -> unit
(** Flush, then release the session: its slot and log rings become
    available to another front-end. The client must not be used after
    (uses raise [Failure]). *)

(** {2 Failure handling (§7.2)} *)

val crash : t -> unit
(** Drop all volatile state: cache, overlay, buffered memory logs,
    allocator block lists, unflushed operation bookkeeping. *)

val is_crashed : t -> bool

val recover : t -> Log.Op_entry.t list
(** Case 1/2 front-end recovery: reopen the session, fetch the LPN/OPN
    cursors, release locks the crashed incarnation still held, and return
    the operations whose memory logs never became durable — the caller
    (data-structure layer) re-executes them. *)

val abort_tx : t -> unit
(** Case 3 client side: throw away buffered logs and cached pages after a
    back-end failure was detected mid-operation. *)

(** {2 Statistics} *)

val rdma_ops : t -> int

val rdma_bytes : t -> int
(** Total bytes this client put on the wire ({!Asym_rdma.Verbs}
    accounting) — the paper's bytes-per-operation argument. *)

val flushes : t -> int
val ops_executed : t -> int

val lock_wait_ns : t -> Asym_sim.Simtime.t
(** Total virtual time spent acquiring writer locks (CAS probes and
    spinning) — the contention signal the `contention` bench reports. *)

val fault_retries : t -> int
(** Verbs re-posted after a transient loss ({!Asym_rdma.Verbs.Verb_timeout}).
    Deterministic for a given fault seed — the `faultsweep` bench reports
    it per drop rate. *)

val reconnects : t -> int
(** Times the retry budget ran dry and the connection was re-established
    (degraded → reconnect → resume). *)

val allocator : t -> Front_alloc.t
