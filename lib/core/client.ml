open Asym_sim
open Asym_rdma

type config = {
  mode : [ `Direct | `Logged ];
  use_cache : bool;
  cache_bytes : int;
  cache_policy : Cache.policy;
  choose_set : int;
  page_size : int;
  batch_size : int;
  oplog_signaled : bool;
  flush_on_unlock : bool;
  pointer_wire_opt : bool;
  retry_max : int;
  retry_base_ns : int;
  retry_cap_ns : int;
}

(* Managing an exact-LRU recency structure costs real instructions on
   every access — the reason the paper's hybrid policy exists (§4.4). *)
let lru_touch_ns = 60

let base_config =
  {
    mode = `Logged;
    use_cache = false;
    cache_bytes = 0;
    cache_policy = Cache.Hybrid;
    choose_set = 32;
    page_size = 256;
    batch_size = 1;
    oplog_signaled = true;
    flush_on_unlock = false;
    pointer_wire_opt = true;
    (* Retry policy for verbs lost to transient faults: up to [retry_max]
       re-posts with capped exponential backoff starting at one round
       trip, then the connection is treated as degraded and
       re-established. *)
    retry_max = 8;
    retry_base_ns = 2_000;
    retry_cap_ns = 200_000;
  }

let naive () = { base_config with mode = `Direct }
let r () = base_config
let rc ?(cache_bytes = 4 * 1024 * 1024) () = { base_config with use_cache = true; cache_bytes }

let rcb ?(cache_bytes = 4 * 1024 * 1024) ?(batch_size = 1024) () =
  { base_config with use_cache = true; cache_bytes; batch_size }

let config_name c =
  match (c.mode, c.use_cache, c.batch_size > 1) with
  | `Direct, _, _ -> "Naive"
  | `Logged, false, false -> "R"
  | `Logged, true, false -> "RC"
  | `Logged, true, true -> "RCB"
  | `Logged, false, true -> "RB"

let use_op_log c = c.mode = `Logged && c.batch_size > 1

(* How many unsignaled op-log posts between synchronizing round trips. *)
let unsignaled_sync_period = 32

type t = {
  cname : string;
  cfg : config;
  mutable bk : Backend.t;
  mutable conn : Verbs.conn;
  clk : Clock.t;
  lat : Latency.t;
  mutable sid : Types.session_id;
  cache : Cache.t option;
  overlay : Overlay.t;
  mutable pending : (Types.ds_id * Log.Mem_entry.t) list;  (* newest first *)
  mutable pending_entries : int;
  mutable pending_bytes : int;
  mutable pending_op_list : (Types.ds_id * (int64 * int * bytes)) list;  (* newest first *)
  pending_cas : (Types.addr, int64 * int64) Hashtbl.t;  (* addr -> (expected, desired) *)
  mutable pending_slab_frees : (Types.addr * int) list;  (* deferred reclamation *)
  mutable ops_since_flush : int;
  mutable memlog_head : int;
  mutable oplog_head : int;
  mutable next_opnum : int64;
  mutable cur_op : int64 option;
  mutable op_started : Simtime.t;  (* span anchor for the current op *)
  (* Attribution window for the current op, over the clock's local sink —
     so the window survives mid-operation suspension under the co-sim
     (other clients charge the global sink while we are suspended). *)
  mutable attr_mark : Asym_obs.Attr.snapshot;
  mutable unsignaled_posts : int;
  mutable falloc : Front_alloc.t;
  handles : (string, Types.handle) Hashtbl.t;
  mutable crashed : bool;
  mutable n_flushes : int;
  mutable n_ops : int;
  mutable n_retries : int;
  mutable lock_wait_ns : Simtime.t;  (* virtual time spent acquiring writer locks *)
  retry_rng : Asym_util.Rng.t;  (* backoff jitter, seeded from the client name *)
  mutable n_fault_retries : int;
  mutable n_reconnects : int;
}

let clock t = t.clk
let backend t = t.bk
let session t = t.sid
let config t = t.cfg
let name t = t.cname
let is_crashed t = t.crashed
let flushes t = t.n_flushes
let ops_executed t = t.n_ops
let read_retries t = t.n_retries
let lock_wait_ns t = t.lock_wait_ns
let rdma_ops t = Verbs.ops_posted t.conn
let rdma_bytes t = Verbs.bytes_on_wire t.conn
let allocator t = t.falloc
let batch_size t = t.cfg.batch_size
let connection t = t.conn
let fault_retries t = t.n_fault_retries
let reconnects t = t.n_reconnects

let cache_stats t =
  match t.cache with Some c -> (Cache.hits c, Cache.misses c) | None -> (0, 0)

let invalidate_cache t = match t.cache with Some c -> Cache.clear c | None -> ()

let check_live t = if t.crashed then failwith (t.cname ^ ": client is crashed")

(* -- transient-fault retry --------------------------------------------------- *)

(* A blackout longer than the full per-verb budget times this many
   reconnect cycles is indistinguishable from a dead back-end; give up
   and let the caller's failure handling take over. *)
let max_reconnects_per_verb = 64

let backoff_ns t n =
  let capped = min t.cfg.retry_cap_ns (t.cfg.retry_base_ns lsl min n 16) in
  capped + Asym_util.Rng.int t.retry_rng (max 1 (capped / 4))

(* Run [f], absorbing verbs lost to transient faults: re-post with capped
   exponential backoff (seeded jitter) up to the per-verb budget; when
   the budget runs dry, treat the connection as degraded, re-establish
   it, and resume with a fresh budget. The resumed attempt re-posts the
   same verb at the same absolute address — safe because log appends are
   positional and replay is opnum-idempotent, and atomics only ever lose
   the request (never the ack). Only {!Verbs.Verb_timeout} is absorbed:
   real failures ([Failure_detected]) and injected crash points still
   propagate. *)
let with_retry t f =
  let rec go ~attempt ~reconnects =
    try f ()
    with Verbs.Verb_timeout _ as e ->
      if attempt < t.cfg.retry_max then begin
        t.n_fault_retries <- t.n_fault_retries + 1;
        if Asym_obs.enabled () then Asym_obs.Registry.inc "client.fault_retries";
        Clock.advance ~cause:Asym_obs.Attr.Fault_retry t.clk (backoff_ns t attempt);
        go ~attempt:(attempt + 1) ~reconnects
      end
      else if reconnects < max_reconnects_per_verb then begin
        (* Degraded: tear down and re-establish the queue pair. Cursors
           are untouched — nothing the lost verb was carrying has been
           acknowledged, so the resumed attempt simply re-posts it. *)
        t.n_reconnects <- t.n_reconnects + 1;
        if Asym_obs.enabled () then Asym_obs.Registry.inc "client.reconnects";
        Asym_obs.Span.instant ~cat:"fault" ~track:t.cname ~ts:(Clock.now t.clk)
          "client.degraded_reconnect";
        Clock.advance ~cause:Asym_obs.Attr.Fault_retry t.clk (3 * t.lat.Latency.rdma_rtt_ns);
        go ~attempt:0 ~reconnects:(reconnects + 1)
      end
      else raise e
  in
  go ~attempt:0 ~reconnects:0

(* A minimal liveness probe over the faulty path: one retried 8-byte read
   of the superblock. [false] means even the full retry/reconnect budget
   could not get a verb through — the caller (e.g. a lease renewal loop)
   should skip a period rather than declare the remote dead. *)
let ping t =
  match with_retry t (fun () -> ignore (Verbs.read t.conn ~addr:0 ~len:8)) with
  | () -> true
  | exception Verbs.Verb_timeout _ -> false

(* -- RPC ------------------------------------------------------------------ *)

let rpc t req = Backend.rpc t.bk ~conn:t.conn ~session:(Some t.sid) req

let rpc_addr t req =
  match rpc t req with
  | Rpc_msg.R_addr a -> a
  | Rpc_msg.R_error "out of NVM slabs" -> raise Front_alloc.Out_of_nvm
  | other -> Fmt.failwith "%s: unexpected RPC response %a" t.cname Rpc_msg.pp_response other

(* Returning a slab to the back-end flips its persistent bitmap bit
   immediately — it is not covered by the memory-log transaction. A slab
   release triggered by a not-yet-covered operation must therefore wait
   for the next [rnvm_tx_write]: otherwise a crash loses the unlink writes
   while the slab is durably free, and the replayed operations can be
   handed a slab that still holds live nodes. In direct (naive) mode every
   write is already durable, so frees go out immediately. *)
let release_slabs t addr slabs =
  match t.cfg.mode with
  | `Logged -> t.pending_slab_frees <- (addr, slabs) :: t.pending_slab_frees
  | `Direct -> (
      match rpc t (Rpc_msg.Free { addr; slabs }) with
      | Rpc_msg.R_unit -> ()
      | other -> Fmt.failwith "%s: unexpected RPC response %a" t.cname Rpc_msg.pp_response other)

let send_deferred_frees t =
  if t.pending_slab_frees <> [] then begin
    let singles, runs = List.partition (fun (_, n) -> n = 1) t.pending_slab_frees in
    t.pending_slab_frees <- [];
    if singles <> [] then begin
      match rpc t (Rpc_msg.Free_batch { addrs = List.map fst singles }) with
      | Rpc_msg.R_unit -> ()
      | other -> Fmt.failwith "%s: unexpected RPC response %a" t.cname Rpc_msg.pp_response other
    end;
    List.iter
      (fun (addr, slabs) ->
        match rpc t (Rpc_msg.Free { addr; slabs }) with
        | Rpc_msg.R_unit -> ()
        | other ->
            Fmt.failwith "%s: unexpected RPC response %a" t.cname Rpc_msg.pp_response other)
      runs
  end

let make_falloc t =
  let layout = Backend.layout t.bk in
  let slab_size = layout.Layout.slab_size in
  let data_base = layout.Layout.data_base in
  Front_alloc.create
    {
      Front_alloc.slab_size;
      alloc_slabs = (fun n -> rpc_addr t (Rpc_msg.Malloc { slabs = n }));
      free_slabs = (fun addr slabs -> release_slabs t addr slabs);
      free_slab_batch = (fun addrs -> List.iter (fun a -> release_slabs t a 1) addrs);
      slab_base_of =
        (fun addr -> data_base + ((addr - data_base) / slab_size * slab_size));
    }

let connect ?(name = "frontend") ?rng cfg bk ~clock =
  let rng =
    match rng with Some r -> r | None -> Asym_util.Rng.create ~seed:(Int64.of_int 777)
  in
  let lat = Backend.latency bk in
  let conn =
    Verbs.connect ~client:clock ~remote_nic:(Backend.nic bk) ~remote_mem:(Backend.device bk) lat
  in
  let cache =
    if cfg.use_cache then
      Some
        (Cache.create ~choose_set:cfg.choose_set ~policy:cfg.cache_policy
           ~page_size:cfg.page_size ~capacity_bytes:cfg.cache_bytes rng)
    else None
  in
  let t =
    {
      cname = name;
      cfg;
      bk;
      conn;
      clk = clock;
      lat;
      sid = -1;
      cache;
      overlay = Overlay.create ();
      pending = [];
      pending_entries = 0;
      pending_bytes = 0;
      pending_op_list = [];
      pending_cas = Hashtbl.create 4;
      pending_slab_frees = [];
      ops_since_flush = 0;
      memlog_head = 0;
      oplog_head = 0;
      (* opnum 0 is reserved: opn_covered = 0 means "nothing covered". *)
      next_opnum = 1L;
      cur_op = None;
      op_started = 0;
      attr_mark = Asym_obs.Attr.local_snapshot (Clock.attr clock);
      unsignaled_posts = 0;
      falloc = Front_alloc.create
          {
            Front_alloc.slab_size = 1;
            alloc_slabs = (fun _ -> assert false);
            free_slabs = (fun _ _ -> assert false);
            free_slab_batch = (fun _ -> assert false);
            slab_base_of = (fun a -> a);
          };
      handles = Hashtbl.create 8;
      crashed = false;
      n_flushes = 0;
      n_ops = 0;
      n_retries = 0;
      lock_wait_ns = 0;
      (* The name hash keeps jitter streams distinct per client while a
         rerun with the same topology draws the same stream. *)
      retry_rng = Asym_util.Rng.create ~seed:(Int64.of_int (Hashtbl.hash name));
      n_fault_retries = 0;
      n_reconnects = 0;
    }
  in
  (match Backend.rpc bk ~conn ~session:None (Rpc_msg.Open_session { client_name = name; reuse = None }) with
  | Rpc_msg.R_session sid -> t.sid <- sid
  | other -> Fmt.failwith "%s: open_session failed: %a" name Rpc_msg.pp_response other);
  t.falloc <- make_falloc t;
  t

(* -- naming ---------------------------------------------------------------- *)

let register_ds t ds_name =
  check_live t;
  match Hashtbl.find_opt t.handles ds_name with
  | Some h -> h
  | None -> (
      match rpc t (Rpc_msg.Register_ds { name = ds_name }) with
      | Rpc_msg.R_handle { ds; root; lock; sn } ->
          let h = { Types.id = ds; root; lock; sn; ds_name } in
          Hashtbl.replace t.handles ds_name h;
          h
      | other ->
          Fmt.failwith "%s: register_ds failed: %a" t.cname Rpc_msg.pp_response other)

let lookup_ds t ds_name =
  check_live t;
  match Hashtbl.find_opt t.handles ds_name with
  | Some h -> Some h
  | None -> (
      match rpc t (Rpc_msg.Name_get { name = ds_name ^ "!ds" }) with
      | Rpc_msg.R_name None -> None
      | Rpc_msg.R_name (Some _) -> Some (register_ds t ds_name)
      | other -> Fmt.failwith "%s: lookup_ds failed: %a" t.cname Rpc_msg.pp_response other)

(* -- reads ----------------------------------------------------------------- *)

let read_via_cache t c ~addr ~len =
  let page = Cache.page_size c in
  let out = Bytes.create len in
  let first = addr / page in
  let last = (addr + len - 1) / page in
  for id = first to last do
    let page_base = id * page in
    let data =
      match Cache.find c id with
      | Some b ->
          Clock.advance t.clk
            (t.lat.Latency.dram_ns
            + if t.cfg.cache_policy = Cache.Lru then lru_touch_ns else 0);
          if Asym_obs.enabled () then
            Asym_obs.Registry.inc ~labels:[ ("event", "hit") ] "client.cache";
          b
      | None ->
          if Asym_obs.enabled () then
            Asym_obs.Registry.inc ~labels:[ ("event", "miss") ] "client.cache";
          let cap = Asym_nvm.Device.capacity (Backend.device t.bk) in
          let plen = min page (cap - page_base) in
          let b = with_retry t (fun () -> Verbs.read t.conn ~addr:page_base ~len:plen) in
          (* The overlay also patches the inserted page so the cache never
             goes backwards w.r.t. our own pending writes. *)
          Overlay.patch t.overlay ~addr:page_base b;
          Cache.insert c id b;
          b
    in
    let lo = max addr page_base in
    let hi = min (addr + len) (page_base + Bytes.length data) in
    if hi > lo then Bytes.blit data (lo - page_base) out (lo - addr) (hi - lo)
  done;
  out

(* A stale cached pointer can produce wild addresses/lengths during an
   optimistic traversal; reject them before allocating buffers. The
   resulting Invalid_argument aborts the read section, which retries. *)
let sane_read_limit = 16 * 1024 * 1024

let read ?(hint = `Hot) t ~addr ~len =
  check_live t;
  if len < 0 || len > sane_read_limit || addr < 0 then
    invalid_arg (Printf.sprintf "%s: unreasonable read (addr=%d len=%d)" t.cname addr len);
  match Overlay.try_read t.overlay ~addr ~len with
  | Some b ->
      Clock.advance t.clk t.lat.Latency.dram_ns;
      b
  | None ->
      let b =
        match t.cache with
        | Some c when hint = `Hot -> read_via_cache t c ~addr ~len
        | _ -> with_retry t (fun () -> Verbs.read t.conn ~addr ~len)
      in
      Overlay.patch t.overlay ~addr b;
      b

let read_u64 t ?hint addr =
  let b = read ?hint t ~addr ~len:8 in
  Bytes.get_int64_le b 0

(* -- operation log ---------------------------------------------------------- *)

let oplog_append ?(signaled = None) t raw =
  let signaled = match signaled with Some s -> s | None -> t.cfg.oplog_signaled in
  let ring_base, cap = Backend.oplog_ring t.bk ~session:t.sid in
  let len = Bytes.length raw in
  let obs_t0 = if Asym_obs.enabled () then Clock.now t.clk else 0 in
  if t.oplog_head + len > cap then begin
    (* Wrap: drop a marker and continue at the ring base. *)
    with_retry t (fun () ->
        Verbs.write t.conn ~addr:(ring_base + t.oplog_head) Log.Op_entry.wrap_marker);
    t.oplog_head <- 0
  end;
  let offset = t.oplog_head in
  (if signaled then with_retry t (fun () -> Verbs.write t.conn ~addr:(ring_base + offset) raw)
   else begin
     Verbs.write_unsignaled t.conn ~addr:(ring_base + offset) raw;
     t.unsignaled_posts <- t.unsignaled_posts + 1;
     if t.unsignaled_posts >= unsignaled_sync_period then begin
       (* Synchronize: wait for one full round trip to collect completions. *)
       Clock.advance ~cause:Asym_obs.Attr.Rdma_rtt t.clk t.lat.Latency.rdma_rtt_ns;
       t.unsignaled_posts <- 0
     end
   end);
  t.oplog_head <- offset + len;
  Backend.note_heads t.bk ~session:t.sid ~oplog_head:t.oplog_head ();
  Backend.replicate_raw t.bk ~at:(Clock.now t.clk) ~addr:(ring_base + offset) raw;
  if Asym_obs.enabled () then begin
    Asym_obs.Registry.add "log.appended_bytes" len;
    Asym_obs.Span.complete ~cat:"log" ~track:t.cname ~ts:obs_t0
      ~dur:(Clock.now t.clk - obs_t0) "oplog.append"
  end;
  offset

let op_begin t ~ds ~optype ~params =
  check_live t;
  t.op_started <- Clock.now t.clk;
  if Asym_obs.enabled () then t.attr_mark <- Asym_obs.Attr.local_snapshot (Clock.attr t.clk);
  let opnum = t.next_opnum in
  t.next_opnum <- Int64.add opnum 1L;
  if use_op_log t.cfg then begin
    let raw = Log.Op_entry.encode { Log.Op_entry.ds; opnum; optype; params } in
    let offset = oplog_append t raw in
    Backend.note_op_offset t.bk ~session:t.sid ~opnum ~offset;
    Backend.note_heads t.bk ~session:t.sid ~next_opnum:t.next_opnum ();
    t.pending_op_list <- (ds, (opnum, optype, params)) :: t.pending_op_list
  end;
  t.cur_op <- Some opnum;
  opnum

let pending_ops t ~ds =
  List.rev
    (List.filter_map (fun (d, op) -> if d = ds then Some op else None) t.pending_op_list)

(* -- writes ----------------------------------------------------------------- *)

let write t ~ds ~addr value =
  check_live t;
  match t.cfg.mode with
  | `Direct ->
      with_retry t (fun () -> Verbs.write t.conn ~addr value);
      (match t.cache with Some c -> Cache.patch c ~addr value | None -> ())
  | `Logged ->
      let from_op =
        match t.cur_op with
        | Some op
          when use_op_log t.cfg && t.cfg.pointer_wire_opt && Bytes.length value > 12 ->
            Some op
        | _ -> None
      in
      t.pending <- (ds, Log.Mem_entry.make ?from_op ~addr value) :: t.pending;
      t.pending_entries <- t.pending_entries + 1;
      t.pending_bytes <- t.pending_bytes + Bytes.length value + 13;
      Overlay.add t.overlay ~addr value;
      (match t.cache with Some c -> Cache.patch c ~addr value | None -> ());
      Clock.advance t.clk t.lat.Latency.dram_ns

let write_u64 t ~ds addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t ~ds ~addr b

(* In logged mode a root switch (§6.2) may not become remotely visible
   before the memory logs of the version it publishes are durable, so the
   CAS is deferred to the next [rnvm_tx_write] (one root swap per batch —
   which is also what makes multi-version batching pay off, Figure 6a).
   The overlay serves the writer's own root reads in the meantime. *)
let cas_u64 t ~ds addr ~expected ~desired =
  check_live t;
  ignore ds;
  match t.cfg.mode with
  | `Direct ->
      let old = with_retry t (fun () -> Verbs.compare_and_swap t.conn ~addr ~expected ~desired) in
      if old = expected then begin
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 desired;
        Backend.replicate_raw t.bk ~at:(Clock.now t.clk) ~addr b
      end;
      old
  | `Logged ->
      let current =
        match Overlay.try_read t.overlay ~addr ~len:8 with
        | Some b -> Bytes.get_int64_le b 0
        | None ->
            Bytes.get_int64_le (with_retry t (fun () -> Verbs.read t.conn ~addr ~len:8)) 0
      in
      if current <> expected then current
      else begin
        (match Hashtbl.find_opt t.pending_cas addr with
        | Some (first_expected, _) -> Hashtbl.replace t.pending_cas addr (first_expected, desired)
        | None -> Hashtbl.replace t.pending_cas addr (expected, desired));
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 desired;
        Overlay.add t.overlay ~addr b;
        (match t.cache with Some c -> Cache.patch c ~addr b | None -> ());
        Clock.advance t.clk t.lat.Latency.dram_ns;
        expected
      end

(* -- transactional flush ------------------------------------------------------ *)

let run_pending_cas t =
  if Hashtbl.length t.pending_cas > 0 then begin
    let swaps = Hashtbl.fold (fun addr (e, d) acc -> (addr, e, d) :: acc) t.pending_cas [] in
    Hashtbl.reset t.pending_cas;
    List.iter
      (fun (addr, expected, desired) ->
        let old = with_retry t (fun () -> Verbs.compare_and_swap t.conn ~addr ~expected ~desired) in
        if old <> expected then
          Fmt.failwith "%s: deferred root CAS lost a race (second writer on an MV structure?)"
            t.cname;
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 desired;
        Backend.replicate_raw t.bk ~at:(Clock.now t.clk) ~addr b)
      swaps
  end

let flush t =
  check_live t;
  let obs_t0 = if Asym_obs.enabled () then Clock.now t.clk else 0 in
  if t.pending <> [] || t.pending_op_list <> [] || Hashtbl.length t.pending_cas > 0 then begin
    (* One transaction record per consecutive run of same-structure
       entries. Runs — rather than one group per structure — keep the
       global write order intact: a block freed by one structure and
       reallocated by another within the same batch is rewritten in
       chronological order during replay. *)
    let op_hi = Int64.pred t.next_opnum in
    let txs =
      let runs =
        List.fold_left
          (fun acc (ds, entry) ->
            match acc with
            | (run_ds, entries) :: rest when run_ds = ds ->
                (run_ds, entry :: entries) :: rest
            | _ -> (ds, [ entry ]) :: acc)
          []
          (List.rev t.pending)
      in
      match runs with
      | [] ->
          (* No memory logs buffered (e.g. a batch fully annulled by the
             §8.1 optimization): still commit an empty transaction so the
             OPN advances past the covered operations. *)
          [ { Log.Tx.ds = 0; op_hi; entries = [] } ]
      | runs ->
          List.rev_map
            (fun (ds, entries) -> { Log.Tx.ds; op_hi; entries = List.rev entries })
            runs
    in
    let encoded = List.map Log.Tx.encode txs in
    let total = List.fold_left (fun acc b -> acc + Bytes.length b) 0 encoded in
    let wire = List.fold_left (fun acc tx -> acc + Log.Tx.wire_size tx) 0 txs in
    let payload = Bytes.create total in
    let _ =
      List.fold_left
        (fun off b ->
          Bytes.blit b 0 payload off (Bytes.length b);
          off + Bytes.length b)
        0 encoded
    in
    let ring_base, cap = Backend.memlog_ring t.bk ~session:t.sid in
    if total + 1 > cap then failwith (t.cname ^ ": transaction exceeds memory-log ring");
    if t.memlog_head + total + 1 > cap then begin
      with_retry t (fun () ->
          Verbs.write t.conn ~addr:(ring_base + t.memlog_head) Log.Tx.wrap_marker);
      t.memlog_head <- 0
    end;
    with_retry t (fun () ->
        Verbs.write ~wire_len:wire t.conn ~addr:(ring_base + t.memlog_head) payload);
    t.memlog_head <- t.memlog_head + total;
    Backend.note_heads t.bk ~session:t.sid ~memlog_head:t.memlog_head
      ~next_opnum:t.next_opnum ();
    Backend.drain_session t.bk ~session:t.sid ~arrival:(Clock.now t.clk);
    (* Root switches become visible only now that their version's memory
       logs are replayed. *)
    run_pending_cas t;
    (* Slab reclamation triggered by the now-covered operations is safe. *)
    send_deferred_frees t;
    t.pending <- [];
    t.pending_entries <- 0;
    t.pending_bytes <- 0;
    t.pending_op_list <- [];
    t.n_flushes <- t.n_flushes + 1;
    if Asym_obs.enabled () then begin
      Asym_obs.Registry.inc "client.flushes";
      Asym_obs.Registry.add "log.tx_wire_bytes" wire;
      Asym_obs.Span.complete ~cat:"log" ~track:t.cname ~ts:obs_t0
        ~dur:(Clock.now t.clk - obs_t0) "client.flush"
    end
  end;
  Overlay.clear t.overlay;
  t.ops_since_flush <- 0

(* §4.1: a read after a persistent fence must observe all data the fence
   ordered before it; the fence completes when the buffered memory logs
   are persisted AND the back-end has replayed everything up to them (the
   read-after-fence then sees the data area up to date). In this
   implementation the flush already drains synchronously, so the fence is
   the flush plus waiting out any replay still queued on the back-end
   CPU. *)
let persist_fence t =
  flush t;
  Clock.wait_until ~cause:Asym_obs.Attr.Replay_wait t.clk
    (Timeline.free_at (Backend.cpu t.bk))

let op_end t ~ds =
  check_live t;
  Clock.advance t.clk t.lat.Latency.cpu_op_ns;
  t.cur_op <- None;
  t.n_ops <- t.n_ops + 1;
  t.ops_since_flush <- t.ops_since_flush + 1;
  if Asym_obs.enabled () then begin
    let now = Clock.now t.clk in
    Asym_obs.Registry.inc ~labels:[ ("ds", string_of_int ds) ] "client.ops";
    Asym_obs.Registry.observe "client.op_ns" (float_of_int (now - t.op_started));
    (* Per-operation breakdown: everything charged since op_begin, by
       cause — into histograms and onto the op span for the trace. *)
    let by_cause =
      List.filter
        (fun (_, v) -> v > 0)
        (Asym_obs.Attr.local_since (Clock.attr t.clk) t.attr_mark)
    in
    List.iter
      (fun (c, v) ->
        Asym_obs.Registry.observe
          ~labels:[ ("cause", Asym_obs.Attr.name c) ]
          "attr.op_ns" (float_of_int v))
      by_cause;
    let args = List.map (fun (c, v) -> (Asym_obs.Attr.name c, v)) by_cause in
    Asym_obs.Span.complete ~cat:"core" ~args ~track:t.cname ~ts:t.op_started
      ~dur:(now - t.op_started) "client.op"
  end;
  match t.cfg.mode with
  | `Direct -> ()
  | `Logged ->
      let _, ring_cap = Backend.memlog_ring t.bk ~session:t.sid in
      (* Flush at the batch boundary, or early when the local buffer fills
         (the [is_fulled ()] condition of the paper's Figure 2). *)
      if t.ops_since_flush >= t.cfg.batch_size || t.pending_bytes >= ring_cap / 4 then flush t

(* -- allocator -------------------------------------------------------------- *)

let malloc t size =
  check_live t;
  Clock.advance t.clk t.lat.Latency.dram_ns;
  Front_alloc.alloc t.falloc size

let free t addr ~len =
  check_live t;
  Clock.advance t.clk t.lat.Latency.dram_ns;
  Front_alloc.free t.falloc addr ~len

(* -- locks (§6.1) ------------------------------------------------------------- *)

let lock_record t ~acquire lock_addr =
  (* The lock-ahead log: a small durable record naming the lock. *)
  let params = Bytes.create 8 in
  Bytes.set_int64_le params 0 (Int64.of_int lock_addr);
  let opnum = t.next_opnum in
  t.next_opnum <- Int64.add opnum 1L;
  let optype = if acquire then 254 else 253 in
  let raw = Log.Op_entry.encode { Log.Op_entry.ds = 0; opnum; optype; params } in
  (* Lock-ahead records only need to be ordered before the memory logs
     they guard, not to block the writer: post them unsignaled. *)
  let offset = oplog_append ~signaled:(Some false) t raw in
  Backend.note_op_offset t.bk ~session:t.sid ~opnum ~offset;
  Backend.note_heads t.bk ~session:t.sid ~next_opnum:t.next_opnum ()

(* A probe spinning against a live holder outside the co-simulation (no
   scheduler to run the holder's release) would hang; convert that into
   a loud failure. At one probe per rdma_atomic_ns this bound is minutes
   of virtual time — far beyond any legitimate critical section. *)
let max_lock_probes = 1_000_000

let writer_lock t (h : Types.handle) =
  check_live t;
  lock_record t ~acquire:true h.Types.lock;
  let requested = Clock.now t.clk in
  (* Acquire by spinning RDMA CAS probes on the device lock word. Each
     probe advances the clock (and so suspends under the co-simulation),
     which is what lets the holder's release write land between two
     probes of the loser — genuine within-operation contention. *)
  let probes = ref 0 in
  while not (with_retry t (fun () -> Verbs.lock_probe t.conn ~addr:h.Types.lock)) do
    incr probes;
    if !probes > max_lock_probes then
      Fmt.failwith "%s: writer_lock: lock at %#x still held after %d CAS probes" t.cname
        h.Types.lock max_lock_probes
  done;
  (* Outside the co-simulation execution order is not virtual-time order:
     a winner's clock can still be behind the previous holder's release
     time. The per-lock timeline keeps hold intervals serialized in
     virtual time either way (under the scheduler the spin already did —
     the winning probe executes after the release write, on a clock the
     scheduler kept >= the holder's). *)
  let tl = Backend.lock_timeline t.bk h.Types.lock in
  let start = Timeline.hold tl ~at:(Clock.now t.clk) in
  if start > Clock.now t.clk then
    Clock.wait_until ~cause:Asym_obs.Attr.Lock_wait t.clk start;
  t.lock_wait_ns <- t.lock_wait_ns + (Clock.now t.clk - requested)

let writer_unlock t (h : Types.handle) =
  check_live t;
  if t.cfg.flush_on_unlock then flush t;
  let b = Bytes.make 8 '\000' in
  (* The release write needs ordering, not an ack. *)
  Verbs.write_unsignaled t.conn ~addr:h.Types.lock b;
  Timeline.release (Backend.lock_timeline t.bk h.Types.lock) ~at:(Clock.now t.clk);
  lock_record t ~acquire:false h.Types.lock

(* -- optimistic read sections (§6.3, Algorithm 2) ------------------------------ *)

let max_read_retries = 64

(* Optimistic read section (Algorithm 2). The section runs against the
   front-end cache; validation compares the per-structure sequence number
   (here: the conflict-window tracker) around the section. A failed
   validation — or a traversal that tripped over bytes a concurrent writer
   reclaimed — drops the cached pages and retries against fresh remote
   state. Pages cached across sections may thus serve a slightly stale but
   structurally consistent version between writer transactions, which is
   the same freshness contract the multi-version readers get (§6.2). *)
let read_section ?(retry_on = `Conflict) t (h : Types.handle) f =
  check_live t;
  let ds = h.Types.id in
  (* Under the verb-granular co-simulation the section truly interleaves
     with concurrent writers: a writer's log-application window lands in
     the conflict tracker while this reader is suspended mid-section, so
     validating exactly the section's own [started, now) span is
     Algorithm 2 as written. *)
  let rec attempt n =
    let amark =
      if Asym_obs.enabled () then Some (Asym_obs.Attr.local_snapshot (Clock.attr t.clk))
      else None
    in
    (* Reader_Lock: fetch the sequence number. *)
    let _sn_begin = with_retry t (fun () -> Verbs.read t.conn ~addr:h.Types.sn ~len:8) in
    let started = Clock.now t.clk in
    let outcome = try `Ok (f ()) with Invalid_argument _ | Failure _ -> `Torn_traversal in
    (* Reader_Unlock: re-fetch and compare. *)
    let _sn_end = with_retry t (fun () -> Verbs.read t.conn ~addr:h.Types.sn ~len:8) in
    let conflicted =
      match outcome with
      | `Torn_traversal -> true
      | `Ok _ -> (
          match retry_on with
          | `Torn -> false
          | `Conflict ->
              Backend.conflict_overlaps t.bk ~ds ~start_:started ~stop:(Clock.now t.clk))
    in
    if conflicted && n < max_read_retries then begin
      t.n_retries <- t.n_retries + 1;
      if Asym_obs.enabled () then begin
        Asym_obs.Registry.inc "client.read_retries";
        (* The failed attempt's time was wasted, whatever it was spent
           on: re-classify it as retry cost (total preserved). *)
        match amark with
        | Some since ->
            Asym_obs.Attr.local_reattribute (Clock.attr t.clk) ~since
              Asym_obs.Attr.Read_retry
        | None -> ()
      end;
      (match t.cache with Some c -> Cache.clear c | None -> ());
      attempt (n + 1)
    end
    else
      match outcome with
      | `Ok v -> v
      | `Torn_traversal -> failwith (t.cname ^ ": read section kept tearing")
  in
  attempt 0

(* -- session lifecycle ------------------------------------------------------ *)

let close t =
  check_live t;
  flush t;
  (match rpc t Rpc_msg.Close_session with
  | Rpc_msg.R_unit -> ()
  | other -> Fmt.failwith "%s: close_session failed: %a" t.cname Rpc_msg.pp_response other);
  (* The crashed flag doubles as a use-after-close guard. *)
  t.crashed <- true

(* -- failure handling ----------------------------------------------------------- *)

let drop_volatile t =
  (match t.cache with Some c -> Cache.clear c | None -> ());
  Overlay.clear t.overlay;
  t.pending <- [];
  t.pending_entries <- 0;
  t.pending_bytes <- 0;
  t.pending_op_list <- [];
  Hashtbl.reset t.pending_cas;
  (* Dropped frees leak their slabs — the same bounded, safe leak as the
     block-level allocator state (§5.2). *)
  t.pending_slab_frees <- [];
  t.ops_since_flush <- 0;
  t.cur_op <- None;
  t.unsignaled_posts <- 0

let crash t =
  drop_volatile t;
  Hashtbl.reset t.handles;
  t.crashed <- true;
  Asym_obs.Span.instant ~cat:"fault" ~track:t.cname ~ts:(Clock.now t.clk) "client.crash"

let abort_tx t = drop_volatile t

let resync_cursors t =
  match rpc t Rpc_msg.Get_cursors with
  | Rpc_msg.R_cursors { memlog_head; oplog_head; opn_covered = _; next_opnum } ->
      t.memlog_head <- memlog_head;
      t.oplog_head <- oplog_head;
      t.next_opnum <- next_opnum
  | other -> Fmt.failwith "%s: get_cursors failed: %a" t.cname Rpc_msg.pp_response other

let recover t =
  t.crashed <- false;
  let obs_t0 = if Asym_obs.enabled () then Clock.now t.clk else 0 in
  Asym_obs.Span.instant ~cat:"fault" ~track:t.cname ~ts:obs_t0 "client.recover_begin";
  (match
     Backend.rpc t.bk ~conn:t.conn ~session:None
       (Rpc_msg.Open_session { client_name = t.cname; reuse = Some t.sid })
   with
  | Rpc_msg.R_session sid -> t.sid <- sid
  | other -> Fmt.failwith "%s: session reopen failed: %a" t.cname Rpc_msg.pp_response other);
  resync_cursors t;
  t.falloc <- make_falloc t;
  (* Release locks our previous incarnation still held (lock-ahead log),
     and log the release so later scans see the lock balanced. *)
  List.iter
    (fun lock_addr ->
      Backend.force_release_lock t.bk lock_addr ~at:(Clock.now t.clk);
      lock_record t ~acquire:false lock_addr)
    (Backend.abandoned_locks t.bk ~session:t.sid);
  let ops = Backend.unreplayed_ops t.bk ~session:t.sid in
  (* Reading the op-log tail back costs one round trip plus payload. *)
  let bytes = List.fold_left (fun acc o -> acc + Bytes.length o.Log.Op_entry.params + 22) 0 ops in
  Clock.advance ~cause:Asym_obs.Attr.Rdma_rtt t.clk t.lat.Latency.rdma_rtt_ns;
  Clock.advance ~cause:Asym_obs.Attr.Rdma_bytes t.clk (Latency.rdma_payload_ns t.lat bytes);
  if Asym_obs.enabled () then begin
    Asym_obs.Registry.add "log.recovered_ops" (List.length ops);
    Asym_obs.Span.complete ~cat:"fault" ~track:t.cname ~ts:obs_t0
      ~dur:(Clock.now t.clk - obs_t0) "client.recover"
  end;
  ops

let reconnect_after_backend_restart t =
  drop_volatile t;
  Verbs.set_failed t.conn false;
  resync_cursors t

let switch_backend t bk =
  drop_volatile t;
  t.bk <- bk;
  t.conn <-
    Verbs.connect ~client:t.clk ~remote_nic:(Backend.nic bk) ~remote_mem:(Backend.device bk)
      t.lat;
  t.falloc <- make_falloc t;
  Hashtbl.reset t.handles;
  resync_cursors t
